# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--processes=16" "--faults=4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_resilient_solve "/root/repo/build/examples/resilient_solve" "--processes=16" "--mtbf-ms=1.0")
set_tests_properties(example_resilient_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_advisor "/root/repo/build/examples/scheme_advisor" "--matrix=bcsstk06" "--processes=16" "--faults=4")
set_tests_properties(example_scheme_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_exascale_projection "/root/repo/build/examples/exascale_projection" "--max-procs=65536")
set_tests_properties(example_exascale_projection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_matrix "/root/repo/build/examples/custom_matrix" "--rcm" "--processes=16" "--faults=4")
set_tests_properties(example_custom_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
