# Empty compiler generated dependencies file for custom_matrix.
# This may be replaced when dependencies are built.
