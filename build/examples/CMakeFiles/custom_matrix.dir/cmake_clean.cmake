file(REMOVE_RECURSE
  "CMakeFiles/custom_matrix.dir/custom_matrix.cpp.o"
  "CMakeFiles/custom_matrix.dir/custom_matrix.cpp.o.d"
  "custom_matrix"
  "custom_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
