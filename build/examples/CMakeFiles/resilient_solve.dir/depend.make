# Empty dependencies file for resilient_solve.
# This may be replaced when dependencies are built.
