file(REMOVE_RECURSE
  "CMakeFiles/resilient_solve.dir/resilient_solve.cpp.o"
  "CMakeFiles/resilient_solve.dir/resilient_solve.cpp.o.d"
  "resilient_solve"
  "resilient_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
