file(REMOVE_RECURSE
  "CMakeFiles/rsls_dist.dir/dist_matrix.cpp.o"
  "CMakeFiles/rsls_dist.dir/dist_matrix.cpp.o.d"
  "CMakeFiles/rsls_dist.dir/dist_ops.cpp.o"
  "CMakeFiles/rsls_dist.dir/dist_ops.cpp.o.d"
  "CMakeFiles/rsls_dist.dir/partition.cpp.o"
  "CMakeFiles/rsls_dist.dir/partition.cpp.o.d"
  "librsls_dist.a"
  "librsls_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
