# Empty dependencies file for rsls_dist.
# This may be replaced when dependencies are built.
