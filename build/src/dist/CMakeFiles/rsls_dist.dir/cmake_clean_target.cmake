file(REMOVE_RECURSE
  "librsls_dist.a"
)
