
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/dist_matrix.cpp" "src/dist/CMakeFiles/rsls_dist.dir/dist_matrix.cpp.o" "gcc" "src/dist/CMakeFiles/rsls_dist.dir/dist_matrix.cpp.o.d"
  "/root/repo/src/dist/dist_ops.cpp" "src/dist/CMakeFiles/rsls_dist.dir/dist_ops.cpp.o" "gcc" "src/dist/CMakeFiles/rsls_dist.dir/dist_ops.cpp.o.d"
  "/root/repo/src/dist/partition.cpp" "src/dist/CMakeFiles/rsls_dist.dir/partition.cpp.o" "gcc" "src/dist/CMakeFiles/rsls_dist.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/rsls_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsls_la.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/rsls_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rsls_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
