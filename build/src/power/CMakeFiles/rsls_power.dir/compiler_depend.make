# Empty compiler generated dependencies file for rsls_power.
# This may be replaced when dependencies are built.
