
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/governor.cpp" "src/power/CMakeFiles/rsls_power.dir/governor.cpp.o" "gcc" "src/power/CMakeFiles/rsls_power.dir/governor.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/rsls_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/rsls_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/rapl.cpp" "src/power/CMakeFiles/rsls_power.dir/rapl.cpp.o" "gcc" "src/power/CMakeFiles/rsls_power.dir/rapl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
