file(REMOVE_RECURSE
  "librsls_power.a"
)
