file(REMOVE_RECURSE
  "CMakeFiles/rsls_power.dir/governor.cpp.o"
  "CMakeFiles/rsls_power.dir/governor.cpp.o.d"
  "CMakeFiles/rsls_power.dir/power_model.cpp.o"
  "CMakeFiles/rsls_power.dir/power_model.cpp.o.d"
  "CMakeFiles/rsls_power.dir/rapl.cpp.o"
  "CMakeFiles/rsls_power.dir/rapl.cpp.o.d"
  "librsls_power.a"
  "librsls_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
