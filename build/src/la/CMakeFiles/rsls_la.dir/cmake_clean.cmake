file(REMOVE_RECURSE
  "CMakeFiles/rsls_la.dir/condition.cpp.o"
  "CMakeFiles/rsls_la.dir/condition.cpp.o.d"
  "CMakeFiles/rsls_la.dir/factor.cpp.o"
  "CMakeFiles/rsls_la.dir/factor.cpp.o.d"
  "CMakeFiles/rsls_la.dir/flops.cpp.o"
  "CMakeFiles/rsls_la.dir/flops.cpp.o.d"
  "CMakeFiles/rsls_la.dir/local_cg.cpp.o"
  "CMakeFiles/rsls_la.dir/local_cg.cpp.o.d"
  "CMakeFiles/rsls_la.dir/qr.cpp.o"
  "CMakeFiles/rsls_la.dir/qr.cpp.o.d"
  "librsls_la.a"
  "librsls_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
