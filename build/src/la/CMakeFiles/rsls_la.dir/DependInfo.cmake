
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/condition.cpp" "src/la/CMakeFiles/rsls_la.dir/condition.cpp.o" "gcc" "src/la/CMakeFiles/rsls_la.dir/condition.cpp.o.d"
  "/root/repo/src/la/factor.cpp" "src/la/CMakeFiles/rsls_la.dir/factor.cpp.o" "gcc" "src/la/CMakeFiles/rsls_la.dir/factor.cpp.o.d"
  "/root/repo/src/la/flops.cpp" "src/la/CMakeFiles/rsls_la.dir/flops.cpp.o" "gcc" "src/la/CMakeFiles/rsls_la.dir/flops.cpp.o.d"
  "/root/repo/src/la/local_cg.cpp" "src/la/CMakeFiles/rsls_la.dir/local_cg.cpp.o" "gcc" "src/la/CMakeFiles/rsls_la.dir/local_cg.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/la/CMakeFiles/rsls_la.dir/qr.cpp.o" "gcc" "src/la/CMakeFiles/rsls_la.dir/qr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/rsls_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
