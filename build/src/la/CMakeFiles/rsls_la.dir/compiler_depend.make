# Empty compiler generated dependencies file for rsls_la.
# This may be replaced when dependencies are built.
