file(REMOVE_RECURSE
  "librsls_la.a"
)
