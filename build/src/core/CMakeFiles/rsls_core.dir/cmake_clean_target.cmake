file(REMOVE_RECURSE
  "librsls_core.a"
)
