# Empty compiler generated dependencies file for rsls_core.
# This may be replaced when dependencies are built.
