file(REMOVE_RECURSE
  "CMakeFiles/rsls_core.dir/csv.cpp.o"
  "CMakeFiles/rsls_core.dir/csv.cpp.o.d"
  "CMakeFiles/rsls_core.dir/env.cpp.o"
  "CMakeFiles/rsls_core.dir/env.cpp.o.d"
  "CMakeFiles/rsls_core.dir/error.cpp.o"
  "CMakeFiles/rsls_core.dir/error.cpp.o.d"
  "CMakeFiles/rsls_core.dir/log.cpp.o"
  "CMakeFiles/rsls_core.dir/log.cpp.o.d"
  "CMakeFiles/rsls_core.dir/options.cpp.o"
  "CMakeFiles/rsls_core.dir/options.cpp.o.d"
  "CMakeFiles/rsls_core.dir/rng.cpp.o"
  "CMakeFiles/rsls_core.dir/rng.cpp.o.d"
  "CMakeFiles/rsls_core.dir/stats.cpp.o"
  "CMakeFiles/rsls_core.dir/stats.cpp.o.d"
  "CMakeFiles/rsls_core.dir/table.cpp.o"
  "CMakeFiles/rsls_core.dir/table.cpp.o.d"
  "librsls_core.a"
  "librsls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
