# Empty compiler generated dependencies file for rsls_sparse.
# This may be replaced when dependencies are built.
