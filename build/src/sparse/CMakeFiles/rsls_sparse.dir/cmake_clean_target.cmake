file(REMOVE_RECURSE
  "librsls_sparse.a"
)
