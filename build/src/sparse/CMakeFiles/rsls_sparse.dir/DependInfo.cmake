
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/matrix_stats.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/matrix_stats.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/matrix_stats.cpp.o.d"
  "/root/repo/src/sparse/mmio.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/mmio.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/mmio.cpp.o.d"
  "/root/repo/src/sparse/ordering.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/ordering.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/ordering.cpp.o.d"
  "/root/repo/src/sparse/roster.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/roster.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/roster.cpp.o.d"
  "/root/repo/src/sparse/vector_ops.cpp" "src/sparse/CMakeFiles/rsls_sparse.dir/vector_ops.cpp.o" "gcc" "src/sparse/CMakeFiles/rsls_sparse.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
