file(REMOVE_RECURSE
  "CMakeFiles/rsls_sparse.dir/coo.cpp.o"
  "CMakeFiles/rsls_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/csr.cpp.o"
  "CMakeFiles/rsls_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/dense.cpp.o"
  "CMakeFiles/rsls_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/generators.cpp.o"
  "CMakeFiles/rsls_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/matrix_stats.cpp.o"
  "CMakeFiles/rsls_sparse.dir/matrix_stats.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/mmio.cpp.o"
  "CMakeFiles/rsls_sparse.dir/mmio.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/ordering.cpp.o"
  "CMakeFiles/rsls_sparse.dir/ordering.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/roster.cpp.o"
  "CMakeFiles/rsls_sparse.dir/roster.cpp.o.d"
  "CMakeFiles/rsls_sparse.dir/vector_ops.cpp.o"
  "CMakeFiles/rsls_sparse.dir/vector_ops.cpp.o.d"
  "librsls_sparse.a"
  "librsls_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
