# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("sparse")
subdirs("la")
subdirs("power")
subdirs("simrt")
subdirs("dist")
subdirs("solver")
subdirs("resilience")
subdirs("model")
subdirs("harness")
