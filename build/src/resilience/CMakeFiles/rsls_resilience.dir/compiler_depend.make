# Empty compiler generated dependencies file for rsls_resilience.
# This may be replaced when dependencies are built.
