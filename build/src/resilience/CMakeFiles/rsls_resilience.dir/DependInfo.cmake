
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/checkpoint.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/checkpoint.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/checkpoint.cpp.o.d"
  "/root/repo/src/resilience/dmr.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/dmr.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/dmr.cpp.o.d"
  "/root/repo/src/resilience/fault.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/fault.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/fault.cpp.o.d"
  "/root/repo/src/resilience/forward.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/forward.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/forward.cpp.o.d"
  "/root/repo/src/resilience/multilevel.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/multilevel.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/multilevel.cpp.o.d"
  "/root/repo/src/resilience/resilient_solve.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/resilient_solve.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/resilient_solve.cpp.o.d"
  "/root/repo/src/resilience/scheme.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/scheme.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/scheme.cpp.o.d"
  "/root/repo/src/resilience/tmr.cpp" "src/resilience/CMakeFiles/rsls_resilience.dir/tmr.cpp.o" "gcc" "src/resilience/CMakeFiles/rsls_resilience.dir/tmr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/rsls_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsls_la.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rsls_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rsls_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/rsls_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rsls_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
