file(REMOVE_RECURSE
  "librsls_resilience.a"
)
