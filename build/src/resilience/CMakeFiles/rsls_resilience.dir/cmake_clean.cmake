file(REMOVE_RECURSE
  "CMakeFiles/rsls_resilience.dir/checkpoint.cpp.o"
  "CMakeFiles/rsls_resilience.dir/checkpoint.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/dmr.cpp.o"
  "CMakeFiles/rsls_resilience.dir/dmr.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/fault.cpp.o"
  "CMakeFiles/rsls_resilience.dir/fault.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/forward.cpp.o"
  "CMakeFiles/rsls_resilience.dir/forward.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/multilevel.cpp.o"
  "CMakeFiles/rsls_resilience.dir/multilevel.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/resilient_solve.cpp.o"
  "CMakeFiles/rsls_resilience.dir/resilient_solve.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/scheme.cpp.o"
  "CMakeFiles/rsls_resilience.dir/scheme.cpp.o.d"
  "CMakeFiles/rsls_resilience.dir/tmr.cpp.o"
  "CMakeFiles/rsls_resilience.dir/tmr.cpp.o.d"
  "librsls_resilience.a"
  "librsls_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
