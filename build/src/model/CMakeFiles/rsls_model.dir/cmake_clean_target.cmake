file(REMOVE_RECURSE
  "librsls_model.a"
)
