file(REMOVE_RECURSE
  "CMakeFiles/rsls_model.dir/comm_scaling.cpp.o"
  "CMakeFiles/rsls_model.dir/comm_scaling.cpp.o.d"
  "CMakeFiles/rsls_model.dir/cost_models.cpp.o"
  "CMakeFiles/rsls_model.dir/cost_models.cpp.o.d"
  "CMakeFiles/rsls_model.dir/mtbf.cpp.o"
  "CMakeFiles/rsls_model.dir/mtbf.cpp.o.d"
  "CMakeFiles/rsls_model.dir/projection.cpp.o"
  "CMakeFiles/rsls_model.dir/projection.cpp.o.d"
  "CMakeFiles/rsls_model.dir/young_daly.cpp.o"
  "CMakeFiles/rsls_model.dir/young_daly.cpp.o.d"
  "librsls_model.a"
  "librsls_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
