# Empty dependencies file for rsls_model.
# This may be replaced when dependencies are built.
