
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/comm_scaling.cpp" "src/model/CMakeFiles/rsls_model.dir/comm_scaling.cpp.o" "gcc" "src/model/CMakeFiles/rsls_model.dir/comm_scaling.cpp.o.d"
  "/root/repo/src/model/cost_models.cpp" "src/model/CMakeFiles/rsls_model.dir/cost_models.cpp.o" "gcc" "src/model/CMakeFiles/rsls_model.dir/cost_models.cpp.o.d"
  "/root/repo/src/model/mtbf.cpp" "src/model/CMakeFiles/rsls_model.dir/mtbf.cpp.o" "gcc" "src/model/CMakeFiles/rsls_model.dir/mtbf.cpp.o.d"
  "/root/repo/src/model/projection.cpp" "src/model/CMakeFiles/rsls_model.dir/projection.cpp.o" "gcc" "src/model/CMakeFiles/rsls_model.dir/projection.cpp.o.d"
  "/root/repo/src/model/young_daly.cpp" "src/model/CMakeFiles/rsls_model.dir/young_daly.cpp.o" "gcc" "src/model/CMakeFiles/rsls_model.dir/young_daly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
