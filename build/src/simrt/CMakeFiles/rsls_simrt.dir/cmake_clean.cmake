file(REMOVE_RECURSE
  "CMakeFiles/rsls_simrt.dir/cluster.cpp.o"
  "CMakeFiles/rsls_simrt.dir/cluster.cpp.o.d"
  "CMakeFiles/rsls_simrt.dir/event_log.cpp.o"
  "CMakeFiles/rsls_simrt.dir/event_log.cpp.o.d"
  "CMakeFiles/rsls_simrt.dir/machine.cpp.o"
  "CMakeFiles/rsls_simrt.dir/machine.cpp.o.d"
  "CMakeFiles/rsls_simrt.dir/trace.cpp.o"
  "CMakeFiles/rsls_simrt.dir/trace.cpp.o.d"
  "librsls_simrt.a"
  "librsls_simrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
