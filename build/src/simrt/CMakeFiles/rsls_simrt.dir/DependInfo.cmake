
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simrt/cluster.cpp" "src/simrt/CMakeFiles/rsls_simrt.dir/cluster.cpp.o" "gcc" "src/simrt/CMakeFiles/rsls_simrt.dir/cluster.cpp.o.d"
  "/root/repo/src/simrt/event_log.cpp" "src/simrt/CMakeFiles/rsls_simrt.dir/event_log.cpp.o" "gcc" "src/simrt/CMakeFiles/rsls_simrt.dir/event_log.cpp.o.d"
  "/root/repo/src/simrt/machine.cpp" "src/simrt/CMakeFiles/rsls_simrt.dir/machine.cpp.o" "gcc" "src/simrt/CMakeFiles/rsls_simrt.dir/machine.cpp.o.d"
  "/root/repo/src/simrt/trace.cpp" "src/simrt/CMakeFiles/rsls_simrt.dir/trace.cpp.o" "gcc" "src/simrt/CMakeFiles/rsls_simrt.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rsls_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
