# Empty dependencies file for rsls_simrt.
# This may be replaced when dependencies are built.
