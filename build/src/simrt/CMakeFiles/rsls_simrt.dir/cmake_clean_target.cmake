file(REMOVE_RECURSE
  "librsls_simrt.a"
)
