file(REMOVE_RECURSE
  "librsls_solver.a"
)
