file(REMOVE_RECURSE
  "CMakeFiles/rsls_solver.dir/cg.cpp.o"
  "CMakeFiles/rsls_solver.dir/cg.cpp.o.d"
  "CMakeFiles/rsls_solver.dir/reference_cg.cpp.o"
  "CMakeFiles/rsls_solver.dir/reference_cg.cpp.o.d"
  "librsls_solver.a"
  "librsls_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
