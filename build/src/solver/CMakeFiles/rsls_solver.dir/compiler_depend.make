# Empty compiler generated dependencies file for rsls_solver.
# This may be replaced when dependencies are built.
