# Empty compiler generated dependencies file for rsls_harness.
# This may be replaced when dependencies are built.
