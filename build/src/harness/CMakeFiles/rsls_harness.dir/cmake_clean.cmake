file(REMOVE_RECURSE
  "CMakeFiles/rsls_harness.dir/experiment.cpp.o"
  "CMakeFiles/rsls_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/rsls_harness.dir/scheme_factory.cpp.o"
  "CMakeFiles/rsls_harness.dir/scheme_factory.cpp.o.d"
  "CMakeFiles/rsls_harness.dir/sweep.cpp.o"
  "CMakeFiles/rsls_harness.dir/sweep.cpp.o.d"
  "librsls_harness.a"
  "librsls_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsls_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
