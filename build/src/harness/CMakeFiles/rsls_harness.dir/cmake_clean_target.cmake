file(REMOVE_RECURSE
  "librsls_harness.a"
)
