file(REMOVE_RECURSE
  "../bench/fig09_projection"
  "../bench/fig09_projection.pdb"
  "CMakeFiles/fig09_projection.dir/fig09_projection.cpp.o"
  "CMakeFiles/fig09_projection.dir/fig09_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
