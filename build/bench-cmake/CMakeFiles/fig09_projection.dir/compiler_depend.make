# Empty compiler generated dependencies file for fig09_projection.
# This may be replaced when dependencies are built.
