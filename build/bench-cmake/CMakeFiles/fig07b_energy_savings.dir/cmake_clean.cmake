file(REMOVE_RECURSE
  "../bench/fig07b_energy_savings"
  "../bench/fig07b_energy_savings.pdb"
  "CMakeFiles/fig07b_energy_savings.dir/fig07b_energy_savings.cpp.o"
  "CMakeFiles/fig07b_energy_savings.dir/fig07b_energy_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
