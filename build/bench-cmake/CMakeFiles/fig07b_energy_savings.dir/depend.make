# Empty dependencies file for fig07b_energy_savings.
# This may be replaced when dependencies are built.
