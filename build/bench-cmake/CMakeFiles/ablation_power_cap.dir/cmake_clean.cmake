file(REMOVE_RECURSE
  "../bench/ablation_power_cap"
  "../bench/ablation_power_cap.pdb"
  "CMakeFiles/ablation_power_cap.dir/ablation_power_cap.cpp.o"
  "CMakeFiles/ablation_power_cap.dir/ablation_power_cap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
