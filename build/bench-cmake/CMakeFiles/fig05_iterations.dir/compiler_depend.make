# Empty compiler generated dependencies file for fig05_iterations.
# This may be replaced when dependencies are built.
