file(REMOVE_RECURSE
  "../bench/fig05_iterations"
  "../bench/fig05_iterations.pdb"
  "CMakeFiles/fig05_iterations.dir/fig05_iterations.cpp.o"
  "CMakeFiles/fig05_iterations.dir/fig05_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
