file(REMOVE_RECURSE
  "../bench/fig03_motivation"
  "../bench/fig03_motivation.pdb"
  "CMakeFiles/fig03_motivation.dir/fig03_motivation.cpp.o"
  "CMakeFiles/fig03_motivation.dir/fig03_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
