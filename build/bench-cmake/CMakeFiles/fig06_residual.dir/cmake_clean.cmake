file(REMOVE_RECURSE
  "../bench/fig06_residual"
  "../bench/fig06_residual.pdb"
  "CMakeFiles/fig06_residual.dir/fig06_residual.cpp.o"
  "CMakeFiles/fig06_residual.dir/fig06_residual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
