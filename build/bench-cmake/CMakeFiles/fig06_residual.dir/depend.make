# Empty dependencies file for fig06_residual.
# This may be replaced when dependencies are built.
