# Empty dependencies file for fig07a_power_profile.
# This may be replaced when dependencies are built.
