file(REMOVE_RECURSE
  "../bench/fig07a_power_profile"
  "../bench/fig07a_power_profile.pdb"
  "CMakeFiles/fig07a_power_profile.dir/fig07a_power_profile.cpp.o"
  "CMakeFiles/fig07a_power_profile.dir/fig07a_power_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
