# Empty compiler generated dependencies file for table06_model_validation.
# This may be replaced when dependencies are built.
