file(REMOVE_RECURSE
  "../bench/table06_model_validation"
  "../bench/table06_model_validation.pdb"
  "CMakeFiles/table06_model_validation.dir/table06_model_validation.cpp.o"
  "CMakeFiles/table06_model_validation.dir/table06_model_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
