file(REMOVE_RECURSE
  "../bench/ablation_interval"
  "../bench/ablation_interval.pdb"
  "CMakeFiles/ablation_interval.dir/ablation_interval.cpp.o"
  "CMakeFiles/ablation_interval.dir/ablation_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
