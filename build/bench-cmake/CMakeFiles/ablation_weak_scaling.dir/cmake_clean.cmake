file(REMOVE_RECURSE
  "../bench/ablation_weak_scaling"
  "../bench/ablation_weak_scaling.pdb"
  "CMakeFiles/ablation_weak_scaling.dir/ablation_weak_scaling.cpp.o"
  "CMakeFiles/ablation_weak_scaling.dir/ablation_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
