file(REMOVE_RECURSE
  "../bench/table05_costs"
  "../bench/table05_costs.pdb"
  "CMakeFiles/table05_costs.dir/table05_costs.cpp.o"
  "CMakeFiles/table05_costs.dir/table05_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
