# Empty dependencies file for table05_costs.
# This may be replaced when dependencies are built.
