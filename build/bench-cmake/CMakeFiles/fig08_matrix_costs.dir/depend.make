# Empty dependencies file for fig08_matrix_costs.
# This may be replaced when dependencies are built.
