file(REMOVE_RECURSE
  "../bench/fig08_matrix_costs"
  "../bench/fig08_matrix_costs.pdb"
  "CMakeFiles/fig08_matrix_costs.dir/fig08_matrix_costs.cpp.o"
  "CMakeFiles/fig08_matrix_costs.dir/fig08_matrix_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_matrix_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
