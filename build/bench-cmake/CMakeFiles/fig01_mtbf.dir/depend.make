# Empty dependencies file for fig01_mtbf.
# This may be replaced when dependencies are built.
