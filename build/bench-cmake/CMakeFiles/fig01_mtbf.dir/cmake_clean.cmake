file(REMOVE_RECURSE
  "../bench/fig01_mtbf"
  "../bench/fig01_mtbf.pdb"
  "CMakeFiles/fig01_mtbf.dir/fig01_mtbf.cpp.o"
  "CMakeFiles/fig01_mtbf.dir/fig01_mtbf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
