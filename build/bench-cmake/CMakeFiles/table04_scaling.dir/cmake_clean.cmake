file(REMOVE_RECURSE
  "../bench/table04_scaling"
  "../bench/table04_scaling.pdb"
  "CMakeFiles/table04_scaling.dir/table04_scaling.cpp.o"
  "CMakeFiles/table04_scaling.dir/table04_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
