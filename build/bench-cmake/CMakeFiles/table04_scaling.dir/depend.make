# Empty dependencies file for table04_scaling.
# This may be replaced when dependencies are built.
