file(REMOVE_RECURSE
  "../bench/fig04_construction"
  "../bench/fig04_construction.pdb"
  "CMakeFiles/fig04_construction.dir/fig04_construction.cpp.o"
  "CMakeFiles/fig04_construction.dir/fig04_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
