# Empty compiler generated dependencies file for fig04_construction.
# This may be replaced when dependencies are built.
