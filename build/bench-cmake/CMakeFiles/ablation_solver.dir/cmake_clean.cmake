file(REMOVE_RECURSE
  "../bench/ablation_solver"
  "../bench/ablation_solver.pdb"
  "CMakeFiles/ablation_solver.dir/ablation_solver.cpp.o"
  "CMakeFiles/ablation_solver.dir/ablation_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
