file(REMOVE_RECURSE
  "../bench/table03_roster"
  "../bench/table03_roster.pdb"
  "CMakeFiles/table03_roster.dir/table03_roster.cpp.o"
  "CMakeFiles/table03_roster.dir/table03_roster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
