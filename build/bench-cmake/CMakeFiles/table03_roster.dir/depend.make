# Empty dependencies file for table03_roster.
# This may be replaced when dependencies are built.
