# Empty dependencies file for la_iterative_test.
# This may be replaced when dependencies are built.
