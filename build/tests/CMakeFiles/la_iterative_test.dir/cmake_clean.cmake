file(REMOVE_RECURSE
  "CMakeFiles/la_iterative_test.dir/la_iterative_test.cpp.o"
  "CMakeFiles/la_iterative_test.dir/la_iterative_test.cpp.o.d"
  "la_iterative_test"
  "la_iterative_test.pdb"
  "la_iterative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_iterative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
