# Empty compiler generated dependencies file for sparse_dense_vector_test.
# This may be replaced when dependencies are built.
