file(REMOVE_RECURSE
  "CMakeFiles/sparse_dense_vector_test.dir/sparse_dense_vector_test.cpp.o"
  "CMakeFiles/sparse_dense_vector_test.dir/sparse_dense_vector_test.cpp.o.d"
  "sparse_dense_vector_test"
  "sparse_dense_vector_test.pdb"
  "sparse_dense_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_dense_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
