file(REMOVE_RECURSE
  "CMakeFiles/resilience_multifault_test.dir/resilience_multifault_test.cpp.o"
  "CMakeFiles/resilience_multifault_test.dir/resilience_multifault_test.cpp.o.d"
  "resilience_multifault_test"
  "resilience_multifault_test.pdb"
  "resilience_multifault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_multifault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
