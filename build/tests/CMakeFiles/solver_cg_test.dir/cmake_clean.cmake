file(REMOVE_RECURSE
  "CMakeFiles/solver_cg_test.dir/solver_cg_test.cpp.o"
  "CMakeFiles/solver_cg_test.dir/solver_cg_test.cpp.o.d"
  "solver_cg_test"
  "solver_cg_test.pdb"
  "solver_cg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
