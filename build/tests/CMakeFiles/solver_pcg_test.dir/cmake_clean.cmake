file(REMOVE_RECURSE
  "CMakeFiles/solver_pcg_test.dir/solver_pcg_test.cpp.o"
  "CMakeFiles/solver_pcg_test.dir/solver_pcg_test.cpp.o.d"
  "solver_pcg_test"
  "solver_pcg_test.pdb"
  "solver_pcg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_pcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
