# Empty dependencies file for resilience_extensions_test.
# This may be replaced when dependencies are built.
