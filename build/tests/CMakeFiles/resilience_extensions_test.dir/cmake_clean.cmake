file(REMOVE_RECURSE
  "CMakeFiles/resilience_extensions_test.dir/resilience_extensions_test.cpp.o"
  "CMakeFiles/resilience_extensions_test.dir/resilience_extensions_test.cpp.o.d"
  "resilience_extensions_test"
  "resilience_extensions_test.pdb"
  "resilience_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
