# Empty dependencies file for resilience_forward_test.
# This may be replaced when dependencies are built.
