file(REMOVE_RECURSE
  "CMakeFiles/resilience_forward_test.dir/resilience_forward_test.cpp.o"
  "CMakeFiles/resilience_forward_test.dir/resilience_forward_test.cpp.o.d"
  "resilience_forward_test"
  "resilience_forward_test.pdb"
  "resilience_forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
