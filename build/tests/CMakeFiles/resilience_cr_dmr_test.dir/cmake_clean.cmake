file(REMOVE_RECURSE
  "CMakeFiles/resilience_cr_dmr_test.dir/resilience_cr_dmr_test.cpp.o"
  "CMakeFiles/resilience_cr_dmr_test.dir/resilience_cr_dmr_test.cpp.o.d"
  "resilience_cr_dmr_test"
  "resilience_cr_dmr_test.pdb"
  "resilience_cr_dmr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_cr_dmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
