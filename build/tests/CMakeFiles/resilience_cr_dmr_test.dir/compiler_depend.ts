# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for resilience_cr_dmr_test.
