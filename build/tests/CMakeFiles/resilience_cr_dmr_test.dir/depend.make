# Empty dependencies file for resilience_cr_dmr_test.
# This may be replaced when dependencies are built.
