# Empty compiler generated dependencies file for resilience_fault_test.
# This may be replaced when dependencies are built.
