file(REMOVE_RECURSE
  "CMakeFiles/resilience_fault_test.dir/resilience_fault_test.cpp.o"
  "CMakeFiles/resilience_fault_test.dir/resilience_fault_test.cpp.o.d"
  "resilience_fault_test"
  "resilience_fault_test.pdb"
  "resilience_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
