file(REMOVE_RECURSE
  "CMakeFiles/simrt_event_log_test.dir/simrt_event_log_test.cpp.o"
  "CMakeFiles/simrt_event_log_test.dir/simrt_event_log_test.cpp.o.d"
  "simrt_event_log_test"
  "simrt_event_log_test.pdb"
  "simrt_event_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrt_event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
