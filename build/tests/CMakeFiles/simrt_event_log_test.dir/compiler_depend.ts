# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simrt_event_log_test.
