file(REMOVE_RECURSE
  "CMakeFiles/la_pcg_test.dir/la_pcg_test.cpp.o"
  "CMakeFiles/la_pcg_test.dir/la_pcg_test.cpp.o.d"
  "la_pcg_test"
  "la_pcg_test.pdb"
  "la_pcg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_pcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
