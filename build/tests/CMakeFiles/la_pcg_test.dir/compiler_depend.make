# Empty compiler generated dependencies file for la_pcg_test.
# This may be replaced when dependencies are built.
