# Empty dependencies file for resilience_edge_test.
# This may be replaced when dependencies are built.
