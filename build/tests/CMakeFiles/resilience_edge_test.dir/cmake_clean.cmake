file(REMOVE_RECURSE
  "CMakeFiles/resilience_edge_test.dir/resilience_edge_test.cpp.o"
  "CMakeFiles/resilience_edge_test.dir/resilience_edge_test.cpp.o.d"
  "resilience_edge_test"
  "resilience_edge_test.pdb"
  "resilience_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
