file(REMOVE_RECURSE
  "CMakeFiles/model_projection_test.dir/model_projection_test.cpp.o"
  "CMakeFiles/model_projection_test.dir/model_projection_test.cpp.o.d"
  "model_projection_test"
  "model_projection_test.pdb"
  "model_projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
