# Empty dependencies file for model_projection_test.
# This may be replaced when dependencies are built.
