# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simrt_cluster_test.
