# Empty compiler generated dependencies file for simrt_cluster_test.
# This may be replaced when dependencies are built.
