file(REMOVE_RECURSE
  "CMakeFiles/simrt_cluster_test.dir/simrt_cluster_test.cpp.o"
  "CMakeFiles/simrt_cluster_test.dir/simrt_cluster_test.cpp.o.d"
  "simrt_cluster_test"
  "simrt_cluster_test.pdb"
  "simrt_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrt_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
