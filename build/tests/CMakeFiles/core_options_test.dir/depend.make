# Empty dependencies file for core_options_test.
# This may be replaced when dependencies are built.
