
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power_model_test.cpp" "tests/CMakeFiles/power_model_test.dir/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/power_model_test.dir/power_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rsls_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/rsls_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rsls_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rsls_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsls_la.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/rsls_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/rsls_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rsls_power.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rsls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rsls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
