file(REMOVE_RECURSE
  "CMakeFiles/model_formulas_test.dir/model_formulas_test.cpp.o"
  "CMakeFiles/model_formulas_test.dir/model_formulas_test.cpp.o.d"
  "model_formulas_test"
  "model_formulas_test.pdb"
  "model_formulas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_formulas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
