# Empty compiler generated dependencies file for model_formulas_test.
# This may be replaced when dependencies are built.
