# Empty dependencies file for sparse_stats_roster_test.
# This may be replaced when dependencies are built.
