file(REMOVE_RECURSE
  "CMakeFiles/sparse_stats_roster_test.dir/sparse_stats_roster_test.cpp.o"
  "CMakeFiles/sparse_stats_roster_test.dir/sparse_stats_roster_test.cpp.o.d"
  "sparse_stats_roster_test"
  "sparse_stats_roster_test.pdb"
  "sparse_stats_roster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_stats_roster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
