file(REMOVE_RECURSE
  "CMakeFiles/dist_partition_test.dir/dist_partition_test.cpp.o"
  "CMakeFiles/dist_partition_test.dir/dist_partition_test.cpp.o.d"
  "dist_partition_test"
  "dist_partition_test.pdb"
  "dist_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
