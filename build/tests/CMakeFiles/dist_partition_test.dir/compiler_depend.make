# Empty compiler generated dependencies file for dist_partition_test.
# This may be replaced when dependencies are built.
