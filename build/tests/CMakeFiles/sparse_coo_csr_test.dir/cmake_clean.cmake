file(REMOVE_RECURSE
  "CMakeFiles/sparse_coo_csr_test.dir/sparse_coo_csr_test.cpp.o"
  "CMakeFiles/sparse_coo_csr_test.dir/sparse_coo_csr_test.cpp.o.d"
  "sparse_coo_csr_test"
  "sparse_coo_csr_test.pdb"
  "sparse_coo_csr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_coo_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
