# Empty dependencies file for sparse_coo_csr_test.
# This may be replaced when dependencies are built.
