file(REMOVE_RECURSE
  "CMakeFiles/sparse_mmio_test.dir/sparse_mmio_test.cpp.o"
  "CMakeFiles/sparse_mmio_test.dir/sparse_mmio_test.cpp.o.d"
  "sparse_mmio_test"
  "sparse_mmio_test.pdb"
  "sparse_mmio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_mmio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
