# Empty dependencies file for sparse_mmio_test.
# This may be replaced when dependencies are built.
