file(REMOVE_RECURSE
  "CMakeFiles/power_governor_test.dir/power_governor_test.cpp.o"
  "CMakeFiles/power_governor_test.dir/power_governor_test.cpp.o.d"
  "power_governor_test"
  "power_governor_test.pdb"
  "power_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
