# Empty dependencies file for power_governor_test.
# This may be replaced when dependencies are built.
