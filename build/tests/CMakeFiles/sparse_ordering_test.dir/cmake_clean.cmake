file(REMOVE_RECURSE
  "CMakeFiles/sparse_ordering_test.dir/sparse_ordering_test.cpp.o"
  "CMakeFiles/sparse_ordering_test.dir/sparse_ordering_test.cpp.o.d"
  "sparse_ordering_test"
  "sparse_ordering_test.pdb"
  "sparse_ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
