# Empty compiler generated dependencies file for sparse_ordering_test.
# This may be replaced when dependencies are built.
