file(REMOVE_RECURSE
  "CMakeFiles/model_measured_tlost_test.dir/model_measured_tlost_test.cpp.o"
  "CMakeFiles/model_measured_tlost_test.dir/model_measured_tlost_test.cpp.o.d"
  "model_measured_tlost_test"
  "model_measured_tlost_test.pdb"
  "model_measured_tlost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_measured_tlost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
