# Empty compiler generated dependencies file for model_measured_tlost_test.
# This may be replaced when dependencies are built.
