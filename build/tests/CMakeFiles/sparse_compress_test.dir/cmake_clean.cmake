file(REMOVE_RECURSE
  "CMakeFiles/sparse_compress_test.dir/sparse_compress_test.cpp.o"
  "CMakeFiles/sparse_compress_test.dir/sparse_compress_test.cpp.o.d"
  "sparse_compress_test"
  "sparse_compress_test.pdb"
  "sparse_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
