# Empty compiler generated dependencies file for dist_matrix_ops_test.
# This may be replaced when dependencies are built.
