file(REMOVE_RECURSE
  "CMakeFiles/dist_matrix_ops_test.dir/dist_matrix_ops_test.cpp.o"
  "CMakeFiles/dist_matrix_ops_test.dir/dist_matrix_ops_test.cpp.o.d"
  "dist_matrix_ops_test"
  "dist_matrix_ops_test.pdb"
  "dist_matrix_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_matrix_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
