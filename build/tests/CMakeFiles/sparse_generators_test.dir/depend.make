# Empty dependencies file for sparse_generators_test.
# This may be replaced when dependencies are built.
