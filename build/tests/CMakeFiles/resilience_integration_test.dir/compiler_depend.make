# Empty compiler generated dependencies file for resilience_integration_test.
# This may be replaced when dependencies are built.
