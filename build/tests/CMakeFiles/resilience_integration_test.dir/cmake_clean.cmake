file(REMOVE_RECURSE
  "CMakeFiles/resilience_integration_test.dir/resilience_integration_test.cpp.o"
  "CMakeFiles/resilience_integration_test.dir/resilience_integration_test.cpp.o.d"
  "resilience_integration_test"
  "resilience_integration_test.pdb"
  "resilience_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
