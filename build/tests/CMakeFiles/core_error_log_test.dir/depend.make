# Empty dependencies file for core_error_log_test.
# This may be replaced when dependencies are built.
