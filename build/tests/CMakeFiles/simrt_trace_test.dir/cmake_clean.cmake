file(REMOVE_RECURSE
  "CMakeFiles/simrt_trace_test.dir/simrt_trace_test.cpp.o"
  "CMakeFiles/simrt_trace_test.dir/simrt_trace_test.cpp.o.d"
  "simrt_trace_test"
  "simrt_trace_test.pdb"
  "simrt_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrt_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
