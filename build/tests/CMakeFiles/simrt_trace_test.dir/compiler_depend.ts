# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simrt_trace_test.
