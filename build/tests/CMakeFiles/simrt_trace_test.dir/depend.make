# Empty dependencies file for simrt_trace_test.
# This may be replaced when dependencies are built.
