file(REMOVE_RECURSE
  "CMakeFiles/core_output_test.dir/core_output_test.cpp.o"
  "CMakeFiles/core_output_test.dir/core_output_test.cpp.o.d"
  "core_output_test"
  "core_output_test.pdb"
  "core_output_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_output_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
