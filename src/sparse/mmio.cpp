#include "sparse/mmio.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"
#include "sparse/coo.hpp"

namespace rsls::sparse {

namespace {

std::string lower(std::string s) {
  for (char& ch : s) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& is) {
  std::string line;
  RSLS_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  RSLS_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  RSLS_CHECK_MSG(lower(object) == "matrix", "unsupported object: " + object);
  RSLS_CHECK_MSG(lower(format) == "coordinate",
                 "unsupported format: " + format);
  const std::string field_l = lower(field);
  RSLS_CHECK_MSG(field_l == "real" || field_l == "integer",
                 "unsupported field: " + field);
  const std::string sym_l = lower(symmetry);
  RSLS_CHECK_MSG(sym_l == "general" || sym_l == "symmetric",
                 "unsupported symmetry: " + symmetry);
  const bool symmetric = sym_l == "symmetric";

  // Skip comments and blank lines up to the size line.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  RSLS_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                 "bad Matrix Market size line: " + line);

  CooBuilder builder(static_cast<Index>(rows), static_cast<Index>(cols));
  for (long long k = 0; k < entries; ++k) {
    long long i = 0, j = 0;
    double value = 0.0;
    if (!(is >> i >> j >> value)) {
      throw Error("Matrix Market stream truncated at entry " +
                  std::to_string(k));
    }
    RSLS_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                   "Matrix Market entry out of range");
    const auto row = static_cast<Index>(i - 1);
    const auto col = static_cast<Index>(j - 1);
    if (symmetric) {
      builder.add_symmetric(row, col, value);
    } else {
      builder.add(row, col, value);
    }
  }
  return builder.to_csr();
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  RSLS_CHECK_MSG(is.good(), "cannot open " + path);
  return read_matrix_market(is);
}

void write_matrix_market(std::ostream& os, const Csr& a) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% written by rsls\n";
  os << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  os << std::setprecision(17);
  for (Index r = 0; r < a.rows; ++r) {
    const auto cols_span = a.row_cols(r);
    const auto vals_span = a.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      os << (r + 1) << ' ' << (cols_span[k] + 1) << ' ' << vals_span[k]
         << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream os(path);
  RSLS_CHECK_MSG(os.good(), "cannot open " + path + " for writing");
  write_matrix_market(os, a);
  RSLS_CHECK_MSG(os.good(), "write to " + path + " failed");
}

}  // namespace rsls::sparse
