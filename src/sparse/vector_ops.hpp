#pragma once
// BLAS-1 style kernels on spans. These are the per-rank local operations
// the distributed layer composes; keeping them as free functions lets the
// solver, the recovery schemes, and the benchmarks share one implementation.

#include <span>

#include "core/types.hpp"

namespace rsls::sparse {

/// y += alpha * x
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// y = x + beta * y (the CG "xpby" update for direction vectors)
void xpby(std::span<const Real> x, Real beta, std::span<Real> y);

/// x *= alpha
void scale(Real alpha, std::span<Real> x);

/// dst = src
void copy(std::span<const Real> src, std::span<Real> dst);

/// Σ xᵢ yᵢ
Real dot(std::span<const Real> x, std::span<const Real> y);

/// ||x||₂
Real norm2(std::span<const Real> x);

/// max |xᵢ|
Real norm_inf(std::span<const Real> x);

/// x = value
void fill(std::span<Real> x, Real value);

}  // namespace rsls::sparse
