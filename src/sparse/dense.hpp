#pragma once
// Row-major dense matrix used by the local factorizations (LU, QR,
// Cholesky) that implement the exact LI/LSI construction baselines.
// Dense blocks in this codebase are small (one process's diagonal block or
// column slice), so a simple contiguous layout is appropriate.

#include <span>

#include "core/types.hpp"

namespace rsls::sparse {

struct Csr;

class Dense {
 public:
  Dense() = default;
  Dense(Index rows, Index cols);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  Real& operator()(Index r, Index c);
  Real operator()(Index r, Index c) const;

  std::span<Real> row(Index r);
  std::span<const Real> row(Index r) const;

  std::span<Real> data() { return data_; }
  std::span<const Real> data() const { return data_; }

  /// y = M x
  void multiply(std::span<const Real> x, std::span<Real> y) const;

  /// y = Mᵀ x
  void multiply_transpose(std::span<const Real> x, std::span<Real> y) const;

  static Dense identity(Index n);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  RealVec data_;
};

/// Densify a sparse matrix (for small local blocks only).
Dense to_dense(const Csr& a);

/// Max |Mᵢⱼ - Nᵢⱼ|; shapes must match.
Real max_abs_diff(const Dense& m, const Dense& n);

}  // namespace rsls::sparse
