#include "sparse/roster.hpp"

#include "core/error.hpp"
#include "sparse/generators.hpp"

namespace rsls::sparse {

namespace {

// Sizing rule: the §5 experiments run at 192 processes, so block-row
// blocks hold n/192 rows. Forward-recovery accuracy depends on the ratio
// of block size to coupling bandwidth (LI/LSI interpolate well only when
// most coupling is inside the block, paper §5.2), so "regular" entries
// are sized with block ≥ ~3× half-bandwidth — matching the paper's
// block-to-bandwidth regime — while the "wide-band"/"irregular" entries
// deliberately violate it, which is what makes RD/CR win on them (Fig. 8).

Csr make_banded(Index n, Index half_bandwidth, double difficulty_knob,
                double scale_decades, std::uint64_t seed, bool quick) {
  BandedSpdConfig config;
  config.n = quick ? std::max<Index>(n / 4, 256) : n;
  config.half_bandwidth = half_bandwidth;
  config.fill = 1.0;
  config.diag_excess = diag_excess_for_iterations(
      quick ? difficulty_knob / 2 : difficulty_knob);
  config.scale_decades = scale_decades;
  config.seed = seed;
  return banded_spd(config);
}

Csr make_irregular(Index n, Index extra_per_row, double scale_decades,
                   double difficulty_knob, std::uint64_t seed, bool quick) {
  IrregularSpdConfig config;
  config.n = quick ? std::max<Index>(n / 4, 256) : n;
  config.extra_per_row = extra_per_row;
  config.band_half_width = 2;
  config.diag_excess = diag_excess_for_iterations(
      quick ? difficulty_knob / 2 : difficulty_knob);
  config.scale_decades = scale_decades;
  config.seed = seed;
  return irregular_spd(config);
}

std::vector<RosterEntry> build_roster() {
  std::vector<RosterEntry> entries;

  // Sizes follow the paper's Table 3 where runnable (bcsstk06, msc01050,
  // ex10hs, ex15, Kuu, t2dahe, crystm02 are exact or near-exact row
  // counts); the largest entries are scaled down. The difficulty knob is
  // an internal generator parameter calibrated so that measured
  // fault-free iteration counts land in a runnable 200–3,000 band while
  // preserving the paper's fast/slow ordering. Crucially, the *small*
  // matrices (bcsstk06, msc01050) keep their tiny per-process blocks —
  // which is exactly why LI/LSI interpolate poorly on them in the paper.
  entries.push_back({"syn:bcsstk06", "structural", "banded", 420, 19, 4476,
                     [](bool quick) {
                       return make_banded(420, 9, 450.0, 1.2, 101, quick);
                     }});
  entries.push_back({"syn:msc01050", "structural", "banded", 1050, 25, 35765,
                     [](bool quick) {
                       return make_banded(1050, 12, 2600.0, 1.4, 102, quick);
                     }});
  entries.push_back({"syn:ex10hs", "CFD", "banded", 2548, 22, 3217,
                     [](bool quick) {
                       return make_banded(2548, 11, 260.0, 1.2, 103, quick);
                     }});
  entries.push_back({"syn:bcsstk16", "structural", "banded", 4884, 59, 553,
                     [](bool quick) {
                       return make_banded(4884, 29, 162.0, 1.0, 104, quick);
                     }});
  entries.push_back({"syn:ex15", "CFD", "banded", 6867, 17, 1074,
                     [](bool quick) {
                       return make_banded(6867, 8, 330.0, 1.0, 105, quick);
                     }});
  entries.push_back({"syn:Kuu", "structural", "fem", 7102, 24, 849,
                     [](bool quick) {
                       const Index nx = quick ? 40 : 83;
                       return fem_q1_2d(nx, nx, 106, 0.001);
                     }});
  entries.push_back({"syn:t2dahe", "model reduction", "banded", 11445, 15,
                     82098, [](bool quick) {
                       return make_banded(11445, 7, 900.0, 1.2, 107, quick);
                     }});
  entries.push_back({"syn:crystm02", "materials", "banded", 13965, 23, 1154,
                     [](bool quick) {
                       return make_banded(13965, 11, 415.0, 1.0, 108, quick);
                     }});
  entries.push_back({"syn:wathen100", "random 2D/3D", "fem", 30401, 16, 355,
                     [](bool quick) {
                       const Index nx = quick ? 48 : 127;
                       return fem_q1_2d(nx, nx, 109, 0.008);
                     }});
  entries.push_back({"syn:cvxbqp1", "optimization", "banded", 50000, 7, 11863,
                     [](bool quick) {
                       return make_banded(12000, 3, 1550.0, 0.0, 110, quick);
                     }});
  entries.push_back({"syn:Andrews", "graphics", "irregular", 60000, 13, 216,
                     [](bool quick) {
                       return make_irregular(5952, 4, 0.9, 220.0, 111,
                                             quick);
                     }});
  entries.push_back({"syn:nd24k", "2D/3D", "wide-band", 72000, 399, 10019,
                     [](bool quick) {
                       return make_banded(5760, 55, 2400.0, 1.1, 112, quick);
                     }});
  entries.push_back({"syn:x104", "structure", "irregular", 108384, 80, 96704,
                     [](bool quick) {
                       return make_irregular(6912, 26, 2.0, 1800.0, 113,
                                             quick);
                     }});
  entries.push_back({"syn:stencil5", "structure", "stencil", 640000, 5, 3162,
                     [](bool quick) {
                       const Index nx = quick ? 64 : 256;
                       return laplacian_2d(nx, nx);
                     }});
  return entries;
}

}  // namespace

const std::vector<RosterEntry>& roster() {
  static const std::vector<RosterEntry> entries = build_roster();
  return entries;
}

const RosterEntry& roster_entry(const std::string& name) {
  const std::string wanted =
      name.rfind("syn:", 0) == 0 ? name : "syn:" + name;
  for (const auto& entry : roster()) {
    if (entry.name == wanted) {
      return entry;
    }
  }
  throw Error("unknown roster matrix: " + name);
}

RealVec make_rhs(const Csr& a) {
  RealVec ones(static_cast<std::size_t>(a.cols), 1.0);
  RealVec b(static_cast<std::size_t>(a.rows), 0.0);
  spmv(a, ones, b);
  return b;
}

}  // namespace rsls::sparse
