#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

Dense::Dense(Index rows, Index cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0) {
  RSLS_CHECK(rows >= 0 && cols >= 0);
}

Real& Dense::operator()(Index r, Index c) {
  RSLS_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

Real Dense::operator()(Index r, Index c) const {
  RSLS_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

std::span<Real> Dense::row(Index r) {
  RSLS_ASSERT(r >= 0 && r < rows_);
  return {data_.data() +
              static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
          static_cast<std::size_t>(cols_)};
}

std::span<const Real> Dense::row(Index r) const {
  RSLS_ASSERT(r >= 0 && r < rows_);
  return {data_.data() +
              static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
          static_cast<std::size_t>(cols_)};
}

void Dense::multiply(std::span<const Real> x, std::span<Real> y) const {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(cols_));
  RSLS_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) {
    const auto row_span = row(r);
    Real sum = 0.0;
    for (std::size_t c = 0; c < row_span.size(); ++c) {
      sum += row_span[c] * x[c];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void Dense::multiply_transpose(std::span<const Real> x,
                               std::span<Real> y) const {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(rows_));
  RSLS_CHECK(y.size() == static_cast<std::size_t>(cols_));
  std::fill(y.begin(), y.end(), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const auto row_span = row(r);
    const Real xr = x[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < row_span.size(); ++c) {
      y[c] += row_span[c] * xr;
    }
  }
}

Dense Dense::identity(Index n) {
  Dense m(n, n);
  for (Index i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Dense to_dense(const Csr& a) {
  Dense m(a.rows, a.cols);
  for (Index r = 0; r < a.rows; ++r) {
    const auto cols_span = a.row_cols(r);
    const auto vals_span = a.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      m(r, cols_span[k]) = vals_span[k];
    }
  }
  return m;
}

Real max_abs_diff(const Dense& m, const Dense& n) {
  RSLS_CHECK(m.rows() == n.rows() && m.cols() == n.cols());
  Real best = 0.0;
  const auto md = m.data();
  const auto nd = n.data();
  for (std::size_t i = 0; i < md.size(); ++i) {
    best = std::max(best, std::abs(md[i] - nd[i]));
  }
  return best;
}

}  // namespace rsls::sparse
