#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sparse/coo.hpp"

namespace rsls::sparse {

namespace {

/// Add the strictly-dominant diagonal: a_ii = (1 + excess) Σ_{j≠i}|a_ij|,
/// with a floor so empty rows stay positive definite.
void add_dominant_diagonal(CooBuilder& builder, const Csr& off_diag,
                           double excess) {
  for (Index r = 0; r < off_diag.rows; ++r) {
    Real off_sum = 0.0;
    for (const Real v : off_diag.row_vals(r)) {
      off_sum += std::abs(v);
    }
    const Real diag = (1.0 + excess) * off_sum + (off_sum == 0.0 ? 1.0 : 0.0);
    builder.add(r, r, diag);
  }
}

/// Symmetric diagonal scaling A ← D·A·D with dᵢ = 10^(decades·uᵢ),
/// uᵢ ~ U[-1/2, 1/2]. A congruence transform, so SPD is preserved while
/// the condition number spreads by roughly 10^(2·decades).
Csr apply_diag_scaling(Csr a, double decades, Rng& rng) {
  if (decades <= 0.0) {
    return a;
  }
  RealVec d(static_cast<std::size_t>(a.rows));
  for (Real& v : d) {
    v = std::pow(10.0, decades * rng.uniform(-0.5, 0.5));
  }
  for (Index r = 0; r < a.rows; ++r) {
    const auto lo = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      a.values[k] *= d[static_cast<std::size_t>(r)] *
                     d[static_cast<std::size_t>(a.col_idx[k])];
    }
  }
  return a;
}

}  // namespace

Csr laplacian_1d(Index n) {
  RSLS_CHECK(n >= 1);
  CooBuilder builder(n, n);
  for (Index i = 0; i < n; ++i) {
    builder.add(i, i, 2.0);
    if (i + 1 < n) {
      builder.add_symmetric(i, i + 1, -1.0);
    }
  }
  return builder.to_csr();
}

Csr laplacian_2d(Index nx, Index ny) {
  RSLS_CHECK(nx >= 1 && ny >= 1);
  const Index n = nx * ny;
  CooBuilder builder(n, n);
  const auto id = [nx](Index ix, Index iy) { return iy * nx + ix; };
  for (Index iy = 0; iy < ny; ++iy) {
    for (Index ix = 0; ix < nx; ++ix) {
      const Index me = id(ix, iy);
      builder.add(me, me, 4.0);
      if (ix + 1 < nx) {
        builder.add_symmetric(me, id(ix + 1, iy), -1.0);
      }
      if (iy + 1 < ny) {
        builder.add_symmetric(me, id(ix, iy + 1), -1.0);
      }
    }
  }
  return builder.to_csr();
}

Csr laplacian_2d_9pt(Index nx, Index ny) {
  RSLS_CHECK(nx >= 1 && ny >= 1);
  const Index n = nx * ny;
  CooBuilder builder(n, n);
  const auto id = [nx](Index ix, Index iy) { return iy * nx + ix; };
  for (Index iy = 0; iy < ny; ++iy) {
    for (Index ix = 0; ix < nx; ++ix) {
      const Index me = id(ix, iy);
      builder.add(me, me, 8.0 / 3.0);
      // Edge neighbours (weight -1/3) and corner neighbours (-1/3) of the
      // compact 9-point Laplacian; only add the "forward" ones
      // symmetrically.
      if (ix + 1 < nx) {
        builder.add_symmetric(me, id(ix + 1, iy), -1.0 / 3.0);
      }
      if (iy + 1 < ny) {
        builder.add_symmetric(me, id(ix, iy + 1), -1.0 / 3.0);
        if (ix + 1 < nx) {
          builder.add_symmetric(me, id(ix + 1, iy + 1), -1.0 / 3.0);
        }
        if (ix > 0) {
          builder.add_symmetric(me, id(ix - 1, iy + 1), -1.0 / 3.0);
        }
      }
    }
  }
  return builder.to_csr();
}

Csr laplacian_3d(Index nx, Index ny, Index nz) {
  RSLS_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const Index n = nx * ny * nz;
  CooBuilder builder(n, n);
  const auto id = [nx, ny](Index ix, Index iy, Index iz) {
    return (iz * ny + iy) * nx + ix;
  };
  for (Index iz = 0; iz < nz; ++iz) {
    for (Index iy = 0; iy < ny; ++iy) {
      for (Index ix = 0; ix < nx; ++ix) {
        const Index me = id(ix, iy, iz);
        builder.add(me, me, 6.0);
        if (ix + 1 < nx) {
          builder.add_symmetric(me, id(ix + 1, iy, iz), -1.0);
        }
        if (iy + 1 < ny) {
          builder.add_symmetric(me, id(ix, iy + 1, iz), -1.0);
        }
        if (iz + 1 < nz) {
          builder.add_symmetric(me, id(ix, iy, iz + 1), -1.0);
        }
      }
    }
  }
  return builder.to_csr();
}

Csr fem_q1_2d(Index nx, Index ny, std::uint64_t seed, double mass_weight) {
  RSLS_CHECK(nx >= 1 && ny >= 1);
  RSLS_CHECK(mass_weight > 0.0);
  const Index nodes_x = nx + 1;
  const Index n = nodes_x * (ny + 1);
  CooBuilder builder(n, n);
  Rng rng(seed);

  // Reference Q1 element matrices on the unit square, nodes ordered
  // (0,0), (1,0), (1,1), (0,1).
  constexpr double kStiff[4][4] = {
      {4.0 / 6, -1.0 / 6, -2.0 / 6, -1.0 / 6},
      {-1.0 / 6, 4.0 / 6, -1.0 / 6, -2.0 / 6},
      {-2.0 / 6, -1.0 / 6, 4.0 / 6, -1.0 / 6},
      {-1.0 / 6, -2.0 / 6, -1.0 / 6, 4.0 / 6}};
  constexpr double kMass[4][4] = {{4.0 / 36, 2.0 / 36, 1.0 / 36, 2.0 / 36},
                                  {2.0 / 36, 4.0 / 36, 2.0 / 36, 1.0 / 36},
                                  {1.0 / 36, 2.0 / 36, 4.0 / 36, 2.0 / 36},
                                  {2.0 / 36, 1.0 / 36, 2.0 / 36, 4.0 / 36}};

  for (Index ey = 0; ey < ny; ++ey) {
    for (Index ex = 0; ex < nx; ++ex) {
      const double rho = rng.uniform(0.5, 1.5);
      const Index corner[4] = {ey * nodes_x + ex, ey * nodes_x + ex + 1,
                               (ey + 1) * nodes_x + ex + 1,
                               (ey + 1) * nodes_x + ex};
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          const double value =
              rho * (kStiff[a][b] + mass_weight * kMass[a][b]);
          builder.add(corner[a], corner[b], value);
        }
      }
    }
  }
  return builder.to_csr();
}

Csr banded_spd(const BandedSpdConfig& config) {
  RSLS_CHECK(config.n >= 1);
  RSLS_CHECK(config.half_bandwidth >= 0);
  RSLS_CHECK(config.fill > 0.0 && config.fill <= 1.0);
  RSLS_CHECK(config.diag_excess > 0.0);
  Rng rng(config.seed);
  CooBuilder off(config.n, config.n);
  for (Index i = 0; i < config.n; ++i) {
    const Index j_end = std::min(config.n, i + config.half_bandwidth + 1);
    for (Index j = i + 1; j < j_end; ++j) {
      if (config.fill >= 1.0 || rng.uniform() < config.fill) {
        off.add_symmetric(i, j, -rng.uniform(0.1, 1.0));
      }
    }
  }
  const Csr off_csr = off.to_csr();
  CooBuilder full(config.n, config.n);
  for (Index r = 0; r < off_csr.rows; ++r) {
    const auto cols_span = off_csr.row_cols(r);
    const auto vals_span = off_csr.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      full.add(r, cols_span[k], vals_span[k]);
    }
  }
  add_dominant_diagonal(full, off_csr, config.diag_excess);
  return apply_diag_scaling(full.to_csr(), config.scale_decades, rng);
}

Csr irregular_spd(const IrregularSpdConfig& config) {
  RSLS_CHECK(config.n >= 2);
  RSLS_CHECK(config.extra_per_row >= 0);
  RSLS_CHECK(config.band_half_width >= 1);
  RSLS_CHECK(config.diag_excess > 0.0);
  Rng rng(config.seed);
  CooBuilder off(config.n, config.n);
  for (Index i = 0; i < config.n; ++i) {
    // Thin local band keeps the matrix connected.
    const Index j_end = std::min(config.n, i + config.band_half_width + 1);
    for (Index j = i + 1; j < j_end; ++j) {
      off.add_symmetric(i, j, -rng.uniform(0.1, 1.0));
    }
    // Long-range scattered couplings (the "irregular" structure).
    for (Index e = 0; e < config.extra_per_row; ++e) {
      const Index j = static_cast<Index>(
          rng.uniform_index(static_cast<std::uint64_t>(config.n)));
      if (j != i) {
        off.add_symmetric(std::min(i, j), std::max(i, j),
                          -0.5 * rng.uniform(0.1, 1.0));
      }
    }
  }
  const Csr off_csr = off.to_csr();
  CooBuilder full(config.n, config.n);
  for (Index r = 0; r < off_csr.rows; ++r) {
    const auto cols_span = off_csr.row_cols(r);
    const auto vals_span = off_csr.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      full.add(r, cols_span[k], vals_span[k]);
    }
  }
  add_dominant_diagonal(full, off_csr, config.diag_excess);
  return apply_diag_scaling(full.to_csr(), config.scale_decades, rng);
}

Csr diagonal_spd(Index n, Real min_eig, Real max_eig, std::uint64_t seed) {
  RSLS_CHECK(n >= 1);
  RSLS_CHECK(0.0 < min_eig && min_eig <= max_eig);
  Rng rng(seed);
  RealVec eigs(static_cast<std::size_t>(n));
  const double ratio = max_eig / min_eig;
  for (Index i = 0; i < n; ++i) {
    const double t =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    eigs[static_cast<std::size_t>(i)] = min_eig * std::pow(ratio, t);
  }
  // Fisher–Yates shuffle so the block a failed process owns is not
  // spectrum-sorted.
  for (Index i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(eigs[static_cast<std::size_t>(i)], eigs[j]);
  }
  CooBuilder builder(n, n);
  for (Index i = 0; i < n; ++i) {
    builder.add(i, i, eigs[static_cast<std::size_t>(i)]);
  }
  return builder.to_csr();
}

double diag_excess_for_iterations(double iterations) {
  RSLS_CHECK(iterations >= 1.0);
  // CG error bound: iters ≈ 0.5 √κ ln(2/tol); at tol 1e-12 the log factor
  // is ≈ 28, and Gershgorin gives κ ≈ 2/excess for these generators, so
  // excess ≈ 2 (14/iters)². The leading constant is calibrated against
  // banded_spd/irregular_spd empirically (tests pin the achieved counts
  // to a band around the target).
  const double k = iterations / 14.0;
  return 2.0 / (k * k);
}

}  // namespace rsls::sparse
