#pragma once
// Structural/numerical matrix statistics (Table 3 columns, plus the
// locality measures the paper's §5.3 discussion attributes scheme
// efficiency to: bandwidth/irregularity and off-block coupling).

#include <string>

#include "core/types.hpp"

namespace rsls::sparse {

struct Csr;

struct MatrixStats {
  Index rows = 0;
  Index nnz = 0;
  double nnz_per_row = 0.0;
  Index max_nnz_per_row = 0;
  /// max |i - j| over stored entries.
  Index bandwidth = 0;
  /// mean |i - j| over stored entries; low = regular/banded.
  double mean_index_distance = 0.0;
  /// min_i a_ii / Σ_{j≠i} |a_ij| (∞-safe: rows with no off-diagonals
  /// contribute a large sentinel). > 1 means strictly diagonally dominant.
  double min_diag_dominance = 0.0;
  bool symmetric = false;
};

MatrixStats compute_stats(const Csr& a);

/// Fraction of nnz falling outside the block-diagonal when rows/cols are
/// split into `parts` contiguous blocks. High values mean strong
/// off-process coupling — the regime where LI/LSI reconstructions are
/// least accurate (paper §5.2, "irregular structure").
double off_block_coupling(const Csr& a, Index parts);

std::string to_string(const MatrixStats& stats);

}  // namespace rsls::sparse
