#pragma once
// The experiment matrix roster.
//
// Mirrors the paper's Table 3 (14 SPD matrices from SuiteSparse) with
// synthetic analogues: each entry preserves the *class* of its namesake —
// structure (banded / FEM / irregular / stencil), nnz-per-row regime, and
// relative convergence difficulty — while being scaled down so that the
// full experiment suite runs in minutes on one core (DESIGN.md §2). The
// paper's reported properties are carried along for the Table 3 bench.

#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

struct RosterEntry {
  /// "syn:" prefix marks the synthetic stand-in (e.g. "syn:Kuu").
  std::string name;
  /// Problem kind column of Table 3.
  std::string problem_kind;
  /// Structure class driving scheme behaviour: "banded", "fem",
  /// "irregular", "stencil", "wide-band".
  std::string structure;
  /// Paper-reported values (for the Table 3 comparison output).
  Index paper_rows = 0;
  Index paper_nnz_per_row = 0;
  Index paper_iters = 0;
  /// Build the synthetic matrix (smaller when quick == true).
  std::function<Csr(bool quick)> make;
};

/// All 14 entries, in Table 3 order.
const std::vector<RosterEntry>& roster();

/// Lookup by name (with or without the "syn:" prefix); throws if unknown.
const RosterEntry& roster_entry(const std::string& name);

/// Right-hand side used across all experiments: b = A·1, so the exact
/// solution is the all-ones vector and the initial guess x₀ = 0 is far
/// from it in every component.
RealVec make_rhs(const Csr& a);

}  // namespace rsls::sparse
