#pragma once
// Symmetric matrix reordering.
//
// The paper's §5.2 analysis attributes poor LI/LSI reconstructions to
// "irregular structure" — coupling that escapes the failed process's
// block. That locality is an artifact of the row ordering: a
// bandwidth-reducing permutation (reverse Cuthill–McKee) pulls coupling
// toward the diagonal, shrinking every rank's halo and making forward
// recovery accurate on matrices where the natural order defeats it
// (bench/ablation_ordering quantifies the effect).

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

/// Reverse Cuthill–McKee ordering of a structurally symmetric matrix.
/// Returns `perm` with perm[new_index] = old_index. Handles disconnected
/// graphs (each component is seeded from its minimum-degree vertex).
IndexVec rcm_ordering(const Csr& a);

/// Symmetric permutation B = P A Pᵀ, i.e. B(i, j) = A(perm[i], perm[j]).
Csr permute_symmetric(const Csr& a, const IndexVec& perm);

/// Inverse permutation: inverse[perm[i]] = i.
IndexVec invert_permutation(const IndexVec& perm);

/// Apply a permutation to a vector: out[i] = in[perm[i]].
RealVec permute_vector(const RealVec& in, const IndexVec& perm);

}  // namespace rsls::sparse
