#include "sparse/spmv_kernel.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace rsls::sparse {

void SpmvPlan::spmv_transpose(std::span<const Real> x,
                              std::span<Real> y) const {
  sparse::spmv_transpose(matrix(), x, y);
}

namespace {

// ---------------------------------------------------------------------------
// csr-scalar: the seed kernel, row-major scalar accumulation.

class CsrScalarPlan final : public SpmvPlan {
 public:
  CsrScalarPlan(const Csr& a, const std::string& name)
      : SpmvPlan(a), name_(name) {}

  const std::string& kernel_name() const override { return name_; }

  void spmv_rows(Index row_begin, Index row_end, std::span<const Real> x,
                 std::span<Real> y) const override {
    sparse::spmv_rows(matrix(), row_begin, row_end, x, y);
  }

  void spmv_add_rows(Index row_begin, Index row_end, Real alpha,
                     std::span<const Real> x,
                     std::span<Real> y) const override {
    sparse::spmv_add_rows(matrix(), row_begin, row_end, alpha, x, y);
  }

 private:
  const std::string& name_;
};

class CsrScalarKernel final : public SpmvKernel {
 public:
  const std::string& name() const override {
    static const std::string kName = "csr-scalar";
    return kName;
  }
  std::unique_ptr<SpmvPlan> prepare(const Csr& a) const override {
    return std::make_unique<CsrScalarPlan>(a, name());
  }
};

// ---------------------------------------------------------------------------
// csr-simd: CSR walk with a fixed-width blocked accumulation. Each row's
// entries are folded into kLanes independent partial sums under
// `#pragma omp simd` (vectorized when built with -fopenmp-simd, a plain
// loop otherwise — same arithmetic either way), then reduced with a
// fixed tree. Summation order differs from csr-scalar, so results are
// deterministic but not bitwise-comparable to the scalar kernel on
// general data.

constexpr std::size_t kSimdLanes = 4;

inline Real simd_row_sum(const Csr& a, std::size_t lo, std::size_t hi,
                         std::span<const Real> x) {
  const Real* vals = a.values.data();
  const Index* cols = a.col_idx.data();
  Real lane[kSimdLanes] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t body = lo + ((hi - lo) / kSimdLanes) * kSimdLanes;
  for (std::size_t k = lo; k < body; k += kSimdLanes) {
#pragma omp simd
    for (std::size_t l = 0; l < kSimdLanes; ++l) {
      lane[l] += vals[k + l] * x[static_cast<std::size_t>(cols[k + l])];
    }
  }
  Real sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (std::size_t k = body; k < hi; ++k) {
    sum += vals[k] * x[static_cast<std::size_t>(cols[k])];
  }
  return sum;
}

class CsrSimdPlan final : public SpmvPlan {
 public:
  CsrSimdPlan(const Csr& a, const std::string& name)
      : SpmvPlan(a), name_(name) {}

  const std::string& kernel_name() const override { return name_; }

  void spmv_rows(Index row_begin, Index row_end, std::span<const Real> x,
                 std::span<Real> y) const override {
    const Csr& a = matrix();
    RSLS_CHECK(x.size() == static_cast<std::size_t>(a.cols));
    RSLS_CHECK(y.size() == static_cast<std::size_t>(a.rows));
    RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
    for (Index r = row_begin; r < row_end; ++r) {
      const auto lo =
          static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
      const auto hi =
          static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
      y[static_cast<std::size_t>(r)] = simd_row_sum(a, lo, hi, x);
    }
  }

  void spmv_add_rows(Index row_begin, Index row_end, Real alpha,
                     std::span<const Real> x,
                     std::span<Real> y) const override {
    const Csr& a = matrix();
    RSLS_CHECK(x.size() == static_cast<std::size_t>(a.cols));
    RSLS_CHECK(y.size() == static_cast<std::size_t>(a.rows));
    RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
    for (Index r = row_begin; r < row_end; ++r) {
      const auto lo =
          static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
      const auto hi =
          static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
      y[static_cast<std::size_t>(r)] += alpha * simd_row_sum(a, lo, hi, x);
    }
  }

 private:
  const std::string& name_;
};

class CsrSimdKernel final : public SpmvKernel {
 public:
  const std::string& name() const override {
    static const std::string kName = "csr-simd";
    return kName;
  }
  std::unique_ptr<SpmvPlan> prepare(const Csr& a) const override {
    return std::make_unique<CsrSimdPlan>(a, name());
  }
};

// ---------------------------------------------------------------------------
// sell-c-sigma: SELL-C-σ storage (Kreutzer et al.), C = 8 rows per
// chunk, σ = 64 row sorting window. Construction:
//
//   1. Within each window of σ original rows, stable-sort rows by
//      descending entry count. The window never crosses a σ boundary,
//      so a chunk's original rows all come from one window — each chunk
//      records its original-row span [row_lo, row_hi) and row-range
//      calls skip chunks that cannot intersect the range.
//   2. perm_[s] maps sorted position → original row (the documented
//      round-trip: gather nothing on input — column indices stay
//      global — and scatter each lane's accumulator back to y[perm_]).
//   3. Chunks of C sorted rows are packed column-major
//      (entry j of lane i at chunk_base + j*C + i), padded to the
//      longest row in the chunk with {value 0, column 0}.
//
// The accumulation loop walks entry positions j column-major but masks
// each lane with `j < len`, so only real entries — in their original
// ascending-column CSR order — ever enter a lane's sum. Padding is
// carried for layout only and never touches the arithmetic, which is
// what makes this kernel bitwise identical to csr-scalar (same
// per-row addition chain, including signed zeros and non-finite data).

constexpr Index kSellC = 8;
constexpr Index kSellSigma = 64;  // multiple of kSellC

class SellCSigmaPlan final : public SpmvPlan {
 public:
  SellCSigmaPlan(const Csr& a, const std::string& name)
      : SpmvPlan(a), name_(name) {
    build();
  }

  const std::string& kernel_name() const override { return name_; }

  void spmv_rows(Index row_begin, Index row_end, std::span<const Real> x,
                 std::span<Real> y) const override {
    run_rows</*kAdd=*/false>(row_begin, row_end, 1.0, x, y);
  }

  void spmv_add_rows(Index row_begin, Index row_end, Real alpha,
                     std::span<const Real> x,
                     std::span<Real> y) const override {
    run_rows</*kAdd=*/true>(row_begin, row_end, alpha, x, y);
  }

  /// Sorted position → original row, for tests of the round-trip.
  const IndexVec& permutation() const { return perm_; }

 private:
  void build() {
    const Csr& a = matrix();
    const Index rows = a.rows;
    perm_.resize(static_cast<std::size_t>(rows));
    std::iota(perm_.begin(), perm_.end(), Index{0});
    const auto row_len = [&a](Index r) {
      return a.row_ptr[static_cast<std::size_t>(r) + 1] -
             a.row_ptr[static_cast<std::size_t>(r)];
    };
    for (Index w = 0; w < rows; w += kSellSigma) {
      const Index w_end = std::min(rows, w + kSellSigma);
      std::stable_sort(perm_.begin() + w, perm_.begin() + w_end,
                       [&row_len](Index lhs, Index rhs) {
                         return row_len(lhs) > row_len(rhs);
                       });
    }
    const Index chunks = (rows + kSellC - 1) / kSellC;
    chunk_ptr_.assign(static_cast<std::size_t>(chunks) + 1, 0);
    chunk_row_lo_.assign(static_cast<std::size_t>(chunks), 0);
    chunk_row_hi_.assign(static_cast<std::size_t>(chunks), 0);
    len_.assign(static_cast<std::size_t>(chunks) * static_cast<std::size_t>(kSellC), 0);
    for (Index c = 0; c < chunks; ++c) {
      Index width = 0;
      Index lo = rows;
      Index hi = 0;
      for (Index i = 0; i < kSellC; ++i) {
        const Index s = c * kSellC + i;
        if (s >= rows) {
          break;
        }
        const Index orig = perm_[static_cast<std::size_t>(s)];
        const Index len = row_len(orig);
        len_[static_cast<std::size_t>(s)] = len;
        width = std::max(width, len);
        lo = std::min(lo, orig);
        hi = std::max(hi, orig + 1);
      }
      chunk_row_lo_[static_cast<std::size_t>(c)] = std::min(lo, hi);
      chunk_row_hi_[static_cast<std::size_t>(c)] = hi;
      chunk_ptr_[static_cast<std::size_t>(c) + 1] =
          chunk_ptr_[static_cast<std::size_t>(c)] + width * kSellC;
    }
    const auto storage = static_cast<std::size_t>(chunk_ptr_.back());
    cols_.assign(storage, 0);
    vals_.assign(storage, 0.0);
    for (Index c = 0; c < chunks; ++c) {
      const Index base = chunk_ptr_[static_cast<std::size_t>(c)];
      for (Index i = 0; i < kSellC; ++i) {
        const Index s = c * kSellC + i;
        if (s >= rows) {
          break;
        }
        const Index orig = perm_[static_cast<std::size_t>(s)];
        const auto row_lo = a.row_ptr[static_cast<std::size_t>(orig)];
        const Index len = len_[static_cast<std::size_t>(s)];
        for (Index j = 0; j < len; ++j) {
          const auto src = static_cast<std::size_t>(row_lo + j);
          const auto dst = static_cast<std::size_t>(base + j * kSellC + i);
          cols_[dst] = a.col_idx[src];
          vals_[dst] = a.values[src];
        }
      }
    }
  }

  template <bool kAdd>
  void run_rows(Index row_begin, Index row_end, Real alpha,
                std::span<const Real> x, std::span<Real> y) const {
    const Csr& a = matrix();
    RSLS_CHECK(x.size() == static_cast<std::size_t>(a.cols));
    RSLS_CHECK(y.size() == static_cast<std::size_t>(a.rows));
    RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
    const Index rows = a.rows;
    const Index chunks = static_cast<Index>(chunk_row_lo_.size());
    for (Index c = 0; c < chunks; ++c) {
      // σ windows never straddle chunk boundaries, so chunks wholly
      // outside the requested row range are skipped without a scan.
      if (chunk_row_hi_[static_cast<std::size_t>(c)] <= row_begin ||
          chunk_row_lo_[static_cast<std::size_t>(c)] >= row_end) {
        continue;
      }
      const Index base = chunk_ptr_[static_cast<std::size_t>(c)];
      const Index width =
          (chunk_ptr_[static_cast<std::size_t>(c) + 1] - base) / kSellC;
      Real acc[kSellC] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
      const Index* lens = len_.data() + static_cast<std::size_t>(c * kSellC);
      for (Index j = 0; j < width; ++j) {
        const Index* col = cols_.data() + static_cast<std::size_t>(base + j * kSellC);
        const Real* val = vals_.data() + static_cast<std::size_t>(base + j * kSellC);
#pragma omp simd
        for (Index i = 0; i < kSellC; ++i) {
          if (j < lens[i]) {
            acc[i] += val[i] * x[static_cast<std::size_t>(col[i])];
          }
        }
      }
      for (Index i = 0; i < kSellC; ++i) {
        const Index s = c * kSellC + i;
        if (s >= rows) {
          break;
        }
        const Index orig = perm_[static_cast<std::size_t>(s)];
        if (orig < row_begin || orig >= row_end) {
          continue;
        }
        if constexpr (kAdd) {
          y[static_cast<std::size_t>(orig)] += alpha * acc[i];
        } else {
          y[static_cast<std::size_t>(orig)] = acc[i];
        }
      }
    }
  }

  const std::string& name_;
  IndexVec perm_;          // sorted position → original row
  IndexVec len_;           // per sorted position, real entry count
  IndexVec chunk_ptr_;     // chunk → offset into cols_/vals_
  IndexVec chunk_row_lo_;  // chunk → min original row (inclusive)
  IndexVec chunk_row_hi_;  // chunk → max original row (exclusive)
  IndexVec cols_;          // column-major within chunk, padded with 0
  RealVec vals_;           // column-major within chunk, padded with 0.0
};

class SellCSigmaKernel final : public SpmvKernel {
 public:
  const std::string& name() const override {
    static const std::string kName = "sell-c-sigma";
    return kName;
  }
  std::unique_ptr<SpmvPlan> prepare(const Csr& a) const override {
    return std::make_unique<SellCSigmaPlan>(a, name());
  }
};

}  // namespace

const std::vector<std::string>& spmv_kernel_names() {
  static const std::vector<std::string> names = {"csr-scalar", "csr-simd",
                                                 "sell-c-sigma"};
  return names;
}

const SpmvKernel* spmv_kernel_from_name(const std::string& name) {
  static const CsrScalarKernel scalar;
  static const CsrSimdKernel simd;
  static const SellCSigmaKernel sell;
  if (name == scalar.name()) {
    return &scalar;
  }
  if (name == simd.name()) {
    return &simd;
  }
  if (name == sell.name()) {
    return &sell;
  }
  return nullptr;
}

const SpmvKernel& spmv_kernel_or_throw(const std::string& name) {
  const SpmvKernel* kernel = spmv_kernel_from_name(name);
  if (kernel == nullptr) {
    std::string valid;
    for (const std::string& known : spmv_kernel_names()) {
      if (!valid.empty()) {
        valid += "|";
      }
      valid += known;
    }
    throw Error("unknown SpMV kernel '" + name + "' (valid: " + valid + ")");
  }
  return *kernel;
}

const SpmvKernel& default_spmv_kernel() {
  return *spmv_kernel_from_name("csr-scalar");
}

}  // namespace rsls::sparse
