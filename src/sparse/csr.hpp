#pragma once
// Compressed sparse row matrix and kernels.
//
// Csr is the workhorse storage for all solver and resilience code. Kernels
// are free functions over const references so they compose with the
// distributed layer, which operates on row slices of a global Csr.

#include <span>

#include "core/types.hpp"

namespace rsls::sparse {

struct Csr {
  Index rows = 0;
  Index cols = 0;
  IndexVec row_ptr;  // size rows + 1
  IndexVec col_idx;  // size nnz, ascending within each row
  RealVec values;    // size nnz

  Index nnz() const { return static_cast<Index>(col_idx.size()); }

  /// Entries in one row as spans (structure, values).
  std::span<const Index> row_cols(Index row) const;
  std::span<const Real> row_vals(Index row) const;

  /// Value at (row, col) or 0 if not stored. O(log nnz_row).
  Real at(Index row, Index col) const;
};

/// Throws rsls::Error if the structure is malformed (bad sizes, column
/// indices out of range or not strictly ascending within a row).
void validate(const Csr& a);

/// y = A x.
void spmv(const Csr& a, std::span<const Real> x, std::span<Real> y);

/// y += alpha * A x.
void spmv_add(const Csr& a, Real alpha, std::span<const Real> x,
              std::span<Real> y);

/// y[row_begin, row_end) = (A x)[row_begin, row_end); rows outside the
/// range are untouched. The row-range seam the rank-parallel executor
/// drives: disjoint ranges write disjoint output slots.
void spmv_rows(const Csr& a, Index row_begin, Index row_end,
               std::span<const Real> x, std::span<Real> y);

/// y[row_begin, row_end) += alpha * (A x)[row_begin, row_end).
void spmv_add_rows(const Csr& a, Index row_begin, Index row_end, Real alpha,
                   std::span<const Real> x, std::span<Real> y);

/// y = Aᵀ x (x has a.rows entries, y has a.cols entries).
void spmv_transpose(const Csr& a, std::span<const Real> x, std::span<Real> y);

/// Explicit transpose.
Csr transpose(const Csr& a);

/// Submatrix of rows [row_begin, row_end) × cols [col_begin, col_end),
/// with indices rebased to the block.
Csr extract_block(const Csr& a, Index row_begin, Index row_end,
                  Index col_begin, Index col_end);

/// Row slice [row_begin, row_end) keeping global column indices.
Csr extract_rows(const Csr& a, Index row_begin, Index row_end);

/// A matrix renumbered to its column support plus the support map: the
/// result's column j corresponds to the input's column support[j]. Lets
/// local kernels work in vectors sized to the columns a row block
/// actually references (its block + halo) instead of the global width.
struct ColumnCompressed {
  Csr matrix;
  IndexVec support;  // ascending original column indices
};
ColumnCompressed compress_columns(const Csr& a);

/// Main diagonal (missing entries are 0).
RealVec diagonal(const Csr& a);

/// Structural + numerical symmetry within `tol` (relative to the largest
/// absolute value in the matrix).
bool is_symmetric(const Csr& a, Real tol = 1e-12);

/// ||b - A x||₂.
Real residual_norm(const Csr& a, std::span<const Real> x,
                   std::span<const Real> b);

}  // namespace rsls::sparse
