#pragma once
// Coordinate-format sparse matrix builder.
//
// COO is the assembly format: generators and Matrix Market readers insert
// (i, j, v) triplets in any order (duplicates summed), then convert to CSR
// for compute. This mirrors the assemble-then-compress flow of FEM codes.

#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

class CooBuilder {
 public:
  /// Create an empty rows × cols builder.
  CooBuilder(Index rows, Index cols);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  /// Number of triplets inserted so far (before deduplication).
  Index triplet_count() const { return static_cast<Index>(entries_.size()); }

  /// Insert one triplet; bounds-checked.
  void add(Index row, Index col, Real value);

  /// Insert v at (i, j) and (j, i); inserts only once on the diagonal.
  void add_symmetric(Index row, Index col, Real value);

  /// Sort, sum duplicates, drop explicit zeros, and emit CSR.
  Csr to_csr() const;

 private:
  struct Entry {
    Index row;
    Index col;
    Real value;
  };

  Index rows_;
  Index cols_;
  std::vector<Entry> entries_;
};

}  // namespace rsls::sparse
