#include "sparse/matrix_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/error.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

MatrixStats compute_stats(const Csr& a) {
  MatrixStats s;
  s.rows = a.rows;
  s.nnz = a.nnz();
  s.nnz_per_row =
      a.rows > 0 ? static_cast<double>(s.nnz) / static_cast<double>(a.rows)
                 : 0.0;
  s.symmetric = is_symmetric(a);

  double distance_sum = 0.0;
  double min_dominance = std::numeric_limits<double>::infinity();
  for (Index r = 0; r < a.rows; ++r) {
    const auto cols_span = a.row_cols(r);
    const auto vals_span = a.row_vals(r);
    s.max_nnz_per_row =
        std::max(s.max_nnz_per_row, static_cast<Index>(cols_span.size()));
    Real diag = 0.0;
    Real off_sum = 0.0;
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      const Index d = std::abs(cols_span[k] - r);
      s.bandwidth = std::max(s.bandwidth, d);
      distance_sum += static_cast<double>(d);
      if (cols_span[k] == r) {
        diag = vals_span[k];
      } else {
        off_sum += std::abs(vals_span[k]);
      }
    }
    const double dominance =
        off_sum > 0.0 ? diag / off_sum : std::numeric_limits<double>::max();
    min_dominance = std::min(min_dominance, dominance);
  }
  s.mean_index_distance =
      s.nnz > 0 ? distance_sum / static_cast<double>(s.nnz) : 0.0;
  s.min_diag_dominance = a.rows > 0 ? min_dominance : 0.0;
  return s;
}

double off_block_coupling(const Csr& a, Index parts) {
  RSLS_CHECK(parts > 0);
  RSLS_CHECK(a.rows == a.cols);
  if (a.nnz() == 0) {
    return 0.0;
  }
  const auto block_of = [&](Index i) {
    // Same arithmetic as dist::Partition: first (rows % parts) blocks get
    // one extra row.
    const Index base = a.rows / parts;
    const Index extra = a.rows % parts;
    const Index pivot = (base + 1) * extra;
    if (i < pivot) {
      return i / (base + 1);
    }
    return extra + (i - pivot) / std::max<Index>(base, 1);
  };
  Index off_block = 0;
  for (Index r = 0; r < a.rows; ++r) {
    const Index rb = block_of(r);
    for (const Index c : a.row_cols(r)) {
      if (block_of(c) != rb) {
        ++off_block;
      }
    }
  }
  return static_cast<double>(off_block) / static_cast<double>(a.nnz());
}

std::string to_string(const MatrixStats& stats) {
  std::ostringstream os;
  os << "rows=" << stats.rows << " nnz=" << stats.nnz
     << " nnz/row=" << stats.nnz_per_row << " bw=" << stats.bandwidth
     << " meanDist=" << stats.mean_index_distance
     << " minDom=" << stats.min_diag_dominance
     << " sym=" << (stats.symmetric ? "yes" : "no");
  return os.str();
}

}  // namespace rsls::sparse
