#pragma once
// Pluggable SpMV kernel registry (DESIGN.md §17).
//
// A SpmvKernel names a storage format + kernel implementation; its
// prepare() builds a SpmvPlan — a format-specific view over one Csr
// matrix — and every hot-path SpMV consumer (dist_ops, solver/cg,
// solver/preconditioner, resilience, la/condition) executes through the
// plan instead of calling the free functions directly. Three kernels
// are registered:
//
//  * csr-scalar   — the seed's row-major scalar loop, the default and
//                   the bitwise reference every other kernel is tested
//                   against.
//  * csr-simd     — the same CSR walk with a fixed-width (4-lane)
//                   blocked accumulation under `#pragma omp simd`. The
//                   lane assignment and final reduction tree are fixed,
//                   so results are deterministic for a given matrix but
//                   the summation *order* differs from csr-scalar.
//  * sell-c-sigma — SELL-C-σ storage (C = 8, σ = 64) built from CSR.
//                   Rows are sorted by descending length inside σ-row
//                   windows and packed column-major into chunks of C
//                   rows; the permutation is kept and outputs scatter
//                   straight back to original row slots (the row
//                   round-trip never reorders x or y). Per row, only
//                   the `length` real entries are accumulated, in CSR
//                   (ascending-column) order — padding never enters the
//                   arithmetic — so sell-c-sigma is bitwise identical
//                   to csr-scalar on any data.
//
// Selection mirrors the PR 9 preconditioner registry: by name through
// `RSLS_SPMV_KERNEL`, `ExperimentConfig::spmv_kernel`, or the serve
// JobSpec, validated against spmv_kernel_names().
//
// Cost accounting is format-invariant: callers keep charging
// la::spmv_flops(nnz) regardless of kernel, because the kernels all
// perform the same multiply-adds — only their schedule differs.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace rsls::sparse {

/// A prepared, format-specific execution plan over one matrix. The Csr
/// passed to SpmvKernel::prepare must outlive the plan (plans hold a
/// reference, plus any repacked storage of their own).
class SpmvPlan {
 public:
  virtual ~SpmvPlan() = default;

  /// Registry name of the kernel that built this plan.
  virtual const std::string& kernel_name() const = 0;

  /// y[begin, end) = (A x)[begin, end); rows outside the range are not
  /// written. This is the seam the rank-parallel executor drives: each
  /// rank owns a disjoint row range, so concurrent calls never touch
  /// the same output slot.
  virtual void spmv_rows(Index row_begin, Index row_end,
                         std::span<const Real> x,
                         std::span<Real> y) const = 0;

  /// y[begin, end) += alpha * (A x)[begin, end).
  virtual void spmv_add_rows(Index row_begin, Index row_end, Real alpha,
                             std::span<const Real> x,
                             std::span<Real> y) const = 0;

  /// y = Aᵀ x. The transpose is a cold path (LSI normal equations
  /// only); the default routes through the scalar scatter kernel so
  /// every format produces the bitwise-identical result.
  virtual void spmv_transpose(std::span<const Real> x,
                              std::span<Real> y) const;

  /// Full-range conveniences.
  void spmv(std::span<const Real> x, std::span<Real> y) const {
    spmv_rows(0, matrix().rows, x, y);
  }
  void spmv_add(Real alpha, std::span<const Real> x,
                std::span<Real> y) const {
    spmv_add_rows(0, matrix().rows, alpha, x, y);
  }

  const Csr& matrix() const { return *matrix_; }

 protected:
  explicit SpmvPlan(const Csr& a) : matrix_(&a) {}

 private:
  const Csr* matrix_;
};

/// A named kernel: a factory for plans. Kernel objects are stateless
/// registry singletons; plans carry all per-matrix state.
class SpmvKernel {
 public:
  virtual ~SpmvKernel() = default;
  virtual const std::string& name() const = 0;
  /// Build a plan over `a`. The matrix must outlive the plan.
  virtual std::unique_ptr<SpmvPlan> prepare(const Csr& a) const = 0;
};

/// Registered kernel names, in roster order (csr-scalar first).
const std::vector<std::string>& spmv_kernel_names();

/// Lookup by name; nullptr when unknown.
const SpmvKernel* spmv_kernel_from_name(const std::string& name);

/// Lookup by name; throws rsls::Error naming the valid roster when
/// unknown (same contract as solver_variant_or_throw).
const SpmvKernel& spmv_kernel_or_throw(const std::string& name);

/// The csr-scalar kernel — what `kernel == nullptr` means at every
/// routing seam.
const SpmvKernel& default_spmv_kernel();

/// `kernel` if non-null, else the csr-scalar default. Convenience for
/// call sites that thread an optional kernel pointer.
inline const SpmvKernel& kernel_or_default(const SpmvKernel* kernel) {
  return kernel != nullptr ? *kernel : default_spmv_kernel();
}

}  // namespace rsls::sparse
