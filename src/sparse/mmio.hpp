#pragma once
// Matrix Market (coordinate, real) I/O.
//
// The paper's matrices come from the SuiteSparse collection, which ships
// in this format. Users with network access can drop the original .mtx
// files next to the benches and run them on the genuine matrices; offline
// we fall back to the synthetic roster.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace rsls::sparse {

/// Parse a "%%MatrixMarket matrix coordinate real {general|symmetric}"
/// stream. Symmetric inputs are expanded to full storage. Throws
/// rsls::Error on malformed input.
Csr read_matrix_market(std::istream& is);

/// Load from a file path.
Csr read_matrix_market_file(const std::string& path);

/// Write coordinate/real/general (1-based indices, one triplet per line).
void write_matrix_market(std::ostream& os, const Csr& a);

void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace rsls::sparse
