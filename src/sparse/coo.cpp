#include "sparse/coo.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsls::sparse {

CooBuilder::CooBuilder(Index rows, Index cols) : rows_(rows), cols_(cols) {
  RSLS_CHECK(rows >= 0 && cols >= 0);
}

void CooBuilder::add(Index row, Index col, Real value) {
  RSLS_CHECK_MSG(row >= 0 && row < rows_, "COO row out of range");
  RSLS_CHECK_MSG(col >= 0 && col < cols_, "COO col out of range");
  entries_.push_back(Entry{row, col, value});
}

void CooBuilder::add_symmetric(Index row, Index col, Real value) {
  add(row, col, value);
  if (row != col) {
    add(col, row, value);
  }
}

Csr CooBuilder::to_csr() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  Csr out;
  out.rows = rows_;
  out.cols = cols_;
  out.row_ptr.assign(static_cast<std::size_t>(rows_) + 1, 0);

  // Sum duplicates, drop exact zeros.
  std::size_t i = 0;
  while (i < sorted.size()) {
    const Index row = sorted[i].row;
    const Index col = sorted[i].col;
    Real sum = 0.0;
    while (i < sorted.size() && sorted[i].row == row &&
           sorted[i].col == col) {
      sum += sorted[i].value;
      ++i;
    }
    if (sum != 0.0) {
      out.col_idx.push_back(col);
      out.values.push_back(sum);
      ++out.row_ptr[static_cast<std::size_t>(row) + 1];
    }
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r) {
    out.row_ptr[r + 1] += out.row_ptr[r];
  }
  validate(out);
  return out;
}

}  // namespace rsls::sparse
