#pragma once
// Synthetic SPD matrix generators.
//
// The paper evaluates on 14 SuiteSparse matrices (Table 3). Those files are
// not available offline, so the roster (roster.hpp) is built from these
// generators, each of which controls the structural properties the paper's
// conclusions depend on:
//   * bandwidth / irregularity  — governs LI/LSI reconstruction accuracy,
//   * nnz per row               — governs reconstruction cost,
//   * diagonal excess           — governs conditioning, hence CG iteration
//                                 counts (convergence speed).
//
// All generators produce symmetric positive definite matrices: random
// off-diagonals are negative and the diagonal exceeds the absolute row sum
// by a relative margin `diag_excess` (a symmetric strictly diagonally
// dominant matrix with positive diagonal is SPD). Smaller excess means a
// smaller Gershgorin lower bound on the spectrum, i.e. a harder problem.

#include <cstdint>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace rsls::sparse {

/// 1D Poisson [ -1 2 -1 ] with Dirichlet boundaries; n ≥ 1.
Csr laplacian_1d(Index n);

/// 2D 5-point Poisson stencil on an nx × ny grid (Dirichlet).
Csr laplacian_2d(Index nx, Index ny);

/// 2D 9-point stencil (compact, Dirichlet).
Csr laplacian_2d_9pt(Index nx, Index ny);

/// 3D 7-point Poisson stencil on an nx × ny × nz grid (Dirichlet).
Csr laplacian_3d(Index nx, Index ny, Index nz);

/// Q1 FEM (stiffness + mass) on an nx × ny quad mesh with a random
/// per-element coefficient in [0.5, 1.5]; yields a Wathen-class "random
/// 2D/3D FEM" SPD matrix with ~9 nnz/row and dimension (nx+1)(ny+1).
/// `mass_weight` scales the mass term against the stiffness term: small
/// weights leave the (singular) stiffness dominant, i.e. a harder
/// problem; weights near 1 give a well-conditioned mass-like matrix.
Csr fem_q1_2d(Index nx, Index ny, std::uint64_t seed,
              double mass_weight = 1.0);

struct BandedSpdConfig {
  Index n = 0;
  /// Off-diagonals are drawn from the band [-half_bandwidth, -1] ∪
  /// [1, half_bandwidth] around the diagonal.
  Index half_bandwidth = 1;
  /// Probability each in-band position is nonzero (1 = dense band).
  double fill = 1.0;
  /// Relative diagonal margin; smaller → worse conditioning.
  double diag_excess = 1e-3;
  /// Symmetric diagonal scaling D·A·D with dᵢ log-uniform over this many
  /// decades (0 = none). Spreads the spectrum multiplicatively — the knob
  /// for very ill-conditioned "structural" matrices.
  double scale_decades = 0.0;
  std::uint64_t seed = 1;
};

/// Random banded SPD matrix ("structural"/"materials" class: regular,
/// localized coupling).
Csr banded_spd(const BandedSpdConfig& config);

struct IrregularSpdConfig {
  Index n = 0;
  /// Long-range random couplings added per row (averages; symmetric).
  Index extra_per_row = 4;
  /// A thin local band is kept so the graph stays connected.
  Index band_half_width = 2;
  double diag_excess = 1e-3;
  /// Symmetric diagonal scaling decades (see BandedSpdConfig). Random
  /// graphs are expanders — spectrally well-conditioned — so this is the
  /// mechanism that makes "irregular" entries converge slowly.
  double scale_decades = 0.0;
  std::uint64_t seed = 1;
};

/// Random SPD matrix with scattered long-range coupling ("irregular"
/// class: graphics/optimization graphs). High off-block coupling for any
/// contiguous partition, which degrades LI/LSI reconstruction accuracy.
Csr irregular_spd(const IrregularSpdConfig& config);

/// Diagonal SPD matrix with eigenvalues geometrically spaced in
/// [min_eig, max_eig] and randomly permuted; exact spectrum control for
/// solver convergence tests.
Csr diagonal_spd(Index n, Real min_eig, Real max_eig, std::uint64_t seed);

/// Suggested diag_excess to make CG on a random banded/irregular SPD
/// matrix need roughly `iterations` iterations at tolerance 1e-12.
/// Derived from the Gershgorin bound κ ≈ 2/excess and the classical CG
/// error bound; calibrated against the generators in this file.
double diag_excess_for_iterations(double iterations);

}  // namespace rsls::sparse
