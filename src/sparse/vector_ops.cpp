#include "sparse/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::sparse {

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  RSLS_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void xpby(std::span<const Real> x, Real beta, std::span<Real> y) {
  RSLS_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

void scale(Real alpha, std::span<Real> x) {
  for (Real& v : x) {
    v *= alpha;
  }
}

void copy(std::span<const Real> src, std::span<Real> dst) {
  RSLS_CHECK(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

Real dot(std::span<const Real> x, std::span<const Real> y) {
  RSLS_CHECK(x.size() == y.size());
  Real sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

Real norm2(std::span<const Real> x) { return std::sqrt(dot(x, x)); }

Real norm_inf(std::span<const Real> x) {
  Real best = 0.0;
  for (const Real v : x) {
    best = std::max(best, std::abs(v));
  }
  return best;
}

void fill(std::span<Real> x, Real value) {
  std::fill(x.begin(), x.end(), value);
}

}  // namespace rsls::sparse
