#include "sparse/ordering.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"
#include "sparse/coo.hpp"

namespace rsls::sparse {

namespace {

Index degree(const Csr& a, Index v) {
  return static_cast<Index>(a.row_cols(v).size());
}

}  // namespace

IndexVec rcm_ordering(const Csr& a) {
  RSLS_CHECK_MSG(a.rows == a.cols, "RCM requires a square matrix");
  const Index n = a.rows;
  IndexVec order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  // Vertices sorted by degree: component seeds are minimum-degree
  // unvisited vertices (the classical pseudo-peripheral heuristic's cheap
  // stand-in, adequate for the banded/irregular graphs here).
  IndexVec by_degree(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    by_degree[static_cast<std::size_t>(i)] = i;
  }
  std::sort(by_degree.begin(), by_degree.end(), [&a](Index u, Index v) {
    const Index du = degree(a, u);
    const Index dv = degree(a, v);
    return du != dv ? du < dv : u < v;
  });

  IndexVec neighbours;
  for (const Index seed : by_degree) {
    if (visited[static_cast<std::size_t>(seed)]) {
      continue;
    }
    // BFS with degree-sorted neighbour expansion (Cuthill–McKee).
    std::queue<Index> frontier;
    frontier.push(seed);
    visited[static_cast<std::size_t>(seed)] = true;
    while (!frontier.empty()) {
      const Index v = frontier.front();
      frontier.pop();
      order.push_back(v);
      neighbours.clear();
      for (const Index w : a.row_cols(v)) {
        if (w != v && !visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          neighbours.push_back(w);
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&a](Index u, Index w) {
                  const Index du = degree(a, u);
                  const Index dw = degree(a, w);
                  return du != dw ? du < dw : u < w;
                });
      for (const Index w : neighbours) {
        frontier.push(w);
      }
    }
  }
  RSLS_CHECK(static_cast<Index>(order.size()) == n);
  // The "reverse" of RCM.
  std::reverse(order.begin(), order.end());
  return order;
}

Csr permute_symmetric(const Csr& a, const IndexVec& perm) {
  RSLS_CHECK(a.rows == a.cols);
  RSLS_CHECK(perm.size() == static_cast<std::size_t>(a.rows));
  const IndexVec inverse = invert_permutation(perm);
  CooBuilder builder(a.rows, a.cols);
  for (Index new_row = 0; new_row < a.rows; ++new_row) {
    const Index old_row = perm[static_cast<std::size_t>(new_row)];
    const auto cols_span = a.row_cols(old_row);
    const auto vals_span = a.row_vals(old_row);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      builder.add(new_row, inverse[static_cast<std::size_t>(cols_span[k])],
                  vals_span[k]);
    }
  }
  return builder.to_csr();
}

IndexVec invert_permutation(const IndexVec& perm) {
  IndexVec inverse(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const Index p = perm[i];
    RSLS_CHECK_MSG(p >= 0 && static_cast<std::size_t>(p) < perm.size(),
                   "permutation entry out of range");
    RSLS_CHECK_MSG(inverse[static_cast<std::size_t>(p)] == -1,
                   "permutation has a duplicate entry");
    inverse[static_cast<std::size_t>(p)] = static_cast<Index>(i);
  }
  return inverse;
}

RealVec permute_vector(const RealVec& in, const IndexVec& perm) {
  RSLS_CHECK(in.size() == perm.size());
  RealVec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[static_cast<std::size_t>(perm[i])];
  }
  return out;
}

}  // namespace rsls::sparse
