#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::sparse {

std::span<const Index> Csr::row_cols(Index row) const {
  RSLS_ASSERT(row >= 0 && row < rows);
  const auto begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(row)]);
  const auto end = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(row) + 1]);
  return {col_idx.data() + begin, end - begin};
}

std::span<const Real> Csr::row_vals(Index row) const {
  RSLS_ASSERT(row >= 0 && row < rows);
  const auto begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(row)]);
  const auto end = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(row) + 1]);
  return {values.data() + begin, end - begin};
}

Real Csr::at(Index row, Index col) const {
  const auto cols_span = row_cols(row);
  const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), col);
  if (it == cols_span.end() || *it != col) {
    return 0.0;
  }
  const auto offset = static_cast<std::size_t>(it - cols_span.begin());
  return row_vals(row)[offset];
}

void validate(const Csr& a) {
  RSLS_CHECK(a.rows >= 0 && a.cols >= 0);
  RSLS_CHECK_MSG(a.row_ptr.size() == static_cast<std::size_t>(a.rows) + 1,
                 "row_ptr size mismatch");
  RSLS_CHECK_MSG(a.col_idx.size() == a.values.size(),
                 "col_idx/values size mismatch");
  RSLS_CHECK_MSG(a.row_ptr.front() == 0, "row_ptr must start at 0");
  RSLS_CHECK_MSG(a.row_ptr.back() == a.nnz(), "row_ptr must end at nnz");
  for (Index r = 0; r < a.rows; ++r) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(r)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(r) + 1];
    RSLS_CHECK_MSG(lo <= hi, "row_ptr must be non-decreasing");
    for (Index k = lo; k < hi; ++k) {
      const Index c = a.col_idx[static_cast<std::size_t>(k)];
      RSLS_CHECK_MSG(c >= 0 && c < a.cols, "column index out of range");
      if (k > lo) {
        RSLS_CHECK_MSG(a.col_idx[static_cast<std::size_t>(k) - 1] < c,
                       "columns must be strictly ascending within a row");
      }
    }
  }
}

void spmv(const Csr& a, std::span<const Real> x, std::span<Real> y) {
  spmv_rows(a, 0, a.rows, x, y);
}

void spmv_add(const Csr& a, Real alpha, std::span<const Real> x,
              std::span<Real> y) {
  spmv_add_rows(a, 0, a.rows, alpha, x, y);
}

void spmv_rows(const Csr& a, Index row_begin, Index row_end,
               std::span<const Real> x, std::span<Real> y) {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  RSLS_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
  for (Index r = row_begin; r < row_end; ++r) {
    const auto lo = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
    Real sum = 0.0;
    for (std::size_t k = lo; k < hi; ++k) {
      sum += a.values[k] * x[static_cast<std::size_t>(a.col_idx[k])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void spmv_add_rows(const Csr& a, Index row_begin, Index row_end, Real alpha,
                   std::span<const Real> x, std::span<Real> y) {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  RSLS_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
  for (Index r = row_begin; r < row_end; ++r) {
    const auto lo = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
    Real sum = 0.0;
    for (std::size_t k = lo; k < hi; ++k) {
      sum += a.values[k] * x[static_cast<std::size_t>(a.col_idx[k])];
    }
    y[static_cast<std::size_t>(r)] += alpha * sum;
  }
}

void spmv_transpose(const Csr& a, std::span<const Real> x,
                    std::span<Real> y) {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(a.rows));
  RSLS_CHECK(y.size() == static_cast<std::size_t>(a.cols));
  std::fill(y.begin(), y.end(), 0.0);
  for (Index r = 0; r < a.rows; ++r) {
    const Real xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) {
      continue;
    }
    const auto lo = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      y[static_cast<std::size_t>(a.col_idx[k])] += a.values[k] * xr;
    }
  }
}

Csr transpose(const Csr& a) {
  Csr t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  t.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  t.values.resize(static_cast<std::size_t>(a.nnz()));
  // Count entries per column of a.
  for (const Index c : a.col_idx) {
    ++t.row_ptr[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(t.rows); ++r) {
    t.row_ptr[r + 1] += t.row_ptr[r];
  }
  IndexVec cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (Index r = 0; r < a.rows; ++r) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(r)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(r) + 1];
    for (Index k = lo; k < hi; ++k) {
      const Index c = a.col_idx[static_cast<std::size_t>(k)];
      const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++);
      t.col_idx[slot] = r;
      t.values[slot] = a.values[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

Csr extract_block(const Csr& a, Index row_begin, Index row_end,
                  Index col_begin, Index col_end) {
  RSLS_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows);
  RSLS_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= a.cols);
  Csr out;
  out.rows = row_end - row_begin;
  out.cols = col_end - col_begin;
  out.row_ptr.assign(static_cast<std::size_t>(out.rows) + 1, 0);
  for (Index r = row_begin; r < row_end; ++r) {
    const auto cols_span = a.row_cols(r);
    const auto vals_span = a.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      const Index c = cols_span[k];
      if (c >= col_begin && c < col_end) {
        out.col_idx.push_back(c - col_begin);
        out.values.push_back(vals_span[k]);
      }
    }
    out.row_ptr[static_cast<std::size_t>(r - row_begin) + 1] =
        static_cast<Index>(out.col_idx.size());
  }
  return out;
}

Csr extract_rows(const Csr& a, Index row_begin, Index row_end) {
  return extract_block(a, row_begin, row_end, 0, a.cols);
}

ColumnCompressed compress_columns(const Csr& a) {
  ColumnCompressed out;
  // Collect the ascending distinct columns.
  std::vector<bool> used(static_cast<std::size_t>(a.cols), false);
  for (const Index c : a.col_idx) {
    used[static_cast<std::size_t>(c)] = true;
  }
  IndexVec remap(static_cast<std::size_t>(a.cols), -1);
  for (Index c = 0; c < a.cols; ++c) {
    if (used[static_cast<std::size_t>(c)]) {
      remap[static_cast<std::size_t>(c)] =
          static_cast<Index>(out.support.size());
      out.support.push_back(c);
    }
  }
  out.matrix = a;
  out.matrix.cols = static_cast<Index>(out.support.size());
  for (Index& c : out.matrix.col_idx) {
    c = remap[static_cast<std::size_t>(c)];
  }
  return out;
}

RealVec diagonal(const Csr& a) {
  const Index n = std::min(a.rows, a.cols);
  RealVec d(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = a.at(i, i);
  }
  return d;
}

bool is_symmetric(const Csr& a, Real tol) {
  if (a.rows != a.cols) {
    return false;
  }
  Real max_abs = 0.0;
  for (const Real v : a.values) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  const Real threshold = tol * std::max(max_abs, Real{1.0});
  for (Index r = 0; r < a.rows; ++r) {
    const auto cols_span = a.row_cols(r);
    const auto vals_span = a.row_vals(r);
    for (std::size_t k = 0; k < cols_span.size(); ++k) {
      if (std::abs(vals_span[k] - a.at(cols_span[k], r)) > threshold) {
        return false;
      }
    }
  }
  return true;
}

Real residual_norm(const Csr& a, std::span<const Real> x,
                   std::span<const Real> b) {
  RSLS_CHECK(b.size() == static_cast<std::size_t>(a.rows));
  RealVec ax(static_cast<std::size_t>(a.rows));
  spmv(a, x, ax);
  Real sum = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const Real d = b[i] - ax[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace rsls::sparse
