#pragma once
// Triple modular redundancy (paper §1: "triple modular redundancy
// consumes 3× the power to provide error detection and correction").
//
// TMR is the paper's future-work extension of the RD scheme: with three
// replicas, majority voting both *detects* and *corrects* silent data
// corruption without any external detector — unlike every other scheme
// here, which assumes detection is provided (§3, [10]). Time is
// unchanged; power and energy triple (replica_factor() == 3).

#include "resilience/scheme.hpp"

namespace rsls::resilience {

class Tmr final : public RecoveryScheme {
 public:
  Tmr() = default;

  std::string name() const override { return "TMR"; }
  Index replica_factor() const override { return 3; }

  void on_iteration(RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  /// Majority vote: two healthy replicas outvote the corrupted one; the
  /// failed process's state is restored exactly and the solver continues
  /// on the fault-free trajectory.
  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// Corrections performed via voting (== recoveries()).
  Index votes() const { return votes_; }

 private:
  RealVec replica_x_;
  RealVec replica_r_;
  RealVec replica_p_;
  std::vector<RealVec> replica_extra_;
  Index votes_ = 0;
};

}  // namespace rsls::resilience
