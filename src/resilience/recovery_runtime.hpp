#pragma once
// Recovery runtime: what happens to the *machine* when a process dies.
//
// The recovery schemes (scheme.hpp) restore the numerics — they rebuild
// the lost block of x from parity, checkpoint, or replica. This layer
// prices what the cluster does about the dead slot itself, and makes the
// recovery path itself fallible:
//
//   kInPlace — the seed's model: the slot is magically healthy again
//              after the scheme runs (no machine-level action, no cost).
//   kSpare   — promote a warm spare core: stream the slot's working
//              state (three solver vectors + its block row of A) to the
//              spare at topology-diameter distance, then broadcast the
//              membership change. Falls back to kShrink when the pool
//              runs dry.
//   kShrink  — no spare: survivors absorb the lost block row. Each
//              taker pulls its share of the redistributed vectors and
//              matrix row, then an allreduce settles the new membership.
//
// Fallibility: with max_retries > 0 (or an attempt timeout) the
// orchestrator treats each recovery dispatch as an *attempt* that nested
// faults can strike; failed attempts wait out an exponential backoff of
// virtual time and retry, and when the ladder (retry → rollback →
// restart) exceeds max_escalations the solve is declared failed with a
// structured outcome instead of a poisoned iterate. All costs land in
// PhaseTag::kRecover.

#include <string>

#include "core/types.hpp"
#include "core/units.hpp"
#include "resilience/scheme.hpp"

namespace rsls::resilience {

enum class RecoveryPolicy { kInPlace, kSpare, kShrink };

const char* to_string(RecoveryPolicy policy);

/// Parse "in-place" (or "inplace"), "spare", "shrink"; rsls::Error
/// otherwise.
RecoveryPolicy recovery_policy_from_name(const std::string& name);

struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kInPlace;
  /// Warm spares provisioned on the cluster (kSpare promotes from this
  /// pool; they draw sleep power whether or not they are used).
  Index spare_ranks = 0;
  /// Retries per recovery dispatch after a nested fault strikes it or it
  /// times out. 0 = the seed's infallible single-shot recovery.
  Index max_retries = 0;
  /// First retry waits this long (virtual time); each further retry
  /// doubles it by backoff_factor.
  Seconds backoff_base = 50e-6;
  double backoff_factor = 2.0;
  /// A recovery attempt taking longer than this (virtual time) counts as
  /// failed and is retried. 0 = no timeout.
  Seconds attempt_timeout = 0.0;
  /// Ladder rounds (retry-exhausted → rollback → restart cycles) before
  /// the solve gives up and returns a declared failure.
  Index max_escalations = 8;

  /// True when the policy moves ranks (spare or shrink).
  bool hosts_ranks() const { return policy != RecoveryPolicy::kInPlace; }
  /// True when recovery attempts can fail and retry.
  bool fallible() const { return max_retries > 0 || attempt_timeout > 0.0; }
  /// True when any of this machinery is active; false = seed behavior.
  bool enabled() const {
    return hosts_ranks() || fallible() || spare_ranks > 0;
  }
};

struct RecoveryRuntimeStats {
  Index spares_consumed = 0;
  /// Spare promotions requested after the pool ran dry (fell back to
  /// shrinking recovery).
  Index spare_pool_dry = 0;
  Index shrink_events = 0;
  /// Shrinks skipped because no survivor remained to absorb the rows.
  Index shrink_skipped = 0;
};

class RecoveryRuntime {
 public:
  /// Validates the options (rsls::Error on negative counts, factor < 1,
  /// or negative durations).
  explicit RecoveryRuntime(const RecoveryOptions& options);

  const RecoveryOptions& options() const { return options_; }
  const RecoveryRuntimeStats& stats() const { return stats_; }

  /// Price the machine-level consequence of losing `ranks`: promote a
  /// spare per rank (falling back to shrink when the pool is dry) or
  /// shrink outright. No-op under kInPlace.
  void on_process_loss(RecoveryContext& ctx, const IndexVec& ranks);

  /// Exponential-backoff wait before retry `attempt` (1-based):
  /// backoff_base · backoff_factor^(attempt−1).
  Seconds backoff_seconds(Index attempt) const;

 private:
  void price_shrink(RecoveryContext& ctx, Index lost_rank);

  RecoveryOptions options_;
  RecoveryRuntimeStats stats_;
};

}  // namespace rsls::resilience
