#include "resilience/dmr.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

using power::Activity;
using power::PhaseTag;

void Dmr::on_iteration(RecoveryContext& ctx, Index /*iteration*/,
                       std::span<const Real> x) {
  replica_x_.assign(x.begin(), x.end());
  replica_r_.assign(ctx.r.begin(), ctx.r.end());
  replica_p_.assign(ctx.p.begin(), ctx.p.end());
  replica_extra_.resize(ctx.extra.size());
  for (std::size_t v = 0; v < ctx.extra.size(); ++v) {
    replica_extra_[v].assign(ctx.extra[v].begin(), ctx.extra[v].end());
  }
}

solver::HookAction Dmr::recover(RecoveryContext& ctx, Index /*iteration*/,
                                Index failed_rank, std::span<Real> x) {
  count_recovery();
  RSLS_CHECK_MSG(replica_x_.size() == x.size(),
                 "DMR fault before the first replicated iteration");
  const auto& part = ctx.a.partition();
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  Bytes transfer_bytes = ctx.a.block_bytes(failed_rank);
  for (Index i = begin; i < end; ++i) {
    x[static_cast<std::size_t>(i)] = replica_x_[static_cast<std::size_t>(i)];
  }
  // The replica partner holds the whole solver state, so the recurrence
  // vectors come back in the same transfer and recovery stays exact.
  if (replica_r_.size() == ctx.r.size() && !ctx.r.empty()) {
    for (Index i = begin; i < end; ++i) {
      ctx.r[static_cast<std::size_t>(i)] =
          replica_r_[static_cast<std::size_t>(i)];
    }
    transfer_bytes += ctx.a.block_bytes(failed_rank);
  }
  if (replica_p_.size() == ctx.p.size() && !ctx.p.empty()) {
    for (Index i = begin; i < end; ++i) {
      ctx.p[static_cast<std::size_t>(i)] =
          replica_p_[static_cast<std::size_t>(i)];
    }
    transfer_bytes += ctx.a.block_bytes(failed_rank);
  }
  // Pipelined recurrence vectors ride the same replica transfer.
  for (std::size_t v = 0;
       v < ctx.extra.size() && v < replica_extra_.size(); ++v) {
    if (replica_extra_[v].size() != ctx.extra[v].size() ||
        ctx.extra[v].empty()) {
      continue;
    }
    for (Index i = begin; i < end; ++i) {
      ctx.extra[v][static_cast<std::size_t>(i)] =
          replica_extra_[v][static_cast<std::size_t>(i)];
    }
    transfer_bytes += ctx.a.block_bytes(failed_rank);
  }
  // Transfer of the lost blocks from the replica partner: one copy,
  // priced by the interconnect at replica (full-diameter) distance.
  ctx.cluster.replica_fetch(failed_rank, transfer_bytes, 1,
                            PhaseTag::kReconstruct);
  ctx.cluster.sync(PhaseTag::kIdleWait);
  // The replica also restores the solver's internal vectors exactly, so
  // no restart is needed — RD tracks the fault-free trajectory.
  return solver::HookAction::kContinue;
}

bool Dmr::rollback(RecoveryContext& ctx, Index /*iteration*/,
                   std::span<Real> x) {
  if (replica_x_.size() != x.size()) {
    return false;  // fault before the first replicated iteration
  }
  count_recovery();
  std::copy(replica_x_.begin(), replica_x_.end(), x.begin());
  // Full-vector transfer from the replica set.
  ctx.cluster.read_memory(ctx.a.vector_bytes(), PhaseTag::kReconstruct);
  ctx.cluster.sync(PhaseTag::kIdleWait);
  return true;
}

}  // namespace rsls::resilience
