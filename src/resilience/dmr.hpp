#pragma once
// Dual modular redundancy (paper Table 2: RD / DMR).
//
// A full replica of the computation runs on a second set of N cores
// (replica_factor() == 2: the virtual cluster doubles the energy account,
// Eq. 12, while time is unchanged). On a fault the failed process's state
// is copied from its replica partner; recovery is exact, so the solver
// continues without restarting — RD matches the fault-free iteration
// count (Table 4 / Fig. 5).

#include "resilience/scheme.hpp"

namespace rsls::resilience {

class Dmr final : public RecoveryScheme {
 public:
  Dmr() = default;

  std::string name() const override { return "RD"; }
  Index replica_factor() const override { return 2; }

  void on_iteration(RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// Escalation: restore the whole iterate from the replica.
  bool rollback(RecoveryContext& ctx, Index iteration,
                std::span<Real> x) override;

 private:
  /// The replica's copy of the solver state (x, r, p, and any extra
  /// recurrence vectors a pipelined solver exposes). Maintained for
  /// free: the replica genuinely computes it, so no extra time/energy is
  /// charged here beyond what replica_factor already doubles.
  RealVec replica_x_;
  RealVec replica_r_;
  RealVec replica_p_;
  std::vector<RealVec> replica_extra_;
};

}  // namespace rsls::resilience
