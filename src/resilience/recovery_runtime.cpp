#include "resilience/recovery_runtime.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "dist/partition.hpp"
#include "dist/rank_executor.hpp"
#include "obs/recorder.hpp"

namespace rsls::resilience {

using power::PhaseTag;

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kInPlace:
      return "in-place";
    case RecoveryPolicy::kSpare:
      return "spare";
    case RecoveryPolicy::kShrink:
      return "shrink";
  }
  return "?";
}

RecoveryPolicy recovery_policy_from_name(const std::string& name) {
  if (name == "in-place" || name == "inplace") {
    return RecoveryPolicy::kInPlace;
  }
  if (name == "spare") {
    return RecoveryPolicy::kSpare;
  }
  if (name == "shrink") {
    return RecoveryPolicy::kShrink;
  }
  throw Error("unknown recovery policy \"" + name +
              "\" (expected in-place, spare, or shrink)");
}

RecoveryRuntime::RecoveryRuntime(const RecoveryOptions& options)
    : options_(options) {
  if (options.spare_ranks < 0) {
    throw Error("spare_ranks must be non-negative (spare_ranks = " +
                std::to_string(options.spare_ranks) + ")");
  }
  if (options.max_retries < 0) {
    throw Error("max_retries must be non-negative (max_retries = " +
                std::to_string(options.max_retries) + ")");
  }
  if (!(options.backoff_base >= 0.0)) {
    throw Error("backoff_base must be non-negative");
  }
  if (!(options.backoff_factor >= 1.0)) {
    throw Error("backoff_factor must be at least 1");
  }
  if (!(options.attempt_timeout >= 0.0)) {
    throw Error("attempt_timeout must be non-negative");
  }
  if (options.max_escalations < 0) {
    throw Error("max_escalations must be non-negative (max_escalations = " +
                std::to_string(options.max_escalations) + ")");
  }
}

Seconds RecoveryRuntime::backoff_seconds(Index attempt) const {
  RSLS_CHECK(attempt >= 1);
  return options_.backoff_base *
         std::pow(options_.backoff_factor, static_cast<double>(attempt - 1));
}

void RecoveryRuntime::on_process_loss(RecoveryContext& ctx,
                                      const IndexVec& ranks) {
  if (!options_.hosts_ranks()) {
    return;
  }
  const auto& part = ctx.a.partition();
  for (const Index rank : ranks) {
    if (options_.policy == RecoveryPolicy::kSpare) {
      // Full working state of the lost slot: three solver vectors
      // (x, r, p at 8 B/row) plus its block row of A (value + column
      // index, 12 B/entry).
      const Bytes state_bytes =
          static_cast<double>(part.block_rows(rank)) * 8.0 * 3.0 +
          static_cast<double>(ctx.a.local_nnz(rank)) * 12.0;
      if (ctx.cluster.promote_spare(rank, state_bytes, PhaseTag::kRecover)) {
        ++stats_.spares_consumed;
        obs::count(ctx.recorder, "resilience.spares_consumed");
        continue;
      }
      ++stats_.spare_pool_dry;
      obs::count(ctx.recorder, "resilience.spare_pool_dry");
      // Pool dry: fall through to shrinking recovery.
    }
    price_shrink(ctx, rank);
  }
}

void RecoveryRuntime::price_shrink(RecoveryContext& ctx, Index lost_rank) {
  const auto& part = ctx.a.partition();
  const Index survivors = part.parts() - 1;
  if (survivors < 1) {
    // Last rank standing has nobody to shrink onto.
    ++stats_.shrink_skipped;
    obs::count(ctx.recorder, "resilience.shrink_skipped");
    return;
  }
  const Index lost_rows = part.block_rows(lost_rank);
  if (lost_rows >= 1) {
    // Survivors split the lost block row; each taker pulls its share of
    // the three solver vectors (24 B/row) and the matrix row (average
    // nnz-per-row × 12 B) one-sidedly, off its own timeline.
    const double row_bytes =
        24.0 + static_cast<double>(ctx.a.local_nnz(lost_rank)) /
                   static_cast<double>(lost_rows) * 12.0;
    const Index takers = std::min<Index>(survivors, lost_rows);
    const dist::Partition shares(lost_rows, takers);
    // Size each taker's pull in parallel (disjoint slots), then replay
    // the cluster charges serially in ascending taker order — the
    // VirtualCluster is not thread-safe and the charge stream must stay
    // bitwise identical to the serial loop.
    std::vector<double> gather_bytes(static_cast<std::size_t>(takers), 0.0);
    dist::RankExecutor::instance().for_each_rank(
        takers,
        [&](Index s) {
          gather_bytes[static_cast<std::size_t>(s)] =
              static_cast<double>(shares.block_rows(s)) * row_bytes;
        },
        /*work=*/takers);
    for (Index s = 0; s < takers; ++s) {
      const Index survivor = s < lost_rank ? s : s + 1;
      ctx.cluster.neighbor_gather(survivor, 1.0,
                                  gather_bytes[static_cast<std::size_t>(s)],
                                  PhaseTag::kRecover);
    }
  }
  // The new ownership map has to settle everywhere before the solve
  // continues.
  ctx.cluster.allreduce(8.0, PhaseTag::kRecover);
  ++stats_.shrink_events;
  obs::count(ctx.recorder, "resilience.shrink_events");
}

}  // namespace rsls::resilience
