#include "resilience/detector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"
#include "dist/dist_ops.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::resilience {

using power::PhaseTag;

std::uint64_t fnv1a64(std::span<const Real> v) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const Real value : v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(Real) == sizeof(bits));
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

namespace {

std::span<const Real> block_of(const dist::Partition& part, Index rank,
                               std::span<const Real> v) {
  return v.subspan(static_cast<std::size_t>(part.begin(rank)),
                   static_cast<std::size_t>(part.block_rows(rank)));
}

/// Per-block squared norms of b − Ax, charged as one SpMV plus a local
/// pass per rank and a per-block-norm allreduce (all kDetect).
struct BlockResidual {
  RealVec block_sqnorm;
  Real total_sqnorm = 0.0;
  Real b_norm = 0.0;
};

BlockResidual charged_block_residual(DetectionContext& ctx,
                                     std::span<const Real> x) {
  const auto& part = ctx.a.partition();
  const auto n = static_cast<std::size_t>(ctx.a.rows());
  RSLS_CHECK(x.size() == n);
  RealVec ax(n);
  dist::dist_spmv(ctx.a, ctx.cluster, x, ax, PhaseTag::kDetect,
                  ctx.spmv_plan);
  BlockResidual out;
  out.block_sqnorm.assign(static_cast<std::size_t>(part.parts()), 0.0);
  for (Index rank = 0; rank < part.parts(); ++rank) {
    double sq = 0.0;
    for (Index i = part.begin(rank); i < part.end(rank); ++i) {
      const double d = ctx.b[static_cast<std::size_t>(i)] -
                       ax[static_cast<std::size_t>(i)];
      sq += d * d;
    }
    out.block_sqnorm[static_cast<std::size_t>(rank)] = sq;
    out.total_sqnorm += sq;
    ctx.cluster.charge_compute(
        rank, 2.0 * static_cast<double>(part.block_rows(rank)),
        PhaseTag::kDetect);
  }
  // Share the per-block norms so every rank can localize.
  ctx.cluster.allreduce(8.0 * static_cast<double>(part.parts()),
                        PhaseTag::kDetect);
  // ‖b‖ is static; a real run computes it once at solver start, so no
  // per-inspection charge.
  out.b_norm = sparse::norm2(ctx.b);
  return out;
}

/// Blocks that dominate the residual: non-finite ones, else every block
/// within a factor of the largest.
IndexVec suspect_blocks(const BlockResidual& br) {
  IndexVec suspects;
  for (std::size_t p = 0; p < br.block_sqnorm.size(); ++p) {
    if (!std::isfinite(br.block_sqnorm[p])) {
      suspects.push_back(static_cast<Index>(p));
    }
  }
  if (!suspects.empty()) {
    return suspects;
  }
  const Real max_sq =
      *std::max_element(br.block_sqnorm.begin(), br.block_sqnorm.end());
  if (max_sq <= 0.0) {
    return suspects;
  }
  for (std::size_t p = 0; p < br.block_sqnorm.size(); ++p) {
    if (br.block_sqnorm[p] >= 0.3 * max_sq) {
      suspects.push_back(static_cast<Index>(p));
    }
  }
  return suspects;
}

}  // namespace

// --- BlockChecksumDetector -------------------------------------------------

void BlockChecksumDetector::observe(DetectionContext& ctx, Index /*iteration*/,
                                    std::span<const Real> x) {
  const auto& part = ctx.a.partition();
  checksums_.resize(static_cast<std::size_t>(part.parts()));
  for (Index rank = 0; rank < part.parts(); ++rank) {
    checksums_[static_cast<std::size_t>(rank)] =
        fnv1a64(block_of(part, rank, x));
    ctx.cluster.charge_compute(
        rank, static_cast<double>(part.block_rows(rank)), PhaseTag::kDetect);
  }
}

DetectionVerdict BlockChecksumDetector::inspect(DetectionContext& ctx,
                                                Index /*iteration*/,
                                                Real /*recurrence*/,
                                                std::span<const Real> x) {
  count_inspection();
  DetectionVerdict verdict;
  if (checksums_.empty()) {
    return verdict;  // nothing observed yet (e.g. right after a recovery)
  }
  const auto& part = ctx.a.partition();
  for (Index rank = 0; rank < part.parts(); ++rank) {
    if (fnv1a64(block_of(part, rank, x)) !=
        checksums_[static_cast<std::size_t>(rank)]) {
      verdict.suspect_ranks.push_back(rank);
    }
    ctx.cluster.charge_compute(
        rank, static_cast<double>(part.block_rows(rank)), PhaseTag::kDetect);
  }
  // Agree on the verdict cluster-wide.
  ctx.cluster.allreduce(8.0, PhaseTag::kDetect);
  if (!verdict.suspect_ranks.empty()) {
    verdict.flagged = true;
    verdict.detector = name();
    count_detection();
  }
  return verdict;
}

// --- NormBoundDetector -----------------------------------------------------

NormBoundDetector::NormBoundDetector(Real growth_factor)
    : growth_factor_(growth_factor) {
  RSLS_CHECK_MSG(growth_factor > 1.0,
                 "norm growth factor must exceed 1 (legitimate iterates "
                 "may grow modestly)");
}

DetectionVerdict NormBoundDetector::inspect(DetectionContext& ctx,
                                            Index /*iteration*/,
                                            Real recurrence_relative_residual,
                                            std::span<const Real> x) {
  count_inspection();
  DetectionVerdict verdict;
  const auto& part = ctx.a.partition();
  const Real bound = growth_factor_ * std::max(baseline_inf_, 1.0);
  Real inf_norm = 0.0;
  for (Index rank = 0; rank < part.parts(); ++rank) {
    bool bad = false;
    for (Index i = part.begin(rank); i < part.end(rank); ++i) {
      const Real v = x[static_cast<std::size_t>(i)];
      if (!std::isfinite(v) || std::abs(v) > bound) {
        bad = true;
      } else {
        inf_norm = std::max(inf_norm, std::abs(v));
      }
    }
    if (bad) {
      verdict.suspect_ranks.push_back(rank);
    }
    ctx.cluster.charge_compute(
        rank, static_cast<double>(part.block_rows(rank)), PhaseTag::kDetect);
  }
  ctx.cluster.allreduce(8.0, PhaseTag::kDetect);
  if (!verdict.suspect_ranks.empty()) {
    verdict.flagged = true;
    verdict.detector = name();
    count_detection();
    return verdict;
  }
  if (!std::isfinite(recurrence_relative_residual)) {
    // x is clean but the solver's own residual estimate is non-finite:
    // the recurrence state is corrupted.
    verdict.flagged = true;
    verdict.derived_state_only = true;
    verdict.detector = name();
    count_detection();
    return verdict;
  }
  baseline_inf_ = std::max(baseline_inf_, inf_norm);
  return verdict;
}

// --- ResidualGapDetector ---------------------------------------------------

ResidualGapDetector::ResidualGapDetector(Index cadence, Real gap_factor,
                                         Real floor)
    : cadence_(cadence), gap_factor_(gap_factor), floor_(floor) {
  RSLS_CHECK_MSG(cadence >= 1, "residual-gap cadence must be at least 1");
  RSLS_CHECK_MSG(gap_factor > 1.0, "residual gap factor must exceed 1");
  RSLS_CHECK(floor >= 0.0);
}

DetectionVerdict ResidualGapDetector::inspect(
    DetectionContext& ctx, Index /*iteration*/,
    Real recurrence_relative_residual, std::span<const Real> x) {
  count_inspection();
  DetectionVerdict verdict;
  const BlockResidual br = charged_block_residual(ctx, x);
  const Real rel_true = std::isfinite(br.total_sqnorm)
                            ? std::sqrt(br.total_sqnorm) /
                                  (br.b_norm > 0.0 ? br.b_norm : 1.0)
                            : std::numeric_limits<Real>::infinity();
  const Real rel_rec = recurrence_relative_residual;
  const bool x_suspect =
      !std::isfinite(rel_true) ||
      rel_true > gap_factor_ * std::max(rel_rec, 0.0) + floor_;
  const bool recurrence_suspect =
      std::isfinite(rel_true) &&
      (!std::isfinite(rel_rec) ||
       rel_rec > gap_factor_ * rel_true + floor_);
  if (x_suspect) {
    verdict.flagged = true;
    verdict.detector = name();
    verdict.suspect_ranks = suspect_blocks(br);
    count_detection();
  } else if (recurrence_suspect) {
    verdict.flagged = true;
    verdict.derived_state_only = true;
    verdict.detector = name();
    count_detection();
  }
  return verdict;
}

// --- DetectorSuite ---------------------------------------------------------

void DetectorSuite::add(std::unique_ptr<SdcDetector> detector) {
  RSLS_CHECK(detector != nullptr);
  detectors_.push_back(std::move(detector));
}

void DetectorSuite::observe(DetectionContext& ctx, Index iteration,
                            std::span<const Real> x) {
  for (const auto& d : detectors_) {
    d->observe(ctx, iteration, x);
  }
}

DetectionVerdict DetectorSuite::inspect(DetectionContext& ctx, Index iteration,
                                        Real recurrence_relative_residual,
                                        std::span<const Real> x) {
  for (const auto& d : detectors_) {
    if (iteration % d->cadence() != 0) {
      continue;
    }
    DetectionVerdict verdict =
        d->inspect(ctx, iteration, recurrence_relative_residual, x);
    if (verdict.flagged) {
      return verdict;
    }
  }
  return {};
}

void DetectorSuite::invalidate() {
  for (const auto& d : detectors_) {
    d->invalidate();
  }
}

Index DetectorSuite::inspections() const {
  Index sum = 0;
  for (const auto& d : detectors_) {
    sum += d->inspections();
  }
  return sum;
}

Index DetectorSuite::detections() const {
  Index sum = 0;
  for (const auto& d : detectors_) {
    sum += d->detections();
  }
  return sum;
}

DetectorSuite make_detector_suite(const DetectionOptions& options) {
  DetectorSuite suite;
  if (options.enable_checksum) {
    suite.add(std::make_unique<BlockChecksumDetector>());
  }
  if (options.enable_norm_bound) {
    suite.add(std::make_unique<NormBoundDetector>(options.norm_growth_factor));
  }
  if (options.enable_residual_gap) {
    suite.add(std::make_unique<ResidualGapDetector>(
        options.residual_gap_cadence, options.residual_gap_factor,
        options.residual_gap_floor));
  }
  return suite;
}

DetectionVerdict validate_state(DetectionContext& ctx, std::span<const Real> x,
                                Real residual_bound) {
  RSLS_CHECK(residual_bound > 0.0);
  DetectionVerdict verdict;
  const auto& part = ctx.a.partition();
  for (Index rank = 0; rank < part.parts(); ++rank) {
    for (Index i = part.begin(rank); i < part.end(rank); ++i) {
      if (!std::isfinite(x[static_cast<std::size_t>(i)])) {
        verdict.suspect_ranks.push_back(rank);
        break;
      }
    }
    ctx.cluster.charge_compute(
        rank, static_cast<double>(part.block_rows(rank)), PhaseTag::kDetect);
  }
  if (!verdict.suspect_ranks.empty()) {
    verdict.flagged = true;
    verdict.detector = "validate";
    return verdict;
  }
  const BlockResidual br = charged_block_residual(ctx, x);
  const Real rel_true =
      std::sqrt(br.total_sqnorm) / (br.b_norm > 0.0 ? br.b_norm : 1.0);
  if (!std::isfinite(rel_true) || rel_true > residual_bound) {
    verdict.flagged = true;
    verdict.detector = "validate";
    verdict.suspect_ranks = suspect_blocks(br);
  }
  return verdict;
}

}  // namespace rsls::resilience
