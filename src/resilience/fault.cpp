#include "resilience/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "core/error.hpp"

namespace rsls::resilience {

FaultInjector::FaultInjector(Mode mode, Index num_ranks, std::uint64_t seed)
    : mode_(mode), num_ranks_(num_ranks), rng_(seed) {
  if (num_ranks < 1) {
    throw Error("fault injector needs at least one rank (num_ranks = " +
                std::to_string(num_ranks) + ")");
  }
}

FaultInjector FaultInjector::evenly_spaced(Index count, Index ff_iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  if (count < 0) {
    throw Error("fault count must be non-negative (count = " +
                std::to_string(count) + ")");
  }
  if (ff_iterations < 1) {
    throw Error("fault-free iteration count must be at least 1 "
                "(ff_iterations = " +
                std::to_string(ff_iterations) + ")");
  }
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (Index j = 1; j <= count; ++j) {
    const Index at = (j * ff_iterations) / (count + 1);
    if (at >= 1 && at < ff_iterations) {
      injector.fault_iterations_.push_back(at);
    }
  }
  return injector;
}

FaultInjector FaultInjector::evenly_spaced_multi(Index count,
                                                 Index ff_iterations,
                                                 Index ranks_per_fault,
                                                 Index num_ranks,
                                                 std::uint64_t seed) {
  if (ranks_per_fault < 1 || ranks_per_fault > num_ranks) {
    throw Error("ranks_per_fault must be in [1, num_ranks]: "
                "ranks_per_fault = " +
                std::to_string(ranks_per_fault) +
                ", num_ranks = " + std::to_string(num_ranks));
  }
  FaultInjector injector =
      evenly_spaced(count, ff_iterations, num_ranks, seed);
  injector.ranks_per_fault_ = ranks_per_fault;
  return injector;
}

FaultInjector FaultInjector::at_iterations(IndexVec iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    if (iterations[i] < 1) {
      throw Error("fault iterations must be at least 1 (faults fire at "
                  "completed-iteration boundaries): iterations[" +
                  std::to_string(i) +
                  "] = " + std::to_string(iterations[i]));
    }
    if (i > 0 && iterations[i] <= iterations[i - 1]) {
      throw Error("fault iterations must be strictly ascending: "
                  "iterations[" +
                  std::to_string(i) + "] = " + std::to_string(iterations[i]) +
                  " after " + std::to_string(iterations[i - 1]));
    }
  }
  injector.fault_iterations_ = std::move(iterations);
  return injector;
}

FaultInjector FaultInjector::at_times(std::vector<Seconds> times,
                                      Index num_ranks, std::uint64_t seed) {
  FaultInjector injector(Mode::kAtTimes, num_ranks, seed);
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!(times[i] > 0.0)) {
      throw Error("fault times must be positive: times[" + std::to_string(i) +
                  "] = " + std::to_string(times[i]));
    }
    if (i > 0 && times[i] <= times[i - 1]) {
      throw Error("fault times must be strictly ascending: times[" +
                  std::to_string(i) + "] = " + std::to_string(times[i]) +
                  " after " + std::to_string(times[i - 1]));
    }
  }
  injector.fault_times_ = std::move(times);
  return injector;
}

FaultInjector FaultInjector::poisson(PerSecond lambda, Index num_ranks,
                                     std::uint64_t seed) {
  if (!(lambda > 0.0)) {
    throw Error("Poisson fault rate must be positive (lambda = " +
                std::to_string(lambda) + ")");
  }
  FaultInjector injector(Mode::kPoisson, num_ranks, seed);
  injector.lambda_ = lambda;
  injector.next_arrival_ = injector.rng_.exponential(lambda);
  return injector;
}

FaultInjector FaultInjector::weibull(Seconds mtbf, double shape,
                                     Index num_ranks, std::uint64_t seed) {
  if (!(mtbf > 0.0)) {
    throw Error("Weibull MTBF must be positive (mtbf = " +
                std::to_string(mtbf) + ")");
  }
  if (!(shape > 0.0)) {
    throw Error("Weibull shape must be positive (shape = " +
                std::to_string(shape) + ")");
  }
  FaultInjector injector(Mode::kWeibull, num_ranks, seed);
  injector.weibull_shape_ = shape;
  // Scale chosen so the mean inter-arrival gap is the MTBF at any shape:
  // E[gap] = scale · Γ(1 + 1/k).
  injector.weibull_scale_ = mtbf / std::tgamma(1.0 + 1.0 / shape);
  injector.next_arrival_ =
      injector.rng_.weibull(shape, injector.weibull_scale_);
  return injector;
}

FaultInjector FaultInjector::from_schedule(std::vector<FaultRecord> records,
                                           Index num_ranks) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].ranks.empty()) {
      throw Error("fault schedule record " + std::to_string(i) +
                  " has no failed ranks");
    }
    for (const Index rank : records[i].ranks) {
      if (rank < 0 || rank >= num_ranks) {
        throw Error("fault schedule record " + std::to_string(i) +
                    " names rank " + std::to_string(rank) +
                    " outside [0, " + std::to_string(num_ranks) + ")");
      }
    }
    if (i > 0 && records[i].time < records[i - 1].time) {
      throw Error("fault schedule times must be non-descending: record " +
                  std::to_string(i) + " at t = " +
                  std::to_string(records[i].time) + " after t = " +
                  std::to_string(records[i - 1].time));
    }
  }
  FaultInjector injector(Mode::kReplay, num_ranks, /*seed=*/0);
  injector.replay_records_ = std::move(records);
  return injector;
}

FaultInjector FaultInjector::none() {
  return FaultInjector(Mode::kNone, 1, 0);
}

FaultInjector& FaultInjector::with_domains(FailureDomains domains) {
  if (domains.groups.empty()) {
    throw Error("with_domains needs at least one failure domain");
  }
  for (const IndexVec& group : domains.groups) {
    for (const Index rank : group) {
      if (rank < 0 || rank >= num_ranks_) {
        throw Error("failure domain names rank " + std::to_string(rank) +
                    " outside [0, " + std::to_string(num_ranks_) + ")");
      }
    }
  }
  domains_ = std::move(domains);
  return *this;
}

FaultInjector& FaultInjector::with_burstiness(double probability,
                                              double compression) {
  if (!(probability >= 0.0 && probability <= 1.0)) {
    throw Error("burstiness probability must be in [0, 1] (probability = " +
                std::to_string(probability) + ")");
  }
  if (!(compression > 0.0)) {
    throw Error("burstiness compression must be positive (compression = " +
                std::to_string(compression) + ")");
  }
  burst_probability_ = probability;
  burst_compression_ = compression;
  return *this;
}

FaultInjector& FaultInjector::as_sdc(SdcMode mode, SdcTarget target,
                                     Index bitflips) {
  RSLS_CHECK_MSG(bitflips >= 1, "bit-flip SDC needs at least one flip");
  fault_class_ = FaultClass::kSilentCorruption;
  sdc_mode_ = mode;
  sdc_target_ = target;
  sdc_bitflips_ = bitflips;
  return *this;
}

bool FaultInjector::fire_due(Index iteration, Seconds now) {
  switch (mode_) {
    case Mode::kNone:
    case Mode::kReplay:
      return false;
    case Mode::kEvenlySpaced:
      if (next_fault_ < fault_iterations_.size() &&
          iteration >= fault_iterations_[next_fault_]) {
        ++next_fault_;
        return true;
      }
      return false;
    case Mode::kAtTimes:
      if (next_time_ < fault_times_.size() &&
          now >= fault_times_[next_time_]) {
        ++next_time_;
        return true;
      }
      return false;
    case Mode::kPoisson:
    case Mode::kWeibull:
      // The next gap is drawn at fire time (not ahead of it) so the RNG
      // stream stays byte-identical to the original single-mode code.
      if (now >= next_arrival_) {
        next_arrival_ += next_gap();
        return true;
      }
      return false;
  }
  return false;
}

Seconds FaultInjector::next_gap() {
  Seconds gap = (mode_ == Mode::kWeibull)
                    ? rng_.weibull(weibull_shape_, weibull_scale_)
                    : rng_.exponential(lambda_);
  // Only consume the burst draw when the knob is on, so default runs
  // keep the seed's RNG consumption order.
  if (burst_probability_ > 0.0 && rng_.uniform() < burst_probability_) {
    gap *= burst_compression_;
  }
  return gap;
}

std::optional<FaultEvent> FaultInjector::replay_event(Index iteration,
                                                      Seconds now) {
  if (replay_next_ >= replay_records_.size()) {
    return std::nullopt;
  }
  const FaultRecord& rec = replay_records_[replay_next_];
  if (iteration < rec.iteration || now < rec.time) {
    return std::nullopt;
  }
  ++replay_next_;
  FaultEvent event;
  event.ranks = rec.ranks;
  event.cls = rec.cls;
  event.target = rec.target;
  event.mode = rec.mode;
  event.bitflips = rec.bitflips;
  event.corruption_seed = rec.corruption_seed;
  event.domain_event = rec.domain_event;
  injected_ += static_cast<Index>(event.ranks.size());
  if (event.domain_event) {
    ++domain_events_;
  }
  // Record the realized firing point (recovery may have shifted virtual
  // time past the recorded stamp).
  FaultRecord realized = rec;
  realized.time = now;
  realized.iteration = iteration;
  schedule_.push_back(std::move(realized));
  return event;
}

std::optional<Index> FaultInjector::check(Index iteration, Seconds now) {
  if (mode_ == Mode::kReplay) {
    const auto event = replay_event(iteration, now);
    if (!event.has_value()) {
      return std::nullopt;
    }
    return event->ranks.front();
  }
  if (!fire_due(iteration, now)) {
    return std::nullopt;
  }
  ++injected_;
  return static_cast<Index>(
      rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
}

IndexVec FaultInjector::check_multi(Index iteration, Seconds now) {
  if (mode_ == Mode::kReplay) {
    const auto event = replay_event(iteration, now);
    return event.has_value() ? event->ranks : IndexVec{};
  }
  if (!domains_.groups.empty()) {
    // Domain mode: one draw picks the domain, and the whole domain dies.
    if (!fire_due(iteration, now)) {
      return {};
    }
    const auto d = static_cast<std::size_t>(rng_.uniform_index(
        static_cast<std::uint64_t>(domains_.groups.size())));
    ++domain_events_;
    injected_ += static_cast<Index>(domains_.groups[d].size());
    return domains_.groups[d];
  }
  IndexVec failed;
  const auto first = check(iteration, now);
  if (!first.has_value()) {
    return failed;
  }
  failed.push_back(*first);
  // Draw the remaining distinct victims of this fault event.
  while (static_cast<Index>(failed.size()) < ranks_per_fault_) {
    const auto candidate = static_cast<Index>(
        rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
    if (std::find(failed.begin(), failed.end(), candidate) == failed.end()) {
      failed.push_back(candidate);
    }
  }
  injected_ += static_cast<Index>(failed.size()) - 1;
  return failed;
}

std::optional<FaultEvent> FaultInjector::next_event(Index iteration,
                                                    Seconds now) {
  if (mode_ == Mode::kReplay) {
    return replay_event(iteration, now);
  }
  const Index domains_before = domain_events_;
  IndexVec failed = check_multi(iteration, now);
  if (failed.empty()) {
    return std::nullopt;
  }
  FaultEvent event;
  event.ranks = std::move(failed);
  event.cls = fault_class_;
  event.target = sdc_target_;
  event.mode = sdc_mode_;
  event.bitflips = sdc_bitflips_;
  event.domain_event = domain_events_ > domains_before;
  // Per-event corruption seed so every SDC event damages differently but
  // the whole schedule stays deterministic in the injector seed.
  event.corruption_seed = rng_.next_u64();
  schedule_.push_back({now, iteration, event.ranks, event.cls, event.target,
                       event.mode, event.bitflips, event.corruption_seed,
                       event.domain_event});
  return event;
}

void FaultInjector::corrupt_block(const dist::Partition& part,
                                  Index failed_rank, std::span<Real> x) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::numeric_limits<Real>::quiet_NaN();
  }
}

void FaultInjector::corrupt_block_sdc(const dist::Partition& part,
                                      Index failed_rank, std::span<Real> x,
                                      std::uint64_t seed) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  Rng rng(seed);
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    // Bit-flip-like damage: wildly rescaled and sign-flipped values,
    // always large (≥ 10) but finite so nothing downstream NaN-checks
    // its way to a free detection.
    const double magnitude = std::pow(10.0, rng.uniform(1.0, 8.0));
    x[static_cast<std::size_t>(i)] =
        (rng.uniform() < 0.5 ? -1.0 : 1.0) * magnitude;
  }
}

void FaultInjector::corrupt_block_bitflips(const dist::Partition& part,
                                           Index failed_rank,
                                           std::span<Real> x, Index flips,
                                           std::uint64_t seed) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  RSLS_CHECK_MSG(flips >= 1, "bit-flip corruption needs at least one flip");
  static_assert(sizeof(Real) == sizeof(std::uint64_t));
  Rng rng(seed);
  const Index begin = part.begin(failed_rank);
  const auto block =
      static_cast<std::uint64_t>(part.block_rows(failed_rank));
  for (Index f = 0; f < flips; ++f) {
    const auto i =
        static_cast<std::size_t>(begin) + rng.uniform_index(block);
    const auto bit = rng.uniform_index(64);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x[i], sizeof(bits));
    bits ^= std::uint64_t{1} << bit;
    std::memcpy(&x[i], &bits, sizeof(bits));
  }
}

void FaultInjector::apply_corruption(const FaultEvent& event,
                                     const dist::Partition& part,
                                     std::span<Real> v) {
  std::uint64_t seed = event.corruption_seed;
  for (const Index rank : event.ranks) {
    if (event.cls == FaultClass::kProcessLoss) {
      corrupt_block(part, rank, v);
    } else if (event.mode == SdcMode::kGarbage) {
      corrupt_block_sdc(part, rank, v, seed);
    } else {
      corrupt_block_bitflips(part, rank, v, event.bitflips, seed);
    }
    ++seed;  // distinct damage per rank of a multi-rank event
  }
}

}  // namespace rsls::resilience
