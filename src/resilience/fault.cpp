#include "resilience/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/error.hpp"

namespace rsls::resilience {

FaultInjector::FaultInjector(Mode mode, Index num_ranks, std::uint64_t seed)
    : mode_(mode), num_ranks_(num_ranks), rng_(seed) {
  RSLS_CHECK(num_ranks >= 1);
}

FaultInjector FaultInjector::evenly_spaced(Index count, Index ff_iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  RSLS_CHECK_MSG(count >= 0, "fault count must be non-negative");
  RSLS_CHECK_MSG(ff_iterations >= 1,
                 "fault-free iteration count must be at least 1");
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (Index j = 1; j <= count; ++j) {
    const Index at = (j * ff_iterations) / (count + 1);
    if (at >= 1 && at < ff_iterations) {
      injector.fault_iterations_.push_back(at);
    }
  }
  return injector;
}

FaultInjector FaultInjector::evenly_spaced_multi(Index count,
                                                 Index ff_iterations,
                                                 Index ranks_per_fault,
                                                 Index num_ranks,
                                                 std::uint64_t seed) {
  RSLS_CHECK_MSG(ranks_per_fault >= 1,
                 "each fault event must take out at least one rank");
  RSLS_CHECK_MSG(ranks_per_fault <= num_ranks,
                 "a fault event cannot take out more ranks than the run has "
                 "(ranks_per_fault > num_ranks)");
  FaultInjector injector =
      evenly_spaced(count, ff_iterations, num_ranks, seed);
  injector.ranks_per_fault_ = ranks_per_fault;
  return injector;
}

FaultInjector FaultInjector::at_iterations(IndexVec iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    RSLS_CHECK_MSG(iterations[i] >= 1,
                   "fault iterations must be at least 1 (faults fire at "
                   "completed-iteration boundaries)");
    if (i > 0) {
      RSLS_CHECK_MSG(iterations[i] > iterations[i - 1],
                     "fault iterations must be strictly ascending");
    }
  }
  injector.fault_iterations_ = std::move(iterations);
  return injector;
}

FaultInjector FaultInjector::at_times(std::vector<Seconds> times,
                                      Index num_ranks, std::uint64_t seed) {
  FaultInjector injector(Mode::kAtTimes, num_ranks, seed);
  for (std::size_t i = 0; i < times.size(); ++i) {
    RSLS_CHECK_MSG(times[i] > 0.0, "fault times must be positive");
    if (i > 0) {
      RSLS_CHECK_MSG(times[i] > times[i - 1],
                     "fault times must be strictly ascending");
    }
  }
  injector.fault_times_ = std::move(times);
  return injector;
}

FaultInjector FaultInjector::poisson(PerSecond lambda, Index num_ranks,
                                     std::uint64_t seed) {
  RSLS_CHECK_MSG(lambda > 0.0, "Poisson fault rate must be positive");
  FaultInjector injector(Mode::kPoisson, num_ranks, seed);
  injector.lambda_ = lambda;
  injector.next_arrival_ = injector.rng_.exponential(lambda);
  return injector;
}

FaultInjector FaultInjector::none() {
  return FaultInjector(Mode::kNone, 1, 0);
}

FaultInjector& FaultInjector::as_sdc(SdcMode mode, SdcTarget target,
                                     Index bitflips) {
  RSLS_CHECK_MSG(bitflips >= 1, "bit-flip SDC needs at least one flip");
  fault_class_ = FaultClass::kSilentCorruption;
  sdc_mode_ = mode;
  sdc_target_ = target;
  sdc_bitflips_ = bitflips;
  return *this;
}

std::optional<Index> FaultInjector::check(Index iteration, Seconds now) {
  switch (mode_) {
    case Mode::kNone:
      return std::nullopt;
    case Mode::kEvenlySpaced: {
      if (next_fault_ < fault_iterations_.size() &&
          iteration >= fault_iterations_[next_fault_]) {
        ++next_fault_;
        ++injected_;
        return static_cast<Index>(
            rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
      }
      return std::nullopt;
    }
    case Mode::kAtTimes: {
      if (next_time_ < fault_times_.size() && now >= fault_times_[next_time_]) {
        ++next_time_;
        ++injected_;
        return static_cast<Index>(
            rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
      }
      return std::nullopt;
    }
    case Mode::kPoisson: {
      if (now >= next_arrival_) {
        next_arrival_ += rng_.exponential(lambda_);
        ++injected_;
        return static_cast<Index>(
            rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

IndexVec FaultInjector::check_multi(Index iteration, Seconds now) {
  IndexVec failed;
  const auto first = check(iteration, now);
  if (!first.has_value()) {
    return failed;
  }
  failed.push_back(*first);
  // Draw the remaining distinct victims of this fault event.
  while (static_cast<Index>(failed.size()) < ranks_per_fault_) {
    const auto candidate = static_cast<Index>(
        rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
    if (std::find(failed.begin(), failed.end(), candidate) == failed.end()) {
      failed.push_back(candidate);
    }
  }
  injected_ += static_cast<Index>(failed.size()) - 1;
  return failed;
}

std::optional<FaultEvent> FaultInjector::next_event(Index iteration,
                                                    Seconds now) {
  IndexVec failed = check_multi(iteration, now);
  if (failed.empty()) {
    return std::nullopt;
  }
  FaultEvent event;
  event.ranks = std::move(failed);
  event.cls = fault_class_;
  event.target = sdc_target_;
  event.mode = sdc_mode_;
  event.bitflips = sdc_bitflips_;
  // Per-event corruption seed so every SDC event damages differently but
  // the whole schedule stays deterministic in the injector seed.
  event.corruption_seed = rng_.next_u64();
  return event;
}

void FaultInjector::corrupt_block(const dist::Partition& part,
                                  Index failed_rank, std::span<Real> x) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::numeric_limits<Real>::quiet_NaN();
  }
}

void FaultInjector::corrupt_block_sdc(const dist::Partition& part,
                                      Index failed_rank, std::span<Real> x,
                                      std::uint64_t seed) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  Rng rng(seed);
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    // Bit-flip-like damage: wildly rescaled and sign-flipped values,
    // always large (≥ 10) but finite so nothing downstream NaN-checks
    // its way to a free detection.
    const double magnitude = std::pow(10.0, rng.uniform(1.0, 8.0));
    x[static_cast<std::size_t>(i)] =
        (rng.uniform() < 0.5 ? -1.0 : 1.0) * magnitude;
  }
}

void FaultInjector::corrupt_block_bitflips(const dist::Partition& part,
                                           Index failed_rank,
                                           std::span<Real> x, Index flips,
                                           std::uint64_t seed) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  RSLS_CHECK_MSG(flips >= 1, "bit-flip corruption needs at least one flip");
  static_assert(sizeof(Real) == sizeof(std::uint64_t));
  Rng rng(seed);
  const Index begin = part.begin(failed_rank);
  const auto block =
      static_cast<std::uint64_t>(part.block_rows(failed_rank));
  for (Index f = 0; f < flips; ++f) {
    const auto i =
        static_cast<std::size_t>(begin) + rng.uniform_index(block);
    const auto bit = rng.uniform_index(64);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x[i], sizeof(bits));
    bits ^= std::uint64_t{1} << bit;
    std::memcpy(&x[i], &bits, sizeof(bits));
  }
}

void FaultInjector::apply_corruption(const FaultEvent& event,
                                     const dist::Partition& part,
                                     std::span<Real> v) {
  std::uint64_t seed = event.corruption_seed;
  for (const Index rank : event.ranks) {
    if (event.cls == FaultClass::kProcessLoss) {
      corrupt_block(part, rank, v);
    } else if (event.mode == SdcMode::kGarbage) {
      corrupt_block_sdc(part, rank, v, seed);
    } else {
      corrupt_block_bitflips(part, rank, v, event.bitflips, seed);
    }
    ++seed;  // distinct damage per rank of a multi-rank event
  }
}

}  // namespace rsls::resilience
