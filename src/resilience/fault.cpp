#include "resilience/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace rsls::resilience {

FaultInjector::FaultInjector(Mode mode, Index num_ranks, std::uint64_t seed)
    : mode_(mode), num_ranks_(num_ranks), rng_(seed) {
  RSLS_CHECK(num_ranks >= 1);
}

FaultInjector FaultInjector::evenly_spaced(Index count, Index ff_iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  RSLS_CHECK(count >= 0);
  RSLS_CHECK(ff_iterations >= 1);
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (Index j = 1; j <= count; ++j) {
    const Index at = (j * ff_iterations) / (count + 1);
    if (at >= 1 && at < ff_iterations) {
      injector.fault_iterations_.push_back(at);
    }
  }
  return injector;
}

FaultInjector FaultInjector::evenly_spaced_multi(Index count,
                                                 Index ff_iterations,
                                                 Index ranks_per_fault,
                                                 Index num_ranks,
                                                 std::uint64_t seed) {
  RSLS_CHECK(ranks_per_fault >= 1 && ranks_per_fault <= num_ranks);
  FaultInjector injector =
      evenly_spaced(count, ff_iterations, num_ranks, seed);
  injector.ranks_per_fault_ = ranks_per_fault;
  return injector;
}

FaultInjector FaultInjector::at_iterations(IndexVec iterations,
                                           Index num_ranks,
                                           std::uint64_t seed) {
  FaultInjector injector(Mode::kEvenlySpaced, num_ranks, seed);
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    RSLS_CHECK(iterations[i] >= 1);
    if (i > 0) {
      RSLS_CHECK_MSG(iterations[i] > iterations[i - 1],
                     "fault iterations must be ascending");
    }
  }
  injector.fault_iterations_ = std::move(iterations);
  return injector;
}

FaultInjector FaultInjector::poisson(PerSecond lambda, Index num_ranks,
                                     std::uint64_t seed) {
  RSLS_CHECK(lambda > 0.0);
  FaultInjector injector(Mode::kPoisson, num_ranks, seed);
  injector.lambda_ = lambda;
  injector.next_arrival_ = injector.rng_.exponential(lambda);
  return injector;
}

FaultInjector FaultInjector::none() {
  return FaultInjector(Mode::kNone, 1, 0);
}

std::optional<Index> FaultInjector::check(Index iteration, Seconds now) {
  switch (mode_) {
    case Mode::kNone:
      return std::nullopt;
    case Mode::kEvenlySpaced: {
      if (next_fault_ < fault_iterations_.size() &&
          iteration >= fault_iterations_[next_fault_]) {
        ++next_fault_;
        ++injected_;
        return static_cast<Index>(
            rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
      }
      return std::nullopt;
    }
    case Mode::kPoisson: {
      if (now >= next_arrival_) {
        next_arrival_ += rng_.exponential(lambda_);
        ++injected_;
        return static_cast<Index>(
            rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

IndexVec FaultInjector::check_multi(Index iteration, Seconds now) {
  IndexVec failed;
  const auto first = check(iteration, now);
  if (!first.has_value()) {
    return failed;
  }
  failed.push_back(*first);
  // Draw the remaining distinct victims of this fault event.
  while (static_cast<Index>(failed.size()) < ranks_per_fault_) {
    const auto candidate = static_cast<Index>(
        rng_.uniform_index(static_cast<std::uint64_t>(num_ranks_)));
    if (std::find(failed.begin(), failed.end(), candidate) == failed.end()) {
      failed.push_back(candidate);
    }
  }
  injected_ += static_cast<Index>(failed.size()) - 1;
  return failed;
}

void FaultInjector::corrupt_block(const dist::Partition& part,
                                  Index failed_rank, std::span<Real> x) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::numeric_limits<Real>::quiet_NaN();
  }
}

void FaultInjector::corrupt_block_sdc(const dist::Partition& part,
                                      Index failed_rank, std::span<Real> x,
                                      std::uint64_t seed) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < part.parts());
  RSLS_CHECK(x.size() == static_cast<std::size_t>(part.size()));
  Rng rng(seed);
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    // Bit-flip-like damage: wildly rescaled and sign-flipped values.
    const double magnitude = std::pow(10.0, rng.uniform(-8.0, 8.0));
    x[static_cast<std::size_t>(i)] =
        (rng.uniform() < 0.5 ? -1.0 : 1.0) * magnitude;
  }
}

}  // namespace rsls::resilience
