#include "resilience/multilevel.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

using power::PhaseTag;

MultiLevelCheckpoint::MultiLevelCheckpoint(MultiLevelOptions options,
                                           RealVec initial_guess)
    : options_(options),
      initial_guess_(std::move(initial_guess)),
      rng_(options.seed) {
  RSLS_CHECK(options.l1_interval_iterations >= 1);
  RSLS_CHECK_MSG(
      options.l2_interval_iterations % options.l1_interval_iterations == 0,
      "L2 cadence must be a multiple of the L1 cadence");
  RSLS_CHECK(options.l1_loss_probability >= 0.0 &&
             options.l1_loss_probability <= 1.0);
}

void MultiLevelCheckpoint::on_iteration(RecoveryContext& ctx, Index iteration,
                                        std::span<const Real> x) {
  if (iteration % options_.l1_interval_iterations != 0) {
    return;
  }
  const Bytes bytes = ctx.a.vector_bytes();
  if (iteration % options_.l2_interval_iterations == 0) {
    ctx.cluster.write_disk(bytes, PhaseTag::kCheckpoint);
    l2_ = Saved{RealVec(x.begin(), x.end()), iteration};
    ++l2_checkpoints_;
    // The L2 write supersedes this slot's L1 copy.
    return;
  }
  ctx.cluster.write_memory(bytes, PhaseTag::kCheckpoint);
  l1_ = Saved{RealVec(x.begin(), x.end()), iteration};
  ++l1_checkpoints_;
}

solver::HookAction MultiLevelCheckpoint::recover(RecoveryContext& ctx,
                                                 Index iteration,
                                                 Index /*failed_rank*/,
                                                 std::span<Real> x) {
  count_recovery();
  const Bytes bytes = ctx.a.vector_bytes();
  // The fault may have destroyed the node-local L1 copy.
  const bool l1_lost = rng_.uniform() < options_.l1_loss_probability;
  const Saved* source = nullptr;
  if (!l1_lost && l1_.has_value() &&
      (!l2_.has_value() || l1_->iteration >= l2_->iteration)) {
    ctx.cluster.read_memory(bytes, PhaseTag::kRollback);
    source = &*l1_;
  } else if (l2_.has_value()) {
    ctx.cluster.read_disk(bytes, PhaseTag::kRollback);
    source = &*l2_;
    ++l2_rollbacks_;
  }
  if (source != nullptr) {
    RSLS_CHECK(source->x.size() == x.size());
    std::copy(source->x.begin(), source->x.end(), x.begin());
    iterations_rolled_back_ += iteration - source->iteration;
  } else {
    RSLS_CHECK(initial_guess_.size() == x.size());
    std::copy(initial_guess_.begin(), initial_guess_.end(), x.begin());
    iterations_rolled_back_ += iteration;
  }
  // An L1 copy that predates the fault is stale for the next fault only
  // if it was destroyed.
  if (l1_lost) {
    l1_.reset();
  }
  return solver::HookAction::kRestart;
}

bool MultiLevelCheckpoint::rollback(RecoveryContext& ctx, Index iteration,
                                    std::span<Real> x) {
  recover(ctx, iteration, 0, x);
  return true;
}

}  // namespace rsls::resilience
