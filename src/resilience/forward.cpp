#include "resilience/forward.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "la/factor.hpp"
#include "obs/recorder.hpp"
#include "la/flops.hpp"
#include "la/local_cg.hpp"
#include "la/qr.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::resilience {

using power::Activity;
using power::PhaseTag;

namespace {

/// x with the failed block zeroed — the "Σ_{j≠i}" masking of Eq. 17/18.
/// Any other NaN entries (blocks lost in the SAME multi-rank fault event,
/// the paper's LNF class, that have not been reconstructed yet) are also
/// zeroed: concurrent losses contribute a zero guess to this block's
/// interpolation, as in the multiple-failure treatment of Agullo et al.
RealVec mask_failed_block(const dist::Partition& part, Index failed_rank,
                          std::span<const Real> x) {
  RealVec masked(x.begin(), x.end());
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    masked[static_cast<std::size_t>(i)] = 0.0;
  }
  for (Real& v : masked) {
    if (std::isnan(v)) {
      v = 0.0;
    }
  }
  return masked;
}

/// Charge the failed rank for gathering the x entries its row block
/// references from neighbouring ranks.
void charge_gather(RecoveryContext& ctx, Index failed_rank) {
  const auto i = static_cast<std::size_t>(failed_rank);
  const Bytes bytes = ctx.a.halo_bytes()[i];
  const double msgs = static_cast<double>(ctx.a.halo_messages()[i]);
  ctx.cluster.neighbor_gather(failed_rank, msgs, bytes,
                              PhaseTag::kReconstruct);
}

}  // namespace

ForwardRecovery::ForwardRecovery(ForwardRecoveryOptions options,
                                 RealVec initial_guess)
    : options_(options), initial_guess_(std::move(initial_guess)) {
  if (options_.kind == FwKind::kZero ||
      options_.kind == FwKind::kInitialGuess) {
    RSLS_CHECK_MSG(options_.method == ConstructionMethod::kAssignment,
                   "F0/FI are assignment-based");
  } else {
    RSLS_CHECK_MSG(options_.method != ConstructionMethod::kAssignment,
                   "LI/LSI require a construction method");
    RSLS_CHECK(options_.cg_tolerance > 0.0);
  }
}

std::string ForwardRecovery::name() const {
  switch (options_.kind) {
    case FwKind::kZero:
      return "F0";
    case FwKind::kInitialGuess:
      return "FI";
    case FwKind::kLinear:
      if (options_.method == ConstructionMethod::kExactFactorization) {
        return "LI(LU)";
      }
      return options_.dvfs ? "LI-DVFS" : "LI";
    case FwKind::kLeastSquares:
      if (options_.method == ConstructionMethod::kExactFactorization) {
        return "LSI(QR)";
      }
      return options_.dvfs ? "LSI-DVFS" : "LSI";
  }
  return "FW";
}

solver::HookAction ForwardRecovery::recover(RecoveryContext& ctx,
                                            Index /*iteration*/,
                                            Index failed_rank,
                                            std::span<Real> x) {
  count_recovery();
  switch (options_.kind) {
    case FwKind::kZero:
    case FwKind::kInitialGuess:
      recover_assignment(ctx, failed_rank, x);
      break;
    case FwKind::kLinear: {
      const Seconds start = ctx.cluster.now(failed_rank);
      recover_linear(ctx, failed_rank, x);
      const Seconds end = ctx.cluster.now(failed_rank);
      construction_seconds_ += end - start;
      windows_.push_back(Window{start, end});
      ++constructions_;
      break;
    }
    case FwKind::kLeastSquares: {
      const Seconds start = ctx.cluster.now(failed_rank);
      recover_least_squares(ctx, failed_rank, x);
      const Seconds end = ctx.cluster.now(failed_rank);
      construction_seconds_ += end - start;
      windows_.push_back(Window{start, end});
      ++constructions_;
      break;
    }
  }
  // Every FW scheme loses the solver's internal vectors with the failed
  // process; CG restarts from the reconstructed iterate.
  return solver::HookAction::kRestart;
}

void ForwardRecovery::recover_assignment(RecoveryContext& ctx,
                                         Index failed_rank,
                                         std::span<Real> x) const {
  const auto& part = ctx.a.partition();
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  for (Index i = begin; i < end; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    x[idx] = options_.kind == FwKind::kZero ? 0.0 : initial_guess_.at(idx);
  }
  // T_const = 0 for assignment schemes (paper §3.2); no charge.
}

void ForwardRecovery::recover_linear(RecoveryContext& ctx, Index failed_rank,
                                     std::span<Real> x) {
  obs::ScopedSpan span(ctx.recorder, "reconstruct", PhaseTag::kReconstruct,
                       failed_rank, name());
  const auto& part = ctx.a.partition();
  auto& cluster = ctx.cluster;
  const Index begin = part.begin(failed_rank);
  const Index m = part.block_rows(failed_rank);
  const auto freq_min = cluster.config().power.freq.min_hz;
  const auto freq_max = cluster.config().power.freq.max_hz;

  if (options_.dvfs) {
    cluster.set_frequency_all_except(failed_rank, freq_min);
  }

  // y = b_i - Σ_{j≠i} A_{i,j} x_j  (Eq. 19's right-hand side): one local
  // row-block SpMV on the failed process after gathering remote x values.
  charge_gather(ctx, failed_rank);
  const sparse::Csr row_block = ctx.a.row_block(failed_rank);
  const RealVec masked = mask_failed_block(part, failed_rank, x);
  RealVec y(static_cast<std::size_t>(m));
  sparse::kernel_or_default(ctx.spmv_kernel)
      .prepare(row_block)
      ->spmv(masked, y);
  for (Index i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(i)] =
        ctx.b[static_cast<std::size_t>(begin + i)] -
        y[static_cast<std::size_t>(i)];
  }
  cluster.charge_compute(failed_rank, la::spmv_flops(row_block.nnz()),
                         PhaseTag::kReconstruct);

  const sparse::Csr diag_block = ctx.a.diagonal_block(failed_rank);
  RealVec z(static_cast<std::size_t>(m), 0.0);
  if (options_.method == ConstructionMethod::kExactFactorization) {
    // Prior-work baseline: sequential dense LU of the diagonal block.
    const sparse::Dense dense = sparse::to_dense(diag_block);
    const la::Lu lu(dense);
    z = y;
    lu.solve(z);
    cluster.charge_compute(failed_rank,
                           la::lu_factor_flops(m) + la::lu_solve_flops(m),
                           PhaseTag::kReconstruct);
  } else {
    // §4.1: local inexact CG on the SPD diagonal block.
    la::LocalCgOptions cg_options;
    cg_options.tolerance = options_.cg_tolerance;
    // CG on an m-dimensional SPD operator converges in at most m exact
    // steps; beyond a small multiple it only fights rounding, so the
    // construction cost is bounded by the block dimension.
    cg_options.max_iterations =
        std::min(options_.cg_max_iterations, 3 * m);
    const auto diag_plan =
        sparse::kernel_or_default(ctx.spmv_kernel).prepare(diag_block);
    const la::LocalCgResult result = la::local_cg(
        [&diag_plan](std::span<const Real> in, std::span<Real> out) {
          diag_plan->spmv(in, out);
        },
        y, z, cg_options);
    cluster.charge_compute(
        failed_rank,
        static_cast<double>(result.operator_applications) *
            la::cg_iteration_flops(diag_block.nnz(), m),
        PhaseTag::kReconstruct);
  }
  for (Index i = 0; i < m; ++i) {
    x[static_cast<std::size_t>(begin + i)] = z[static_cast<std::size_t>(i)];
  }

  // Other ranks idled while p_i constructed (at low frequency when the
  // DVFS policy is active).
  cluster.sync(PhaseTag::kIdleWait);
  if (options_.dvfs) {
    cluster.set_frequency_all(freq_max);
  }
}

void ForwardRecovery::recover_least_squares(RecoveryContext& ctx,
                                            Index failed_rank,
                                            std::span<Real> x) {
  obs::ScopedSpan span(ctx.recorder, "reconstruct", PhaseTag::kReconstruct,
                       failed_rank, name());
  const auto& part = ctx.a.partition();
  auto& cluster = ctx.cluster;
  const Index n = ctx.a.rows();
  const Index begin = part.begin(failed_rank);
  const Index m = part.block_rows(failed_rank);
  const Index parts = part.parts();
  const auto freq_min = cluster.config().power.freq.min_hz;
  const auto freq_max = cluster.config().power.freq.max_hz;

  // β = b - Σ_{j≠i} A_{:,p_j} x_j: one distributed SpMV — every rank
  // computes its own rows of β.
  const RealVec masked = mask_failed_block(part, failed_rank, x);
  RealVec beta(static_cast<std::size_t>(n));
  if (ctx.spmv_plan != nullptr) {
    ctx.spmv_plan->spmv(masked, beta);
  } else {
    sparse::spmv(ctx.a.global(), masked, beta);
  }
  for (Index i = 0; i < n; ++i) {
    beta[static_cast<std::size_t>(i)] =
        ctx.b[static_cast<std::size_t>(i)] - beta[static_cast<std::size_t>(i)];
  }
  for (Index r = 0; r < parts; ++r) {
    cluster.charge_compute(r,
                           la::spmv_flops(ctx.a.local_nnz(r)) +
                               static_cast<double>(part.block_rows(r)),
                           PhaseTag::kReconstruct);
  }

  const sparse::Csr row_block = ctx.a.row_block(failed_rank);

  if (options_.method == ConstructionMethod::kExactFactorization) {
    // Prior-work baseline: parallel QR of the n × m column slice A_{:,p_i}
    // = (A_{p_i,:})ᵀ. All ranks participate: flops are spread evenly and a
    // TSQR-style reduction of m × m R factors runs over log₂(p) stages.
    const sparse::Csr col_slice = sparse::transpose(row_block);
    const sparse::Dense dense = sparse::to_dense(col_slice);
    const la::Qr qr(dense);
    const RealVec z = qr.solve_least_squares(beta);
    const double flops_total =
        la::qr_factor_flops(n, m) + la::qr_solve_flops(n, m);
    for (Index r = 0; r < parts; ++r) {
      cluster.charge_compute(r, flops_total / static_cast<double>(parts),
                             PhaseTag::kReconstruct);
    }
    const Bytes r_factor_bytes =
        static_cast<double>(m) * static_cast<double>(m) * sizeof(Real);
    // log₂(p)-stage reduction of R factors, priced as an allreduce by the
    // interconnect. Charged without a barrier: rank clocks may be uneven
    // here and the TSQR tree does not rendezvous them.
    const Seconds comm = cluster.allreduce_seconds(r_factor_bytes);
    for (Index r = 0; r < parts; ++r) {
      cluster.charge_duration(r, comm, Activity::kWaiting,
                              PhaseTag::kReconstruct);
    }
    for (Index i = 0; i < m; ++i) {
      x[static_cast<std::size_t>(begin + i)] = z[static_cast<std::size_t>(i)];
    }
    cluster.sync(PhaseTag::kIdleWait);
    return;
  }

  // §4.1: local CG on the SPD transform (Eq. 21):
  //   (A_{p_i,:} A_{p_i,:}ᵀ) z = A_{p_i,:} β.
  if (options_.dvfs) {
    cluster.set_frequency_all_except(failed_rank, freq_min);
  }
  // Gather β entries referenced by the local rows (block + halo).
  const auto i = static_cast<std::size_t>(failed_rank);
  const Bytes gather_bytes = ctx.a.halo_bytes()[i];
  const double msgs = static_cast<double>(ctx.a.halo_messages()[i]);
  cluster.neighbor_gather(failed_rank, msgs, gather_bytes,
                          PhaseTag::kReconstruct);

  // The local rows reference only their block + halo columns; compress to
  // that support so the normal-equations operator works in vectors of the
  // local width (the failed process only holds those β entries anyway).
  const sparse::ColumnCompressed local = sparse::compress_columns(row_block);
  const Index n_local = local.matrix.cols;
  RealVec beta_local(static_cast<std::size_t>(n_local));
  for (Index j = 0; j < n_local; ++j) {
    beta_local[static_cast<std::size_t>(j)] =
        beta[static_cast<std::size_t>(local.support[static_cast<std::size_t>(j)])];
  }
  const auto local_plan =
      sparse::kernel_or_default(ctx.spmv_kernel).prepare(local.matrix);
  RealVec rhs(static_cast<std::size_t>(m));
  local_plan->spmv(beta_local, rhs);
  cluster.charge_compute(failed_rank, la::spmv_flops(local.matrix.nnz()),
                         PhaseTag::kReconstruct);

  // Jacobi preconditioner for the normal equations: diag(A_r A_rᵀ)_jj is
  // the squared norm of local row j — formed in one pass over the block.
  RealVec inv_diag(static_cast<std::size_t>(m));
  for (Index j = 0; j < m; ++j) {
    Real sum = 0.0;
    for (const Real v : row_block.row_vals(j)) {
      sum += v * v;
    }
    RSLS_CHECK_MSG(sum > 0.0, "empty local row in LSI reconstruction");
    inv_diag[static_cast<std::size_t>(j)] = 1.0 / sum;
  }
  cluster.charge_compute(failed_rank, la::spmv_flops(row_block.nnz()),
                         PhaseTag::kReconstruct);

  RealVec z(static_cast<std::size_t>(m), 0.0);
  RealVec t(static_cast<std::size_t>(n_local));
  la::LocalCgOptions cg_options;
  cg_options.tolerance = options_.cg_tolerance;
  // Same dimension-bounded cap as LI: the normal-equations operator is
  // m-dimensional, so stop once rounding dominates.
  cg_options.max_iterations = std::min(options_.cg_max_iterations, 3 * m);
  const la::LocalCgResult result = la::local_pcg(
      [&local_plan, &t](std::span<const Real> in, std::span<Real> out) {
        local_plan->spmv_transpose(in, t);
        local_plan->spmv(t, out);
      },
      inv_diag, rhs, z, cg_options);
  cluster.charge_compute(
      failed_rank,
      static_cast<double>(result.operator_applications) *
          (la::lsi_cg_iteration_flops(local.matrix.nnz(), m, n_local) +
           2.0 * static_cast<double>(m)),
      PhaseTag::kReconstruct);

  for (Index k = 0; k < m; ++k) {
    x[static_cast<std::size_t>(begin + k)] = z[static_cast<std::size_t>(k)];
  }
  cluster.sync(PhaseTag::kIdleWait);
  if (options_.dvfs) {
    cluster.set_frequency_all(freq_max);
  }
}

Seconds ForwardRecovery::mean_construction_seconds() const {
  return constructions_ > 0
             ? construction_seconds_ / static_cast<double>(constructions_)
             : 0.0;
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::f0() {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kZero;
  options.method = ConstructionMethod::kAssignment;
  return std::make_unique<ForwardRecovery>(options);
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::fi(RealVec initial_guess) {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kInitialGuess;
  options.method = ConstructionMethod::kAssignment;
  return std::make_unique<ForwardRecovery>(options, std::move(initial_guess));
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::li_lu() {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kLinear;
  options.method = ConstructionMethod::kExactFactorization;
  return std::make_unique<ForwardRecovery>(options);
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::li_cg(Real tolerance,
                                                        bool dvfs) {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kLinear;
  options.method = ConstructionMethod::kLocalCg;
  options.cg_tolerance = tolerance;
  options.dvfs = dvfs;
  return std::make_unique<ForwardRecovery>(options);
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::lsi_qr() {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kLeastSquares;
  options.method = ConstructionMethod::kExactFactorization;
  return std::make_unique<ForwardRecovery>(options);
}

std::unique_ptr<ForwardRecovery> ForwardRecovery::lsi_cg(Real tolerance,
                                                         bool dvfs) {
  ForwardRecoveryOptions options;
  options.kind = FwKind::kLeastSquares;
  options.method = ConstructionMethod::kLocalCg;
  options.cg_tolerance = tolerance;
  options.dvfs = dvfs;
  return std::make_unique<ForwardRecovery>(options);
}

}  // namespace rsls::resilience
