#pragma once
// Failure domains: groups of ranks that share a single point of failure.
//
// The paper's §5.2 protocol draws failed ranks i.i.d.-uniform, but real
// machines lose whole groups at once — every rank under a leaf switch
// when the switch dies, a torus neighborhood when its power rail trips,
// a rack's worth of nodes when a PSU fails. A FailureDomains partition
// of the rank space turns the injector's per-event rank draw into a
// per-event *domain* draw: one arrival takes out every rank in the
// drawn domain simultaneously (the correlated multi-element loss that
// motivates erasure-coded recovery at scale).
//
// Domains come from two sources:
//   from_topology — derived from the live interconnect shape via
//                   Topology::failure_domain (fat-tree leaf switches,
//                   torus x-lines; the flat network degenerates to
//                   singletons, i.e. the seed's independent faults);
//   synthetic     — contiguous fixed-size groups on any topology,
//                   modeling PSU/rack sharing the network cannot see.

#include <vector>

#include "core/types.hpp"
#include "simrt/net/topology.hpp"

namespace rsls::resilience {

struct FailureDomains {
  /// Disjoint rank groups covering [0, num_ranks); each inner vector is
  /// sorted ascending. An empty outer vector means "no domain model".
  std::vector<IndexVec> groups;

  /// Number of domains.
  Index count() const { return static_cast<Index>(groups.size()); }

  /// True when every domain holds exactly one rank (equivalent to the
  /// seed's independent single-rank faults).
  bool trivial() const;

  /// Largest domain size (0 when empty).
  Index max_size() const;

  /// Domain index owning `rank`; throws rsls::Error when no group
  /// contains it.
  Index domain_of(Index rank) const;

  /// One singleton domain per rank — the degenerate model.
  static FailureDomains singletons(Index num_ranks);

  /// Contiguous groups of `domain_size` ranks (the last group may be
  /// smaller): rack/PSU-style sharing invisible to the network. Throws
  /// rsls::Error unless 1 ≤ domain_size ≤ num_ranks.
  static FailureDomains synthetic(Index num_ranks, Index domain_size);

  /// Group ranks by Topology::failure_domain: fat-tree leaf-switch
  /// groups, torus x-line neighborhoods, singletons on the flat network.
  static FailureDomains from_topology(const simrt::net::Topology& topology);
};

}  // namespace rsls::resilience
