#pragma once
// Fault injection.
//
// Reproduces the paper's protocol (§5.2): a fixed number of faults spread
// evenly over the iterations the fault-free execution needs, with no
// faults after the fault-free run would have converged. A Poisson mode
// fires faults from exponential inter-arrival times against the virtual
// clock (rate λ = 1/MTBF), for the MTBF-driven experiments (Fig. 3).
//
// A fault destroys the failed process's block of the iterate x. The block
// is overwritten with NaNs so that any scheme that wrongly reads lost data
// poisons its result and fails tests, instead of silently "recovering"
// from data it could not have had.

#include <optional>
#include <span>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/partition.hpp"

namespace rsls::resilience {

class FaultInjector {
 public:
  /// `count` faults at iterations round(j·ff/(count+1)), j = 1..count —
  /// all strictly before the fault-free iteration count. Failed ranks
  /// are drawn uniformly with the given seed.
  static FaultInjector evenly_spaced(Index count, Index ff_iterations,
                                     Index num_ranks, std::uint64_t seed);

  /// Link-and-node-failure flavour (paper §2.1's LNF class): each fault
  /// event takes out `ranks_per_fault` distinct processes at once.
  static FaultInjector evenly_spaced_multi(Index count, Index ff_iterations,
                                           Index ranks_per_fault,
                                           Index num_ranks,
                                           std::uint64_t seed);

  /// Faults at exactly the given iterations (e.g. Fig. 6a's single fault
  /// at iteration 200). Must be ascending.
  static FaultInjector at_iterations(IndexVec iterations, Index num_ranks,
                                     std::uint64_t seed);

  /// Exponential inter-arrival times with rate λ (per second of virtual
  /// time), checked at iteration boundaries.
  static FaultInjector poisson(PerSecond lambda, Index num_ranks,
                               std::uint64_t seed);

  /// No faults (fault-free baseline).
  static FaultInjector none();

  /// If a fault fires at this iteration boundary, returns the failed
  /// rank. `now` is the virtual cluster time (used by Poisson mode).
  std::optional<Index> check(Index iteration, Seconds now);

  /// Multi-rank variant: all processes lost by the fault event (empty =
  /// no fault). For single-failure injectors this is check() in a vector.
  IndexVec check_multi(Index iteration, Seconds now);

  Index faults_injected() const { return injected_; }

  /// Overwrite the failed rank's block of x with NaNs (hard fault /
  /// process loss: the data is gone, and any scheme that reads it
  /// poisons its result).
  static void corrupt_block(const dist::Partition& part, Index failed_rank,
                            std::span<Real> x);

  /// Silent-data-corruption flavour (paper §2.1's SDC class): the block
  /// survives but its values are garbled into large finite garbage —
  /// detected (as the paper assumes, [10]) but plausible-looking. The
  /// recovery path is identical; this variant exists so tests can verify
  /// schemes never *trust* the corrupted values.
  static void corrupt_block_sdc(const dist::Partition& part,
                                Index failed_rank, std::span<Real> x,
                                std::uint64_t seed);

 private:
  enum class Mode { kNone, kEvenlySpaced, kPoisson };

  FaultInjector(Mode mode, Index num_ranks, std::uint64_t seed);

  Mode mode_;
  Index num_ranks_;
  Rng rng_;
  Index injected_ = 0;
  // Evenly-spaced state.
  IndexVec fault_iterations_;
  std::size_t next_fault_ = 0;
  // Poisson state.
  PerSecond lambda_ = 0.0;
  Seconds next_arrival_ = 0.0;
  // Ranks lost per fault event (LNF mode).
  Index ranks_per_fault_ = 1;
};

}  // namespace rsls::resilience
