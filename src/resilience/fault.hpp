#pragma once
// Fault injection.
//
// Reproduces the paper's protocol (§5.2): a fixed number of faults spread
// evenly over the iterations the fault-free execution needs, with no
// faults after the fault-free run would have converged. A Poisson mode
// fires faults from exponential inter-arrival times against the virtual
// clock (rate λ = 1/MTBF), for the MTBF-driven experiments (Fig. 3). An
// at-times mode fires at explicit virtual-time stamps — recovery actions
// advance the clock, so a time scheduled inside a recovery window lands a
// *nested* fault (a fault that strikes while another is being repaired).
//
// Beyond the memoryless model: a Weibull mode (shape k < 1 infant
// mortality, k > 1 wear-out) and a burstiness knob that compresses the
// gap after a fired event with some probability, clustering failures
// into storms. A FailureDomains attachment turns per-rank draws into
// per-domain draws — one event kills every rank under the drawn leaf
// switch / torus neighborhood / synthetic PSU group at once. Every
// emitted event is recorded (schedule()) and from_schedule() replays a
// recorded sequence exactly. All modes are seeded-deterministic.
//
// Two fault classes (paper §2.1):
//   kProcessLoss       — the failed process's block of x is overwritten
//                        with NaNs and the harness learns the rank (MPI
//                        announces a dead process); any scheme that reads
//                        the lost data poisons its result and fails tests.
//   kSilentCorruption  — the block survives but its values are silently
//                        garbled (bit flips or rescaled garbage) and the
//                        harness is NOT told which rank — an online
//                        detector (resilience/detector.hpp) must notice
//                        and localize the damage before any recovery can
//                        run. The paper assumes SDC detection ([10]);
//                        this class makes detection load-bearing.

#include <optional>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/partition.hpp"
#include "resilience/failure_domain.hpp"

namespace rsls::resilience {

enum class FaultClass { kProcessLoss, kSilentCorruption };

/// Which solver vector a silent corruption garbles. The iterate x is the
/// persistent state (corruption never self-heals); r and p are the CG
/// recurrence state (corruption poisons the direction search until the
/// solver rebuilds them from x).
enum class SdcTarget { kIterate, kResidual, kDirection };

/// How the corrupted block is damaged: kGarbage rescales values into
/// large-but-finite plausible-looking garbage; kBitFlip XORs random bits
/// in a few entries (possibly producing non-finite values).
enum class SdcMode { kGarbage, kBitFlip };

/// One fault event: the processes it takes out, its class, and (for SDC)
/// how and where the corruption lands plus a deterministic seed for it.
struct FaultEvent {
  IndexVec ranks;
  FaultClass cls = FaultClass::kProcessLoss;
  SdcTarget target = SdcTarget::kIterate;
  SdcMode mode = SdcMode::kGarbage;
  std::uint64_t corruption_seed = 0;
  Index bitflips = 3;
  /// True when the event took out a whole failure domain (correlated
  /// multi-rank loss) rather than independently drawn ranks.
  bool domain_event = false;
};

/// One realized fault, as it fired: enough to replay the exact sequence
/// (virtual time, iteration boundary, victims, class, per-event damage
/// seed) without re-running the arrival process. The injector records
/// every event it emits; the harness surfaces the schedule in the JSONL
/// RunReport and FaultInjector::from_schedule replays it bit-for-bit.
struct FaultRecord {
  Seconds time = 0.0;
  Index iteration = 0;
  IndexVec ranks;
  FaultClass cls = FaultClass::kProcessLoss;
  SdcTarget target = SdcTarget::kIterate;
  SdcMode mode = SdcMode::kGarbage;
  Index bitflips = 3;
  std::uint64_t corruption_seed = 0;
  bool domain_event = false;
};

class FaultInjector {
 public:
  /// `count` faults at iterations round(j·ff/(count+1)), j = 1..count —
  /// all strictly before the fault-free iteration count. Failed ranks
  /// are drawn uniformly with the given seed.
  static FaultInjector evenly_spaced(Index count, Index ff_iterations,
                                     Index num_ranks, std::uint64_t seed);

  /// Link-and-node-failure flavour (paper §2.1's LNF class): each fault
  /// event takes out `ranks_per_fault` distinct processes at once.
  /// Requires 1 ≤ ranks_per_fault ≤ num_ranks.
  static FaultInjector evenly_spaced_multi(Index count, Index ff_iterations,
                                           Index ranks_per_fault,
                                           Index num_ranks,
                                           std::uint64_t seed);

  /// Faults at exactly the given iterations (e.g. Fig. 6a's single fault
  /// at iteration 200). Must be strictly ascending and ≥ 1.
  static FaultInjector at_iterations(IndexVec iterations, Index num_ranks,
                                     std::uint64_t seed);

  /// Faults at exactly the given virtual times (strictly ascending, > 0),
  /// checked against the cluster clock. Because recovery actions advance
  /// virtual time, a stamp placed just after another fault fires lands
  /// *during* that fault's recovery — the nested-fault scenario.
  static FaultInjector at_times(std::vector<Seconds> times, Index num_ranks,
                                std::uint64_t seed);

  /// Exponential inter-arrival times with rate λ (per second of virtual
  /// time), checked at iteration boundaries.
  static FaultInjector poisson(PerSecond lambda, Index num_ranks,
                               std::uint64_t seed);

  /// Weibull inter-arrival times with the given MTBF (mean gap) and
  /// shape k: k < 1 front-loads failures (infant mortality), k > 1
  /// defers them (wear-out), k = 1 matches poisson(1/mtbf). The scale
  /// is mtbf / Γ(1 + 1/k) so the mean gap stays the MTBF for every
  /// shape. Requires mtbf > 0 and shape > 0 (rsls::Error otherwise).
  static FaultInjector weibull(Seconds mtbf, double shape, Index num_ranks,
                               std::uint64_t seed);

  /// Replay a recorded schedule exactly: record j fires at the first
  /// boundary with iteration ≥ record.iteration and now ≥ record.time,
  /// reproducing the recorded ranks, class, and corruption seed without
  /// consuming any randomness. Records must be non-descending in time
  /// (rsls::Error otherwise).
  static FaultInjector from_schedule(std::vector<FaultRecord> records,
                                     Index num_ranks);

  /// No faults (fault-free baseline).
  static FaultInjector none();

  /// Make every arrival a *domain* event: instead of drawing ranks, the
  /// injector draws one failure domain uniformly and takes out all of
  /// its ranks at once. Returns *this for chaining after a factory
  /// call. Requires a non-empty domain set (rsls::Error otherwise).
  FaultInjector& with_domains(FailureDomains domains);

  /// Burstiness knob for the stochastic modes (poisson/weibull): after
  /// each fired event, with probability `probability` the next
  /// inter-arrival gap is multiplied by `compression` (≪ 1), clustering
  /// failures into storms — the temporal correlation the exponential
  /// model cannot express. No-op for deterministic schedules. Requires
  /// probability ∈ [0, 1] and compression > 0 (rsls::Error otherwise).
  FaultInjector& with_burstiness(double probability,
                                 double compression = 0.05);

  /// Reclassify every event this injector fires as silent data
  /// corruption with the given damage mode and target vector. Returns
  /// *this for chaining after a factory call.
  FaultInjector& as_sdc(SdcMode mode = SdcMode::kGarbage,
                        SdcTarget target = SdcTarget::kIterate,
                        Index bitflips = 3);

  /// If a fault fires at this iteration boundary, returns the failed
  /// rank. `now` is the virtual cluster time (used by Poisson mode).
  std::optional<Index> check(Index iteration, Seconds now);

  /// Multi-rank variant: all processes lost by the fault event (empty =
  /// no fault). For single-failure injectors this is check() in a vector.
  IndexVec check_multi(Index iteration, Seconds now);

  /// Full fault event including class/target metadata (nullopt = no
  /// fault). The resilient solve loop consumes this; check()/check_multi()
  /// remain for callers that only care about process-loss semantics.
  std::optional<FaultEvent> next_event(Index iteration, Seconds now);

  Index faults_injected() const { return injected_; }

  /// Domain-level events fired so far (each one kills a whole domain).
  Index domain_events() const { return domain_events_; }

  /// Every event emitted by next_event so far, in firing order — the
  /// realized fault schedule. Feed it to from_schedule (or read it back
  /// from the RunReport) to replay the exact sequence.
  const std::vector<FaultRecord>& schedule() const { return schedule_; }

  /// Overwrite the failed rank's block of x with NaNs (hard fault /
  /// process loss: the data is gone, and any scheme that reads it
  /// poisons its result).
  static void corrupt_block(const dist::Partition& part, Index failed_rank,
                            std::span<Real> x);

  /// Silent-data-corruption, garbage flavour: the failed rank's block
  /// survives but every value is garbled into large-but-finite garbage
  /// (|v| ∈ [10, 1e8], random sign) — plausible-looking, never NaN, so
  /// only an online detector can notice it. Deterministic in the seed.
  static void corrupt_block_sdc(const dist::Partition& part,
                                Index failed_rank, std::span<Real> x,
                                std::uint64_t seed);

  /// Silent-data-corruption, bit-flip flavour: XOR `flips` random single
  /// bits in random entries of the failed rank's block (may produce
  /// non-finite values when an exponent bit flips). Deterministic in the
  /// seed.
  static void corrupt_block_bitflips(const dist::Partition& part,
                                     Index failed_rank, std::span<Real> x,
                                     Index flips, std::uint64_t seed);

  /// Apply `event`'s corruption to `v` (the vector `event.target` refers
  /// to) for every failed rank, honouring the event's class and mode.
  static void apply_corruption(const FaultEvent& event,
                               const dist::Partition& part,
                               std::span<Real> v);

 private:
  enum class Mode {
    kNone,
    kEvenlySpaced,
    kAtTimes,
    kPoisson,
    kWeibull,
    kReplay
  };

  FaultInjector(Mode mode, Index num_ranks, std::uint64_t seed);

  /// Arrival decision only (consumes the next stochastic gap when one
  /// fires, but never the rank draw). Replay mode is handled separately.
  bool fire_due(Index iteration, Seconds now);
  /// Next stochastic inter-arrival gap (exponential or Weibull), with
  /// the burstiness compression applied when configured.
  Seconds next_gap();
  /// Replay-mode event emission shared by check/check_multi/next_event.
  std::optional<FaultEvent> replay_event(Index iteration, Seconds now);

  Mode mode_;
  Index num_ranks_;
  Rng rng_;
  Index injected_ = 0;
  // Evenly-spaced state.
  IndexVec fault_iterations_;
  std::size_t next_fault_ = 0;
  // At-times state.
  std::vector<Seconds> fault_times_;
  std::size_t next_time_ = 0;
  // Poisson state.
  PerSecond lambda_ = 0.0;
  Seconds next_arrival_ = 0.0;
  // Weibull state.
  double weibull_shape_ = 0.0;
  Seconds weibull_scale_ = 0.0;
  // Burstiness knob (0 = off; only then is extra RNG consumed).
  double burst_probability_ = 0.0;
  double burst_compression_ = 0.05;
  // Failure domains (empty groups = independent rank draws).
  FailureDomains domains_;
  Index domain_events_ = 0;
  // Replay state.
  std::vector<FaultRecord> replay_records_;
  std::size_t replay_next_ = 0;
  // Realized schedule (every event next_event emitted).
  std::vector<FaultRecord> schedule_;
  // Ranks lost per fault event (LNF mode).
  Index ranks_per_fault_ = 1;
  // Fault class configuration (as_sdc).
  FaultClass fault_class_ = FaultClass::kProcessLoss;
  SdcTarget sdc_target_ = SdcTarget::kIterate;
  SdcMode sdc_mode_ = SdcMode::kGarbage;
  Index sdc_bitflips_ = 3;
};

}  // namespace rsls::resilience
