#include "resilience/failure_domain.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "core/error.hpp"

namespace rsls::resilience {

bool FailureDomains::trivial() const {
  return std::all_of(groups.begin(), groups.end(),
                     [](const IndexVec& g) { return g.size() == 1; });
}

Index FailureDomains::max_size() const {
  std::size_t widest = 0;
  for (const IndexVec& g : groups) {
    widest = std::max(widest, g.size());
  }
  return static_cast<Index>(widest);
}

Index FailureDomains::domain_of(Index rank) const {
  for (std::size_t d = 0; d < groups.size(); ++d) {
    if (std::binary_search(groups[d].begin(), groups[d].end(), rank)) {
      return static_cast<Index>(d);
    }
  }
  throw Error("rank " + std::to_string(rank) +
              " is not covered by any failure domain");
}

FailureDomains FailureDomains::singletons(Index num_ranks) {
  if (num_ranks < 1) {
    throw Error("failure domains need at least one rank (num_ranks = " +
                std::to_string(num_ranks) + ")");
  }
  FailureDomains domains;
  domains.groups.reserve(static_cast<std::size_t>(num_ranks));
  for (Index r = 0; r < num_ranks; ++r) {
    domains.groups.push_back({r});
  }
  return domains;
}

FailureDomains FailureDomains::synthetic(Index num_ranks, Index domain_size) {
  if (num_ranks < 1) {
    throw Error("failure domains need at least one rank (num_ranks = " +
                std::to_string(num_ranks) + ")");
  }
  if (domain_size < 1 || domain_size > num_ranks) {
    throw Error("synthetic failure-domain size must be in [1, num_ranks]: "
                "domain_size = " +
                std::to_string(domain_size) +
                ", num_ranks = " + std::to_string(num_ranks));
  }
  FailureDomains domains;
  for (Index begin = 0; begin < num_ranks; begin += domain_size) {
    IndexVec group;
    const Index end = std::min(begin + domain_size, num_ranks);
    group.reserve(static_cast<std::size_t>(end - begin));
    for (Index r = begin; r < end; ++r) {
      group.push_back(r);
    }
    domains.groups.push_back(std::move(group));
  }
  return domains;
}

FailureDomains FailureDomains::from_topology(
    const simrt::net::Topology& topology) {
  const Index p = topology.num_ranks();
  if (p < 1) {
    throw Error("failure domains need at least one rank");
  }
  // Group by domain id, keeping groups ordered by first member so the
  // injector's domain draw is stable across topologies with the same
  // grouping.
  std::map<Index, IndexVec> by_id;
  for (Index r = 0; r < p; ++r) {
    by_id[topology.failure_domain(r)].push_back(r);
  }
  FailureDomains domains;
  domains.groups.reserve(by_id.size());
  for (auto& [id, group] : by_id) {
    domains.groups.push_back(std::move(group));
  }
  return domains;
}

}  // namespace rsls::resilience
