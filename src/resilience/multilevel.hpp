#pragma once
// Multi-level checkpoint/restart, in the spirit of SCR (the paper's
// related work [33]: "Scalable CR uses multi-level CR"). An extension the
// paper's conclusion calls for: reducing the time and energy cost of
// checkpointing itself.
//
// Two levels:
//   L1 — frequent, cheap checkpoints to node-local memory,
//   L2 — infrequent, expensive checkpoints to the shared disk.
// A fault rolls back to the most recent valid checkpoint of either level.
// With probability `l1_loss_probability`, the fault also destroys the
// node-local L1 copy (e.g. the checkpoint lived on the failed node), in
// which case recovery falls back to L2 — the scenario that makes pure
// CR-M "not practical to common fault situations with lost data in
// memory" (paper §6) while pure CR-D overpays on every checkpoint.

#include <optional>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "resilience/scheme.hpp"

namespace rsls::resilience {

struct MultiLevelOptions {
  /// L1 (memory) cadence in iterations.
  Index l1_interval_iterations = 25;
  /// L2 (disk) cadence; must be a multiple of the L1 cadence.
  Index l2_interval_iterations = 200;
  /// Probability a fault destroys the node-local L1 copy along with the
  /// process state (0 = CR-M semantics, 1 = L1 never usable for the
  /// faulting failure class).
  double l1_loss_probability = 0.3;
  std::uint64_t seed = 99;
};

class MultiLevelCheckpoint final : public RecoveryScheme {
 public:
  MultiLevelCheckpoint(MultiLevelOptions options, RealVec initial_guess);

  std::string name() const override { return "CR-2L"; }

  void on_iteration(RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// Escalation: the global rollback recover() already performs.
  bool rollback(RecoveryContext& ctx, Index iteration,
                std::span<Real> x) override;

  Index l1_checkpoints() const { return l1_checkpoints_; }
  Index l2_checkpoints() const { return l2_checkpoints_; }
  /// Recoveries that had to fall back to the disk level.
  Index l2_rollbacks() const { return l2_rollbacks_; }
  Index iterations_rolled_back() const { return iterations_rolled_back_; }

  const MultiLevelOptions& options() const { return options_; }

 private:
  struct Saved {
    RealVec x;
    Index iteration = 0;
  };

  MultiLevelOptions options_;
  RealVec initial_guess_;
  Rng rng_;
  std::optional<Saved> l1_;
  std::optional<Saved> l2_;
  Index l1_checkpoints_ = 0;
  Index l2_checkpoints_ = 0;
  Index l2_rollbacks_ = 0;
  Index iterations_rolled_back_ = 0;
};

}  // namespace rsls::resilience
