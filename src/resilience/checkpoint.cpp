#include "resilience/checkpoint.hpp"

#include <cstring>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "obs/recorder.hpp"
#include "resilience/detector.hpp"

namespace rsls::resilience {

using power::PhaseTag;

CheckpointRestart::CheckpointRestart(CheckpointOptions options,
                                     RealVec initial_guess)
    : options_(options), initial_guess_(std::move(initial_guess)) {
  RSLS_CHECK(options.interval_iterations >= 1);
  RSLS_CHECK_MSG(options.history >= 1,
                 "checkpoint history must retain at least one snapshot");
}

std::string CheckpointRestart::name() const {
  return options_.target == CheckpointTarget::kDisk ? "CR-D" : "CR-M";
}

void CheckpointRestart::on_iteration(RecoveryContext& ctx, Index iteration,
                                     std::span<const Real> x) {
  if (iteration % options_.interval_iterations != 0) {
    return;
  }
  obs::ScopedSpan span(ctx.recorder, "checkpoint", PhaseTag::kCheckpoint,
                       obs::kClusterTrack, name());
  obs::count(ctx.recorder, "checkpoints_taken");
  const Seconds before = ctx.cluster.elapsed();
  // A pipelined solver's checkpoint covers the whole recurrence bundle
  // (x, r, p, extras); classic CG keeps the seed's x-only snapshot.
  const bool pipeline = !ctx.extra.empty();
  const Bytes bytes =
      ctx.a.vector_bytes() *
      (pipeline ? static_cast<Bytes>(3 + ctx.extra.size()) : Bytes{1});
  if (options_.target == CheckpointTarget::kDisk) {
    ctx.cluster.write_disk(bytes, PhaseTag::kCheckpoint);
  } else {
    ctx.cluster.write_memory(bytes, PhaseTag::kCheckpoint);
  }
  Snapshot snap;
  snap.x.assign(x.begin(), x.end());
  if (pipeline) {
    snap.r.assign(ctx.r.begin(), ctx.r.end());
    snap.p.assign(ctx.p.begin(), ctx.p.end());
    snap.extra.resize(ctx.extra.size());
    for (std::size_t v = 0; v < ctx.extra.size(); ++v) {
      snap.extra[v].assign(ctx.extra[v].begin(), ctx.extra[v].end());
    }
  }
  snap.iteration = iteration;
  snap.crc = fnv1a64(snap.x);
  history_.push_back(std::move(snap));
  if (static_cast<Index>(history_.size()) > options_.history) {
    history_.erase(history_.begin());
  }
  ++checkpoints_taken_;
  checkpoint_seconds_ += ctx.cluster.elapsed() - before;
  if (options_.bitrot_every_n > 0 &&
      checkpoints_taken_ % options_.bitrot_every_n == 0) {
    // Bit rot strikes the stored copy after the integrity word was
    // computed, so verification must catch it at restore time.
    corrupt_snapshot(0);
  }
}

void CheckpointRestart::corrupt_snapshot(Index index_from_newest) {
  RSLS_CHECK(index_from_newest >= 0 &&
             index_from_newest < static_cast<Index>(history_.size()));
  Snapshot& snap =
      history_[history_.size() - 1 - static_cast<std::size_t>(index_from_newest)];
  Rng rng(options_.bitrot_seed +
          static_cast<std::uint64_t>(checkpoints_taken_));
  const auto i = static_cast<std::size_t>(
      rng.uniform_index(static_cast<std::uint64_t>(snap.x.size())));
  std::uint64_t bits = 0;
  static_assert(sizeof(Real) == sizeof(bits));
  std::memcpy(&bits, &snap.x[i], sizeof(bits));
  bits ^= std::uint64_t{1} << rng.uniform_index(64);
  std::memcpy(&snap.x[i], &bits, sizeof(bits));
}

void CheckpointRestart::restore_verified(RecoveryContext& ctx,
                                         Index iteration, std::span<Real> x) {
  obs::ScopedSpan span(ctx.recorder, "rollback", PhaseTag::kRollback,
                       obs::kClusterTrack, name());
  const Bytes bytes =
      ctx.a.vector_bytes() *
      (ctx.extra.empty() ? Bytes{1}
                         : static_cast<Bytes>(3 + ctx.extra.size()));
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    // Each attempt re-reads a full snapshot from the checkpoint store.
    if (options_.target == CheckpointTarget::kDisk) {
      ctx.cluster.read_disk(bytes, PhaseTag::kRollback);
    } else {
      ctx.cluster.read_memory(bytes, PhaseTag::kRollback);
    }
    if (fnv1a64(it->x) != it->crc) {
      ++integrity_failures_;
      obs::count(ctx.recorder, "checkpoint_integrity_failures");
      continue;  // fall through to the next-older snapshot
    }
    RSLS_CHECK(it->x.size() == x.size());
    std::copy(it->x.begin(), it->x.end(), x.begin());
    // Reinstate the checkpointed recurrence bundle too, when present;
    // the requested restart then renews it from x, so this only needs
    // to leave no corrupted block behind.
    if (it->r.size() == ctx.r.size() && !ctx.r.empty()) {
      std::copy(it->r.begin(), it->r.end(), ctx.r.begin());
    }
    if (it->p.size() == ctx.p.size() && !ctx.p.empty()) {
      std::copy(it->p.begin(), it->p.end(), ctx.p.begin());
    }
    for (std::size_t v = 0;
         v < ctx.extra.size() && v < it->extra.size(); ++v) {
      if (it->extra[v].size() == ctx.extra[v].size() &&
          !ctx.extra[v].empty()) {
        std::copy(it->extra[v].begin(), it->extra[v].end(),
                  ctx.extra[v].begin());
      }
    }
    iterations_rolled_back_ += iteration - it->iteration;
    return;
  }
  // No checkpoint survived verification (or none taken yet): global
  // restart from the initial guess.
  if (history_.empty()) {
    if (options_.target == CheckpointTarget::kDisk) {
      ctx.cluster.read_disk(bytes, PhaseTag::kRollback);
    } else {
      ctx.cluster.read_memory(bytes, PhaseTag::kRollback);
    }
  }
  RSLS_CHECK(initial_guess_.size() == x.size());
  std::copy(initial_guess_.begin(), initial_guess_.end(), x.begin());
  iterations_rolled_back_ += iteration;
}

solver::HookAction CheckpointRestart::recover(RecoveryContext& ctx,
                                              Index iteration,
                                              Index /*failed_rank*/,
                                              std::span<Real> x) {
  count_recovery();
  restore_verified(ctx, iteration, x);
  return solver::HookAction::kRestart;
}

solver::HookAction CheckpointRestart::recover_multi(
    RecoveryContext& ctx, Index iteration, const IndexVec& failed_ranks,
    std::span<Real> x) {
  RSLS_CHECK(!failed_ranks.empty());
  // Classical CR performs one global restart regardless of how many
  // processes the event took out.
  return recover(ctx, iteration, failed_ranks.front(), x);
}

bool CheckpointRestart::rollback(RecoveryContext& ctx, Index iteration,
                                 std::span<Real> x) {
  count_recovery();
  restore_verified(ctx, iteration, x);
  return true;
}

Seconds CheckpointRestart::mean_checkpoint_seconds() const {
  return checkpoints_taken_ > 0
             ? checkpoint_seconds_ / static_cast<double>(checkpoints_taken_)
             : 0.0;
}

}  // namespace rsls::resilience
