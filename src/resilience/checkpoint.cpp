#include "resilience/checkpoint.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

using power::PhaseTag;

CheckpointRestart::CheckpointRestart(CheckpointOptions options,
                                     RealVec initial_guess)
    : options_(options), initial_guess_(std::move(initial_guess)) {
  RSLS_CHECK(options.interval_iterations >= 1);
}

std::string CheckpointRestart::name() const {
  return options_.target == CheckpointTarget::kDisk ? "CR-D" : "CR-M";
}

void CheckpointRestart::on_iteration(RecoveryContext& ctx, Index iteration,
                                     std::span<const Real> x) {
  if (iteration % options_.interval_iterations != 0) {
    return;
  }
  const Seconds before = ctx.cluster.elapsed();
  const Bytes bytes = ctx.a.vector_bytes();
  if (options_.target == CheckpointTarget::kDisk) {
    ctx.cluster.write_disk(bytes, PhaseTag::kCheckpoint);
  } else {
    ctx.cluster.write_memory(bytes, PhaseTag::kCheckpoint);
  }
  saved_x_ = RealVec(x.begin(), x.end());
  saved_iteration_ = iteration;
  ++checkpoints_taken_;
  checkpoint_seconds_ += ctx.cluster.elapsed() - before;
}

solver::HookAction CheckpointRestart::recover(RecoveryContext& ctx,
                                              Index iteration,
                                              Index /*failed_rank*/,
                                              std::span<Real> x) {
  count_recovery();
  const Bytes bytes = ctx.a.vector_bytes();
  if (options_.target == CheckpointTarget::kDisk) {
    ctx.cluster.read_disk(bytes, PhaseTag::kRollback);
  } else {
    ctx.cluster.read_memory(bytes, PhaseTag::kRollback);
  }
  if (saved_x_.has_value()) {
    RSLS_CHECK(saved_x_->size() == x.size());
    std::copy(saved_x_->begin(), saved_x_->end(), x.begin());
    iterations_rolled_back_ += iteration - saved_iteration_;
  } else {
    // No checkpoint yet: global restart from the initial guess.
    RSLS_CHECK(initial_guess_.size() == x.size());
    std::copy(initial_guess_.begin(), initial_guess_.end(), x.begin());
    iterations_rolled_back_ += iteration;
  }
  return solver::HookAction::kRestart;
}

solver::HookAction CheckpointRestart::recover_multi(
    RecoveryContext& ctx, Index iteration, const IndexVec& failed_ranks,
    std::span<Real> x) {
  RSLS_CHECK(!failed_ranks.empty());
  // Classical CR performs one global restart regardless of how many
  // processes the event took out.
  return recover(ctx, iteration, failed_ranks.front(), x);
}

Seconds CheckpointRestart::mean_checkpoint_seconds() const {
  return checkpoints_taken_ > 0
             ? checkpoint_seconds_ / static_cast<double>(checkpoints_taken_)
             : 0.0;
}

}  // namespace rsls::resilience
