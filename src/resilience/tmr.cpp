#include "resilience/tmr.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

using power::Activity;
using power::PhaseTag;

void Tmr::on_iteration(RecoveryContext& ctx, Index /*iteration*/,
                       std::span<const Real> x) {
  replica_x_.assign(x.begin(), x.end());
  replica_r_.assign(ctx.r.begin(), ctx.r.end());
  replica_p_.assign(ctx.p.begin(), ctx.p.end());
  replica_extra_.resize(ctx.extra.size());
  for (std::size_t v = 0; v < ctx.extra.size(); ++v) {
    replica_extra_[v].assign(ctx.extra[v].begin(), ctx.extra[v].end());
  }
}

solver::HookAction Tmr::recover(RecoveryContext& ctx, Index /*iteration*/,
                                Index failed_rank, std::span<Real> x) {
  count_recovery();
  ++votes_;
  RSLS_CHECK_MSG(replica_x_.size() == x.size(),
                 "TMR fault before the first replicated iteration");
  const auto& part = ctx.a.partition();
  const Index begin = part.begin(failed_rank);
  const Index end = part.end(failed_rank);
  Bytes voted_bytes = ctx.a.block_bytes(failed_rank);
  for (Index i = begin; i < end; ++i) {
    x[static_cast<std::size_t>(i)] = replica_x_[static_cast<std::size_t>(i)];
  }
  // The replicas hold the whole solver state; the vote covers the
  // recurrence vectors too, so recovery stays exact.
  if (replica_r_.size() == ctx.r.size() && !ctx.r.empty()) {
    for (Index i = begin; i < end; ++i) {
      ctx.r[static_cast<std::size_t>(i)] =
          replica_r_[static_cast<std::size_t>(i)];
    }
    voted_bytes += ctx.a.block_bytes(failed_rank);
  }
  if (replica_p_.size() == ctx.p.size() && !ctx.p.empty()) {
    for (Index i = begin; i < end; ++i) {
      ctx.p[static_cast<std::size_t>(i)] =
          replica_p_[static_cast<std::size_t>(i)];
    }
    voted_bytes += ctx.a.block_bytes(failed_rank);
  }
  // Pipelined recurrence vectors are voted alongside x, r, and p.
  for (std::size_t v = 0;
       v < ctx.extra.size() && v < replica_extra_.size(); ++v) {
    if (replica_extra_[v].size() != ctx.extra[v].size() ||
        ctx.extra[v].empty()) {
      continue;
    }
    for (Index i = begin; i < end; ++i) {
      ctx.extra[v][static_cast<std::size_t>(i)] =
          replica_extra_[v][static_cast<std::size_t>(i)];
    }
    voted_bytes += ctx.a.block_bytes(failed_rank);
  }
  // The vote: the failed rank compares its block against both replicas —
  // two block transfers — and adopts the majority value.
  ctx.cluster.replica_fetch(failed_rank, voted_bytes, 2,
                            PhaseTag::kReconstruct);
  ctx.cluster.sync(PhaseTag::kIdleWait);
  return solver::HookAction::kContinue;
}

}  // namespace rsls::resilience
