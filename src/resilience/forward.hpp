#pragma once
// Forward recovery schemes (paper Table 2, §3.2, §4).
//
// Four approximations of the lost block x_{p_i}:
//   F0  — zeros                          (assignment, T_const = 0)
//   FI  — the initial guess              (assignment, T_const = 0)
//   LI  — linear interpolation, Eq. 17:  solve A_{ii} z = b_i - Σ_{j≠i} A_{ij} x_j
//   LSI — least squares interpolation, Eq. 18: min ‖b - Σ_{j≠i} A_{:,j} x_j - A_{:,i} z‖
//
// Construction methods for LI/LSI:
//   kExactFactorization — the prior-work baselines [2]: sequential dense
//     LU of the diagonal block (LI) / parallel QR of the column slice
//     (LSI). Exact, expensive, and for QR necessarily parallel (no DVFS
//     opportunity).
//   kLocalCg — the paper's §4.1 contribution: solve the interpolation
//     system *inexactly and locally* on the failed process with CG (for
//     LSI via the SPD transform of Eq. 21), freeing every other core.
//
// The dvfs flag enables §4.2's power management: while the failed process
// reconstructs, all other cores are pinned to the lowest frequency
// (userspace governor semantics) and restored afterwards.

#include <memory>
#include <vector>

#include "core/units.hpp"
#include "resilience/scheme.hpp"

namespace rsls::resilience {

enum class FwKind { kZero, kInitialGuess, kLinear, kLeastSquares };
enum class ConstructionMethod { kAssignment, kExactFactorization, kLocalCg };

struct ForwardRecoveryOptions {
  FwKind kind = FwKind::kLinear;
  ConstructionMethod method = ConstructionMethod::kLocalCg;
  /// Relative tolerance of the local CG construction (Fig. 4 sweeps this).
  Real cg_tolerance = 1e-6;
  Index cg_max_iterations = 50000;
  /// §4.2 DVFS power management during construction.
  bool dvfs = false;
};

class ForwardRecovery final : public RecoveryScheme {
 public:
  /// `initial_guess` is retained for FI (and as the local CG starting
  /// point being zero, it is not otherwise used).
  ForwardRecovery(ForwardRecoveryOptions options, RealVec initial_guess = {});

  std::string name() const override;

  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// Total virtual time the failed ranks spent constructing (Σ t_const);
  /// measured input for the §3.2 FW model and the §6 projection.
  Seconds construction_seconds() const { return construction_seconds_; }

  /// Mean t_const per recovery (0 when no recovery happened).
  Seconds mean_construction_seconds() const;

  /// Virtual-time window of each construction (start, end) on the failed
  /// rank's clock; lets benches measure in-construction power (Fig. 7a).
  struct Window {
    Seconds begin = 0.0;
    Seconds end = 0.0;
  };
  const std::vector<Window>& construction_windows() const {
    return windows_;
  }

  const ForwardRecoveryOptions& options() const { return options_; }

  // Factory helpers (paper scheme names).
  static std::unique_ptr<ForwardRecovery> f0();
  static std::unique_ptr<ForwardRecovery> fi(RealVec initial_guess);
  static std::unique_ptr<ForwardRecovery> li_lu();
  static std::unique_ptr<ForwardRecovery> li_cg(Real tolerance = 1e-6,
                                                bool dvfs = false);
  static std::unique_ptr<ForwardRecovery> lsi_qr();
  static std::unique_ptr<ForwardRecovery> lsi_cg(Real tolerance = 1e-6,
                                                 bool dvfs = false);

 private:
  void recover_assignment(RecoveryContext& ctx, Index failed_rank,
                          std::span<Real> x) const;
  void recover_linear(RecoveryContext& ctx, Index failed_rank,
                      std::span<Real> x);
  void recover_least_squares(RecoveryContext& ctx, Index failed_rank,
                             std::span<Real> x);

  ForwardRecoveryOptions options_;
  RealVec initial_guess_;
  Seconds construction_seconds_ = 0.0;
  Index constructions_ = 0;
  std::vector<Window> windows_;
};

}  // namespace rsls::resilience
