#pragma once
// Recovery scheme interface (paper Table 2).
//
// A scheme is a strategy object attached to one resilient solve. It sees
// every iteration boundary (to take checkpoints) and is asked to recover
// when a fault has destroyed one process's block of the iterate. Schemes
// charge every cost of their actions — construction flops, checkpoint
// I/O, DVFS transitions, idle waiting of non-participating ranks — to the
// virtual cluster.

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "simrt/cluster.hpp"
#include "solver/cg.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::obs {
class Recorder;
}  // namespace rsls::obs

namespace rsls::resilience {

struct RecoveryContext {
  const dist::DistMatrix& a;
  std::span<const Real> b;
  simrt::VirtualCluster& cluster;
  /// Observability session, or nullptr when tracing/metrics are off.
  /// Schemes open spans and bump counters through the null-safe helpers
  /// in obs/recorder.hpp.
  obs::Recorder* recorder = nullptr;
  /// The solver's recurrence residual r and search direction p, when the
  /// orchestrator exposes them (empty otherwise, e.g. in direct-call unit
  /// tests). A process loss destroys the failed rank's block of *all*
  /// solver state; schemes that claim exact recovery (kContinue) must
  /// restore these blocks too, not just x.
  std::span<Real> r{};
  std::span<Real> p{};
  /// Additional live recurrence vectors in solver-defined order (the
  /// pipelined variant exposes {u, w, s, q, z}; empty for classic CG —
  /// see CgIterationView::extra). Exact-recovery schemes must protect
  /// and restore these blocks exactly like r and p; restart-based
  /// schemes can ignore them, since the solver's rebuild renews them
  /// from x.
  std::vector<std::span<Real>> extra{};
  /// SpMV kernel for local matrices recovery builds mid-flight (row
  /// blocks, normal-equation operators), and a prepared plan over
  /// a.global() for full-size products. Null means csr-scalar — the
  /// seed path. Borrowed from CgOptions by the orchestrator.
  const sparse::SpmvKernel* spmv_kernel = nullptr;
  const sparse::SpmvPlan* spmv_plan = nullptr;
};

class RecoveryScheme {
 public:
  virtual ~RecoveryScheme() = default;

  virtual std::string name() const = 0;

  /// Called after every completed CG iteration (before fault injection).
  /// Checkpointing schemes act here.
  virtual void on_iteration(RecoveryContext& /*ctx*/, Index /*iteration*/,
                            std::span<const Real> /*x*/) {}

  /// A fault destroyed `failed_rank`'s block of x (now NaN). Restore or
  /// approximate it in place. Return kRestart if the solver must rebuild
  /// its internal vectors from the recovered x (every scheme except exact
  /// redundancy), kContinue if the full solver state was restored exactly.
  virtual solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                                     Index failed_rank,
                                     std::span<Real> x) = 0;

  /// A multi-rank fault event (the paper's LNF class) destroyed several
  /// blocks at once. The default recovers each block in turn — correct
  /// for forward recovery and redundancy; checkpoint schemes override it
  /// to roll back once. Returns kRestart if any recovery requires it.
  virtual solver::HookAction recover_multi(RecoveryContext& ctx,
                                           Index iteration,
                                           const IndexVec& failed_ranks,
                                           std::span<Real> x);

  /// Escalation: restore a known-good *global* state after localized
  /// recovery failed validation (rung 1 of the detect→recover ladder).
  /// Returns true if the scheme rewrote x from trusted state (checkpoint,
  /// replica); false if it has none, in which case the caller escalates
  /// to a restart from the initial guess.
  virtual bool rollback(RecoveryContext& /*ctx*/, Index /*iteration*/,
                        std::span<Real> /*x*/) {
    return false;
  }

  /// Cluster replication this scheme requires (2 for DMR, 1 otherwise).
  virtual Index replica_factor() const { return 1; }

  /// Number of recoveries performed (for reporting).
  Index recoveries() const { return recoveries_; }

 protected:
  void count_recovery() { ++recoveries_; }

 private:
  Index recoveries_ = 0;
};

}  // namespace rsls::resilience
