#pragma once
// Orchestration of one resilient solve: CG + fault injection + recovery,
// with the full time/power/energy report the benches consume.

#include <span>

#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/dist_matrix.hpp"
#include "power/rapl.hpp"
#include "resilience/fault.hpp"
#include "resilience/scheme.hpp"
#include "simrt/cluster.hpp"
#include "solver/cg.hpp"

namespace rsls::resilience {

struct ResilientSolveReport {
  solver::CgResult cg;
  Index faults = 0;
  Index recoveries = 0;
  /// Virtual makespan of the run.
  Seconds time = 0.0;
  /// Total energy (cores + uncore/DRAM, replica-scaled).
  Joules energy = 0.0;
  /// energy / time.
  Watts average_power = 0.0;
  /// Core energy per phase tag (replica-scaled), for E_res splits.
  power::EnergyAccount account;
};

/// Run CG on (a, b) from x0 under the given scheme and injector, charging
/// everything to `cluster`. On return x holds the final iterate.
ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options);

}  // namespace rsls::resilience
