#pragma once
// Orchestration of one resilient solve: CG + fault injection + detection
// + recovery, with the full time/power/energy report the benches consume.
//
// Process-loss faults are announced (the runtime knows which rank died)
// and go straight to the recovery scheme, as in the paper's §5 runs.
// Silent-data-corruption faults are NOT announced: the detect→localize→
// recover loop must notice them via the detector suite, pin down the
// damaged block, and dispatch the scheme at it. Recoveries are validated
// and escalate when validation fails:
//
//   rung 0 — localized scheme recovery at the suspect blocks, retried
//            with re-localization up to max_recovery_attempts times;
//   rung 1 — scheme.rollback(): restore a known-good global state
//            (checkpoint, replica) if the scheme has one;
//   rung 2 — restart from the initial guess (always available).
//
// Faults that strike while a recovery is in progress (the recovery
// advanced the virtual clock past another scheduled fault) are nested:
// the loop re-enters recovery for them, bounded by max_nested_faults.
//
// With RecoveryOptions the recovery path itself becomes fallible
// (recovery_runtime.hpp): announced-fault recoveries are attempts that a
// nested fault can strike or a timeout can void, retried over an
// exponential virtual-time backoff; when the retry → rollback → restart
// ladder exceeds its round budget the run ends as a *declared failure* —
// x holds the initial guess and the report says kDeclaredFailure instead
// of handing back a poisoned iterate. The default RecoveryOptions keep
// the seed's infallible in-place model bit-for-bit.

#include <span>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/dist_matrix.hpp"
#include "power/rapl.hpp"
#include "resilience/detector.hpp"
#include "resilience/fault.hpp"
#include "resilience/recovery_runtime.hpp"
#include "resilience/scheme.hpp"
#include "simrt/cluster.hpp"
#include "solver/cg.hpp"

namespace rsls::resilience {

struct HardeningOptions {
  /// Localized recovery attempts (rung 0) before escalating.
  Index max_recovery_attempts = 3;
  /// Bound on fault events handled within one iteration boundary,
  /// including faults nested inside recoveries.
  Index max_nested_faults = 16;
  /// A recovered state must have true relative residual at most this
  /// (and be finite) to pass validation.
  Real validation_residual_bound = 1e4;
};

/// How a resilient solve ended. kDeclaredFailure is the structured
/// give-up: the escalation ladder was exhausted (or a fault storm outran
/// the nested-fault bound) and x holds the initial guess, not a poisoned
/// iterate.
enum class SolveStatus { kConverged, kMaxIterations, kDeclaredFailure };

const char* to_string(SolveStatus status);

struct ResilientSolveReport {
  solver::CgResult cg;
  SolveStatus status = SolveStatus::kMaxIterations;
  Index faults = 0;
  Index recoveries = 0;
  /// Detector flags acted upon (each triggers a detected recovery).
  Index detections = 0;
  /// Fault events that struck while a recovery was already in progress.
  Index nested_faults = 0;
  /// Escalations past localized recovery (rollback or initial-guess
  /// restart rungs entered).
  Index escalations = 0;
  /// Announced-fault recovery attempts under a fallible recovery path
  /// (stays 0 under the seed's infallible default).
  Index recovery_attempts = 0;
  /// Attempts re-run after a failure, each after a backoff wait.
  Index recovery_retries = 0;
  /// Attempts voided by exceeding RecoveryOptions::attempt_timeout.
  Index recovery_timeouts = 0;
  /// Attempts voided by a nested fault striking a rank under repair.
  Index recoveries_struck = 0;
  /// Machine-level recovery outcomes (spare substitution vs shrinking).
  Index spares_consumed = 0;
  Index spare_pool_dry = 0;
  Index shrink_events = 0;
  /// Correlated domain-level fault events (whole leaf switch / rack).
  Index domain_faults = 0;
  /// Realized fault schedule, replayable via FaultInjector::from_schedule
  /// and surfaced in the JSONL RunReport.
  std::vector<FaultRecord> fault_schedule;
  /// ‖b − Ax‖/‖b‖ of the returned iterate, computed exactly (uncharged
  /// diagnostic). An undetected SDC shows up here even when the solver's
  /// own recurrence claims convergence.
  Real true_relative_residual = 0.0;
  /// Virtual makespan of the run.
  Seconds time = 0.0;
  /// Total energy (cores + uncore/DRAM, replica-scaled).
  Joules energy = 0.0;
  /// energy / time.
  Watts average_power = 0.0;
  /// Core energy per phase tag (replica-scaled), for E_res splits.
  power::EnergyAccount account;
};

/// Run CG on (a, b) from x0 under the given scheme, injector, and
/// detector suite, charging everything (detection included, under
/// PhaseTag::kDetect) to `cluster`. On return x holds the final iterate.
///
/// When `recorder` is non-null the run is traced: solve/detect/recover/
/// escalate spans open over virtual time and fault/detector/recovery
/// metrics accumulate in the recorder's registry. The recorder is NOT
/// attached to the cluster here — callers that also want the charge
/// stream attach it themselves before calling.
ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options,
                                     DetectorSuite& detectors,
                                     const HardeningOptions& hardening = {},
                                     obs::Recorder* recorder = nullptr,
                                     const RecoveryOptions& recovery = {});

/// Detection-free variant (announced faults only, as in the paper's §5
/// experiments).
ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options,
                                     const RecoveryOptions& recovery = {});

}  // namespace rsls::resilience
