#pragma once
// Checkpoint/restart recovery (paper Table 2: CR-D and CR-M).
//
// The solution vector x is checkpointed every `interval_iterations`
// iterations to the shared disk (CR-D) or node-local memory (CR-M). On a
// fault the *entire* iterate rolls back to the most recent checkpoint
// (classical CR performs a global restart even when one process fails)
// and CG restarts; the recomputation of lost iterations is T_lost.
//
// Checkpoints are themselves vulnerable to bit rot: every snapshot
// carries an FNV-1a integrity word computed at write time and verified
// before any rollback. A snapshot that fails verification is discarded
// and the rollback falls through to the next-older snapshot in the
// retained history, and finally to the initial guess — a corrupted
// checkpoint must never be restored silently.

#include <cstdint>
#include <memory>

#include "core/units.hpp"
#include "resilience/scheme.hpp"

namespace rsls::resilience {

enum class CheckpointTarget { kMemory, kDisk };

struct CheckpointOptions {
  CheckpointTarget target = CheckpointTarget::kDisk;
  /// Checkpoint cadence in iterations. §5.2 fixes this at 100; §5.3
  /// derives it from Young's formula via model::young_interval and the
  /// measured iteration time.
  Index interval_iterations = 100;
  /// Snapshots retained; older ones are fallbacks when integrity
  /// verification rejects a newer one.
  Index history = 2;
  /// Test hook: corrupt every n-th snapshot at write time, *after* its
  /// integrity word is computed (0 disables). Models storage bit rot.
  Index bitrot_every_n = 0;
  std::uint64_t bitrot_seed = 0x5eed;
};

class CheckpointRestart final : public RecoveryScheme {
 public:
  explicit CheckpointRestart(CheckpointOptions options,
                             RealVec initial_guess);

  std::string name() const override;

  void on_iteration(RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// A multi-rank fault needs only one global rollback.
  solver::HookAction recover_multi(RecoveryContext& ctx, Index iteration,
                                   const IndexVec& failed_ranks,
                                   std::span<Real> x) override;

  /// Escalation entry point: same global rollback, reported as such.
  bool rollback(RecoveryContext& ctx, Index iteration,
                std::span<Real> x) override;

  Index checkpoints_taken() const { return checkpoints_taken_; }

  /// Measured per-checkpoint cost t_C (virtual seconds), input for the
  /// §3.2 CR model and Table 6.
  Seconds checkpoint_seconds_total() const { return checkpoint_seconds_; }
  Seconds mean_checkpoint_seconds() const;

  /// Iterations of progress discarded by rollbacks (Σ over faults);
  /// the experimental analogue of T_lost's iteration count.
  Index iterations_rolled_back() const { return iterations_rolled_back_; }

  /// Snapshots rejected by integrity verification during rollbacks.
  Index integrity_failures() const { return integrity_failures_; }

  /// Snapshots currently retained.
  Index snapshots_held() const { return static_cast<Index>(history_.size()); }

  /// Test hook: flip one bit in a retained snapshot without updating its
  /// integrity word (0 = newest).
  void corrupt_snapshot(Index index_from_newest = 0);

  const CheckpointOptions& options() const { return options_; }

 private:
  struct Snapshot {
    RealVec x;
    /// Pipelined-solver state (r, p, and the extra recurrence vectors),
    /// captured only when the solver exposes extras — the classic-CG
    /// checkpoint stays an x-only snapshot, byte-identical to always.
    /// A restart renews these from x anyway; storing them keeps the
    /// snapshot a complete image of the state it claims to preserve and
    /// prices the checkpoint at its true footprint.
    RealVec r;
    RealVec p;
    std::vector<RealVec> extra;
    Index iteration = 0;
    /// Integrity word over x (the vector a rollback actually reinstates
    /// into the continuing solve).
    std::uint64_t crc = 0;
  };

  /// Restore the newest snapshot that passes verification (else the
  /// initial guess), charging one checkpoint read per attempt.
  void restore_verified(RecoveryContext& ctx, Index iteration,
                        std::span<Real> x);

  CheckpointOptions options_;
  RealVec initial_guess_;
  std::vector<Snapshot> history_;  // oldest first
  Index checkpoints_taken_ = 0;
  Seconds checkpoint_seconds_ = 0.0;
  Index iterations_rolled_back_ = 0;
  Index integrity_failures_ = 0;
};

}  // namespace rsls::resilience
