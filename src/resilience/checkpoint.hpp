#pragma once
// Checkpoint/restart recovery (paper Table 2: CR-D and CR-M).
//
// The solution vector x is checkpointed every `interval_iterations`
// iterations to the shared disk (CR-D) or node-local memory (CR-M). On a
// fault the *entire* iterate rolls back to the most recent checkpoint
// (classical CR performs a global restart even when one process fails)
// and CG restarts; the recomputation of lost iterations is T_lost.

#include <memory>
#include <optional>

#include "core/units.hpp"
#include "resilience/scheme.hpp"

namespace rsls::resilience {

enum class CheckpointTarget { kMemory, kDisk };

struct CheckpointOptions {
  CheckpointTarget target = CheckpointTarget::kDisk;
  /// Checkpoint cadence in iterations. §5.2 fixes this at 100; §5.3
  /// derives it from Young's formula via model::young_interval and the
  /// measured iteration time.
  Index interval_iterations = 100;
};

class CheckpointRestart final : public RecoveryScheme {
 public:
  explicit CheckpointRestart(CheckpointOptions options,
                             RealVec initial_guess);

  std::string name() const override;

  void on_iteration(RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(RecoveryContext& ctx, Index iteration,
                             Index failed_rank, std::span<Real> x) override;

  /// A multi-rank fault needs only one global rollback.
  solver::HookAction recover_multi(RecoveryContext& ctx, Index iteration,
                                   const IndexVec& failed_ranks,
                                   std::span<Real> x) override;

  Index checkpoints_taken() const { return checkpoints_taken_; }

  /// Measured per-checkpoint cost t_C (virtual seconds), input for the
  /// §3.2 CR model and Table 6.
  Seconds checkpoint_seconds_total() const { return checkpoint_seconds_; }
  Seconds mean_checkpoint_seconds() const;

  /// Iterations of progress discarded by rollbacks (Σ over faults);
  /// the experimental analogue of T_lost's iteration count.
  Index iterations_rolled_back() const { return iterations_rolled_back_; }

  const CheckpointOptions& options() const { return options_; }

 private:
  CheckpointOptions options_;
  RealVec initial_guess_;
  std::optional<RealVec> saved_x_;
  Index saved_iteration_ = 0;
  Index checkpoints_taken_ = 0;
  Seconds checkpoint_seconds_ = 0.0;
  Index iterations_rolled_back_ = 0;
};

}  // namespace rsls::resilience
