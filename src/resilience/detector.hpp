#pragma once
// Online silent-data-corruption detectors.
//
// The paper's fault taxonomy (§2.1) includes SDC but takes detection for
// granted ([10]); every recovery scheme in Table 2 is *fed* the failed
// rank by the harness. This layer makes detection load-bearing: pluggable
// detectors inspect the solver state at iteration boundaries, flag
// corruption, and localize the damaged block so the detect→localize→
// recover loop in resilient_solve can dispatch an ordinary recovery
// scheme at it. Three detectors, cheap to expensive:
//
//   checksum      — TwinCG-style comparison against redundant state: a
//                   per-block FNV-1a word over x is refreshed from the
//                   trusted post-iteration state and re-verified after
//                   the fault window. Exact localization; fixed cadence 1
//                   (a stale checksum cannot be compared against a
//                   legitimately-updated iterate).
//   norm-bound    — invariant check: x must stay finite and ‖x‖∞ must not
//                   explode past a growth factor of its running clean
//                   maximum; the recurrence residual must stay finite.
//                   Localizes to the blocks holding offending entries.
//   residual-gap  — periodically computes the *true* residual b − Ax and
//                   compares it against the solver's recurrence residual.
//                   A true residual far above the recurrence value means
//                   x is corrupted (localized via per-block residual
//                   norms); a recurrence value far above the true
//                   residual means the recurrence state (r/p) is
//                   corrupted while x is clean — recovery is then just a
//                   rebuild from x. The cadence trades detection latency
//                   against the extra SpMV per inspection
//                   (bench/ablation_detection sweeps it).
//
// Every inspection charges its time and energy to the virtual cluster
// under PhaseTag::kDetect, so benches report the E/T cost of detection.

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "simrt/cluster.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::resilience {

struct DetectionContext {
  const dist::DistMatrix& a;
  std::span<const Real> b;
  simrt::VirtualCluster& cluster;
  /// Prepared plan over a.global() for the true-residual SpMV; null
  /// means the csr-scalar free function.
  const sparse::SpmvPlan* spmv_plan = nullptr;
};

struct DetectionVerdict {
  bool flagged = false;
  /// Ranks whose block of x is suspected. Empty with flagged set means
  /// the corruption was seen but could not be pinned to a block.
  IndexVec suspect_ranks;
  /// x looks clean but the solver's recurrence state disagrees with it;
  /// recovery is a rebuild from x, no block repair needed.
  bool derived_state_only = false;
  /// Name of the detector that raised the flag (diagnostics).
  std::string detector;
};

/// FNV-1a over the bytes of a vector slice (the checkpoint integrity
/// word and the block checksum detector share this).
std::uint64_t fnv1a64(std::span<const Real> v);

class SdcDetector {
 public:
  virtual ~SdcDetector() = default;

  virtual std::string name() const = 0;

  /// Iteration cadence: inspect() runs when iteration % cadence == 0.
  virtual Index cadence() const { return 1; }

  /// Record trusted state right after a clean iteration, before the
  /// fault window. Charged to the cluster (kDetect) where the detector
  /// maintains redundant state.
  virtual void observe(DetectionContext& /*ctx*/, Index /*iteration*/,
                       std::span<const Real> /*x*/) {}

  /// Inspect the possibly-corrupted state after the fault window.
  /// `recurrence_relative_residual` is the solver's own ‖r‖/‖b‖ estimate.
  /// Charges inspection cost to the cluster (kDetect).
  virtual DetectionVerdict inspect(DetectionContext& ctx, Index iteration,
                                   Real recurrence_relative_residual,
                                   std::span<const Real> x) = 0;

  /// Forget baselines after a recovery rewrote the solver state.
  virtual void invalidate() {}

  Index inspections() const { return inspections_; }
  Index detections() const { return detections_; }

 protected:
  void count_inspection() { ++inspections_; }
  void count_detection() { ++detections_; }

 private:
  Index inspections_ = 0;
  Index detections_ = 0;
};

struct DetectionOptions {
  bool enable_checksum = true;
  bool enable_norm_bound = true;
  bool enable_residual_gap = true;
  /// ‖x‖∞ may grow this factor past its running clean maximum before the
  /// norm-bound detector flags it.
  Real norm_growth_factor = 1e6;
  /// Iterations between true-residual verifications.
  Index residual_gap_cadence = 10;
  /// Factor by which true and recurrence residual may disagree.
  Real residual_gap_factor = 1e3;
  /// Absolute floor under which residual disagreement is ignored
  /// (rounding noise near convergence, not corruption).
  Real residual_gap_floor = 1e-13;
};

/// Per-block FNV checksums over x, refreshed every observe().
class BlockChecksumDetector final : public SdcDetector {
 public:
  std::string name() const override { return "checksum"; }
  void observe(DetectionContext& ctx, Index iteration,
               std::span<const Real> x) override;
  DetectionVerdict inspect(DetectionContext& ctx, Index iteration,
                           Real recurrence_relative_residual,
                           std::span<const Real> x) override;
  void invalidate() override { checksums_.clear(); }

 private:
  std::vector<std::uint64_t> checksums_;
};

/// Finite/explosion invariants on x and the recurrence residual.
class NormBoundDetector final : public SdcDetector {
 public:
  explicit NormBoundDetector(Real growth_factor = 1e6);
  std::string name() const override { return "norm-bound"; }
  DetectionVerdict inspect(DetectionContext& ctx, Index iteration,
                           Real recurrence_relative_residual,
                           std::span<const Real> x) override;
  void invalidate() override { baseline_inf_ = 0.0; }

 private:
  Real growth_factor_;
  Real baseline_inf_ = 0.0;
};

/// Periodic true residual b − Ax vs the solver's recurrence estimate.
class ResidualGapDetector final : public SdcDetector {
 public:
  explicit ResidualGapDetector(Index cadence = 10, Real gap_factor = 1e3,
                               Real floor = 1e-13);
  std::string name() const override { return "residual-gap"; }
  Index cadence() const override { return cadence_; }
  DetectionVerdict inspect(DetectionContext& ctx, Index iteration,
                           Real recurrence_relative_residual,
                           std::span<const Real> x) override;

 private:
  Index cadence_;
  Real gap_factor_;
  Real floor_;
};

/// An ordered set of detectors run cheapest-first each iteration.
class DetectorSuite {
 public:
  DetectorSuite() = default;

  void add(std::unique_ptr<SdcDetector> detector);
  bool empty() const { return detectors_.empty(); }

  void observe(DetectionContext& ctx, Index iteration,
               std::span<const Real> x);

  /// Runs every detector due at this iteration; the first flag wins (its
  /// localization is the most precise among enabled detectors because of
  /// the cheap-first ordering).
  DetectionVerdict inspect(DetectionContext& ctx, Index iteration,
                           Real recurrence_relative_residual,
                           std::span<const Real> x);

  void invalidate();

  Index inspections() const;
  Index detections() const;
  const std::vector<std::unique_ptr<SdcDetector>>& detectors() const {
    return detectors_;
  }

 private:
  std::vector<std::unique_ptr<SdcDetector>> detectors_;
};

/// The standard suite (checksum → norm-bound → residual-gap, as enabled).
DetectorSuite make_detector_suite(const DetectionOptions& options);

/// Post-recovery validation: x must be finite and its true relative
/// residual at most `residual_bound` (a recovered state is at worst a
/// restart, never astronomically inconsistent). Localizes a failed
/// validation via per-block residual norms so the recovery loop can
/// retry against the right block. Charges one SpMV + reductions
/// (kDetect).
DetectionVerdict validate_state(DetectionContext& ctx, std::span<const Real> x,
                                Real residual_bound = 1e4);

}  // namespace rsls::resilience
