#include "resilience/scheme.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

solver::HookAction RecoveryScheme::recover_multi(RecoveryContext& ctx,
                                                 Index iteration,
                                                 const IndexVec& failed_ranks,
                                                 std::span<Real> x) {
  RSLS_CHECK(!failed_ranks.empty());
  solver::HookAction action = solver::HookAction::kContinue;
  for (const Index failed : failed_ranks) {
    if (recover(ctx, iteration, failed, x) == solver::HookAction::kRestart) {
      action = solver::HookAction::kRestart;
    }
  }
  return action;
}

}  // namespace rsls::resilience
