#include "resilience/resilient_solve.hpp"

#include "core/error.hpp"

namespace rsls::resilience {

ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options) {
  RSLS_CHECK_MSG(cluster.replica_factor() == scheme.replica_factor(),
                 "cluster replica factor must match the scheme (DMR = 2)");
  RecoveryContext ctx{a, b, cluster};

  const solver::IterationHook hook =
      [&](const solver::CgIterationView& view) -> solver::HookAction {
    scheme.on_iteration(ctx, view.iteration, view.x);
    const IndexVec failed =
        injector.check_multi(view.iteration, cluster.elapsed());
    if (failed.empty()) {
      return solver::HookAction::kContinue;
    }
    for (const Index rank : failed) {
      FaultInjector::corrupt_block(a.partition(), rank, view.x);
    }
    if (failed.size() == 1) {
      return scheme.recover(ctx, view.iteration, failed.front(), view.x);
    }
    return scheme.recover_multi(ctx, view.iteration, failed, view.x);
  };

  ResilientSolveReport report;
  report.cg = solver::cg_solve(a, cluster, b, x, options, hook);
  report.faults = injector.faults_injected();
  report.recoveries = scheme.recoveries();
  report.time = cluster.elapsed();
  report.energy = cluster.total_energy();
  report.average_power = cluster.average_power();
  report.account = cluster.energy();
  return report;
}

}  // namespace rsls::resilience
