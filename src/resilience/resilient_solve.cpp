#include "resilience/resilient_solve.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "obs/recorder.hpp"
#include "sparse/csr.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::resilience {

using power::Activity;
using power::PhaseTag;
using solver::HookAction;

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kDeclaredFailure:
      return "declared-failure";
  }
  return "?";
}

namespace {

HookAction merge(HookAction a, HookAction b) {
  if (a == HookAction::kAbort || b == HookAction::kAbort) {
    return HookAction::kAbort;
  }
  return (a == HookAction::kRestart || b == HookAction::kRestart)
             ? HookAction::kRestart
             : HookAction::kContinue;
}

/// Bucket bounds for the recovery-duration histogram (seconds of virtual
/// time per dispatched recovery).
std::vector<double> recovery_seconds_bounds() {
  return {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

/// Bucket bounds for the per-iteration residual decay rate,
/// log10(res_prev / res_curr): negative = diverging, ~0 = stagnating.
std::vector<double> residual_decay_bounds() {
  return {-1.0, -0.1, 0.0, 0.05, 0.1, 0.5, 1.0, 2.0};
}

/// Compact rank-list attribute for span details and series markers.
std::string ranks_detail(const IndexVec& ranks) {
  std::string out = "ranks=";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ranks[i]);
  }
  return out;
}

/// Series-marker detail for one realized fault.
std::string fault_detail(const FaultEvent& event) {
  std::string out =
      event.cls == FaultClass::kProcessLoss ? "process-loss " : "sdc ";
  out += ranks_detail(event.ranks);
  if (event.domain_event) out += " domain";
  return out;
}

/// Run the scheme at the damaged ranks, with one "recover" span per rank
/// track (detail distinguishes announced faults from detector-triggered
/// dispatches) and the recovery duration fed to the histogram.
HookAction dispatch_recovery(RecoveryScheme& scheme, RecoveryContext& ctx,
                             Index iteration, const IndexVec& ranks,
                             std::span<Real> x, const char* detail) {
  RSLS_CHECK(!ranks.empty());
  std::vector<obs::ScopedSpan> spans;
  if (ctx.recorder != nullptr) {
    spans.reserve(ranks.size());
    for (const Index rank : ranks) {
      spans.emplace_back(ctx.recorder, "recover", PhaseTag::kReconstruct,
                         rank, detail);
    }
  }
  const Seconds start = ctx.cluster.elapsed();
  const HookAction action =
      ranks.size() == 1 ? scheme.recover(ctx, iteration, ranks.front(), x)
                        : scheme.recover_multi(ctx, iteration, ranks, x);
  obs::observe(ctx.recorder, "recovery_seconds", recovery_seconds_bounds(),
               ctx.cluster.elapsed() - start);
  obs::count(ctx.recorder, "recoveries_dispatched");
  obs::mark_series_event(ctx.recorder, "recovery", iteration,
                         std::string(detail) + " " + ranks_detail(ranks));
  return action;
}

}  // namespace

ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options,
                                     DetectorSuite& detectors,
                                     const HardeningOptions& hardening,
                                     obs::Recorder* recorder,
                                     const RecoveryOptions& recovery) {
  RSLS_CHECK_MSG(cluster.replica_factor() == scheme.replica_factor(),
                 "cluster replica factor must match the scheme (DMR = 2)");
  RSLS_CHECK(hardening.max_recovery_attempts >= 1);
  RSLS_CHECK(hardening.max_nested_faults >= 1);
  if (recorder != nullptr && recorder->scheme().empty()) {
    recorder->set_scheme(scheme.name());
  }
  RecoveryRuntime runtime(recovery);
  if (recovery.spare_ranks > 0) {
    cluster.set_spare_ranks(recovery.spare_ranks);
  }
  RecoveryContext ctx{a, b, cluster, recorder};
  ctx.spmv_kernel = options.spmv_kernel;
  ctx.spmv_plan = options.spmv_plan;
  DetectionContext dctx{a, b, cluster};
  dctx.spmv_plan = options.spmv_plan;
  const auto& part = a.partition();
  const Real b_norm = sparse::norm2(b);
  // Rung 2 of the escalation ladder restarts from the initial guess, so
  // keep a copy the run cannot corrupt.
  const RealVec x0_copy = x;

  ResilientSolveReport report;

  // Recompute the recurrence relative residual from the *current* r so
  // detectors compare against the possibly-corrupted recurrence state,
  // not the pre-fault value the solver computed.
  const auto recurrence_relative = [&](std::span<const Real> r) {
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, 2.0 * static_cast<double>(part.block_rows(rank)),
          PhaseTag::kDetect);
    }
    cluster.allreduce(8.0, PhaseTag::kDetect);
    return sparse::norm2(r) / (b_norm > 0.0 ? b_norm : 1.0);
  };

  // A replacement process re-derives its block of the preconditioner
  // state (inverse diagonal, diagonal block, IC(0) factor) from the
  // surviving matrix — local work charged under kPrecond by
  // Preconditioner::rebuild_local. The matrix itself is never lost in
  // the paper's fault model, so this needs no communication.
  solver::Preconditioner* const precond = options.preconditioner;
  const auto rebuild_preconditioner = [&](const IndexVec& ranks) {
    if (precond == nullptr || precond->is_identity()) {
      return;
    }
    for (const Index rank : ranks) {
      precond->rebuild_local(a, cluster, rank);
    }
  };

  // Detection-triggered recovery ladder. The detectors only *suspect*
  // blocks; every rung is validated against the true residual before the
  // solve is allowed to continue.
  const auto recover_detected = [&](const DetectionVerdict& verdict,
                                    Index iteration, std::span<Real> x_view) {
    if (verdict.derived_state_only) {
      // x is clean; the kRestart the caller issues rebuilds r and p.
      return;
    }
    IndexVec suspects = verdict.suspect_ranks;
    for (Index attempt = 0; attempt < hardening.max_recovery_attempts;
         ++attempt) {
      if (suspects.empty()) {
        break;  // nothing to aim a localized recovery at
      }
      dispatch_recovery(scheme, ctx, iteration, suspects, x_view, "detected");
      const DetectionVerdict check = validate_state(
          dctx, x_view, hardening.validation_residual_bound);
      if (!check.flagged) {
        return;
      }
      suspects = check.suspect_ranks;
    }
    // Rung 1: global rollback to trusted state, if the scheme has any.
    ++report.escalations;
    obs::count(recorder, "escalations");
    obs::mark_series_event(recorder, "escalation", iteration, "rollback");
    {
      obs::ScopedSpan span(recorder, "escalate:rollback", PhaseTag::kRollback,
                           obs::kClusterTrack);
      if (scheme.rollback(ctx, iteration, x_view)) {
        const DetectionVerdict check = validate_state(
            dctx, x_view, hardening.validation_residual_bound);
        if (!check.flagged) {
          return;
        }
      }
    }
    // Rung 2: restart from the initial guess.
    ++report.escalations;
    obs::count(recorder, "escalations");
    obs::mark_series_event(recorder, "escalation", iteration, "restart");
    obs::ScopedSpan span(recorder, "escalate:restart", PhaseTag::kRollback,
                         obs::kClusterTrack);
    std::copy(x0_copy.begin(), x0_copy.end(), x_view.begin());
  };

  // Fallible-recovery state: ladder rounds consumed so far and whether
  // the run has been declared failed.
  bool declared_failure = false;
  Index ladder_rounds = 0;

  const auto declare_failure = [&](Index iteration, std::span<Real> x_view) {
    declared_failure = true;
    // Structured outcome: hand back the initial guess, not the poisoned
    // iterate the faults left behind.
    std::copy(x0_copy.begin(), x0_copy.end(), x_view.begin());
    obs::count(recorder, "resilience.declared_failures");
    obs::mark_series_event(recorder, "escalation", iteration,
                           "declared-failure");
  };

  // Per-iteration residual decay rate, log10(prev/curr); < 0 means the
  // recurrence residual grew (a fault or a hard patch of the spectrum).
  Real previous_residual = -1.0;

  const solver::IterationHook hook =
      [&](const solver::CgIterationView& view) -> HookAction {
    if (recorder != nullptr) {
      if (previous_residual > 0.0 && view.relative_residual > 0.0) {
        obs::observe(recorder, "residual_decay_log10",
                     residual_decay_bounds(),
                     std::log10(previous_residual / view.relative_residual));
      }
      previous_residual = view.relative_residual;
    }
    // Expose the recurrence state to the scheme: exact-recovery schemes
    // (RD/TMR/ESR) must protect and restore r and p — and any extra
    // pipelined recurrence vectors — along with x.
    ctx.r = view.r;
    ctx.p = view.p;
    ctx.extra = view.extra;
    scheme.on_iteration(ctx, view.iteration, view.x);
    detectors.observe(dctx, view.iteration, view.x);

    HookAction action = HookAction::kContinue;
    bool recovery_happened = false;
    Index events_handled = 0;

    // Drain every fault event due at this boundary. Announced recoveries
    // advance the virtual clock, so time-scheduled faults can land
    // *inside* a recovery — those re-enter this loop as nested faults.
    while (events_handled < hardening.max_nested_faults) {
      const auto event = injector.next_event(view.iteration,
                                             cluster.elapsed());
      if (!event.has_value()) {
        break;
      }
      ++events_handled;
      obs::count(recorder, "faults");
      obs::mark_series_event(recorder, "fault", view.iteration,
                             fault_detail(*event));
      if (recovery_happened) {
        ++report.nested_faults;
        obs::count(recorder, "nested_faults");
      }
      if (event->cls == FaultClass::kProcessLoss) {
        // A dead process takes its blocks of *all* solver state with it,
        // not just the iterate.
        FaultInjector::apply_corruption(*event, part, view.x);
        FaultInjector::apply_corruption(*event, part, view.r);
        FaultInjector::apply_corruption(*event, part, view.p);
        for (const std::span<Real> extra : view.extra) {
          FaultInjector::apply_corruption(*event, part, extra);
        }
        // Machine-level consequence first: substitute a spare for the
        // dead slot or shrink onto the survivors (no-op under in-place).
        runtime.on_process_loss(ctx, event->ranks);
        rebuild_preconditioner(event->ranks);
        if (!recovery.fallible()) {
          action = merge(action,
                         dispatch_recovery(scheme, ctx, view.iteration,
                                           event->ranks, view.x,
                                           "announced"));
        } else {
          // Every dispatch is an *attempt* that a nested fault can strike
          // or a timeout can void; failed attempts wait out an
          // exponential backoff of virtual time and retry.
          IndexVec pending = event->ranks;
          HookAction attempt_action = HookAction::kContinue;
          bool recovered = false;
          for (Index attempt = 1;
               attempt <= recovery.max_retries + 1 && !recovered;
               ++attempt) {
            ++report.recovery_attempts;
            obs::count(recorder, "resilience.recovery_attempts");
            if (attempt > 1) {
              ++report.recovery_retries;
              obs::count(recorder, "resilience.recovery_retries");
              cluster.advance_all(runtime.backoff_seconds(attempt - 1),
                                  Activity::kWaiting, PhaseTag::kRecover);
            }
            const Seconds attempt_start = cluster.elapsed();
            attempt_action =
                merge(attempt_action,
                      dispatch_recovery(scheme, ctx, view.iteration, pending,
                                        view.x, "announced"));
            bool struck = false;
            // Drain faults that landed inside this attempt's window.
            while (events_handled < hardening.max_nested_faults) {
              const auto nested =
                  injector.next_event(view.iteration, cluster.elapsed());
              if (!nested.has_value()) {
                break;
              }
              ++events_handled;
              ++report.nested_faults;
              obs::count(recorder, "faults");
              obs::count(recorder, "nested_faults");
              obs::mark_series_event(recorder, "fault", view.iteration,
                                     fault_detail(*nested));
              if (nested->cls == FaultClass::kProcessLoss) {
                FaultInjector::apply_corruption(*nested, part, view.x);
                FaultInjector::apply_corruption(*nested, part, view.r);
                FaultInjector::apply_corruption(*nested, part, view.p);
                for (const std::span<Real> extra : view.extra) {
                  FaultInjector::apply_corruption(*nested, part, extra);
                }
                runtime.on_process_loss(ctx, nested->ranks);
                rebuild_preconditioner(nested->ranks);
                const bool overlaps = std::any_of(
                    nested->ranks.begin(), nested->ranks.end(),
                    [&](Index rank) {
                      return std::find(pending.begin(), pending.end(),
                                       rank) != pending.end();
                    });
                if (overlaps) {
                  // The fault hit a rank mid-repair: this attempt is
                  // void, and its victims join the repair set.
                  struck = true;
                  ++report.recoveries_struck;
                  obs::count(recorder, "resilience.recoveries_struck");
                  for (const Index rank : nested->ranks) {
                    if (std::find(pending.begin(), pending.end(), rank) ==
                        pending.end()) {
                      pending.push_back(rank);
                    }
                  }
                } else {
                  // Independent loss elsewhere: repair it single-shot.
                  attempt_action =
                      merge(attempt_action,
                            dispatch_recovery(scheme, ctx, view.iteration,
                                              nested->ranks, view.x,
                                              "announced"));
                }
              } else {
                std::span<Real> target = view.x;
                if (nested->target == SdcTarget::kResidual) {
                  target = view.r;
                } else if (nested->target == SdcTarget::kDirection) {
                  target = view.p;
                }
                FaultInjector::apply_corruption(*nested, part, target);
              }
            }
            if (!struck && recovery.attempt_timeout > 0.0 &&
                cluster.elapsed() - attempt_start >
                    recovery.attempt_timeout) {
              struck = true;
              ++report.recovery_timeouts;
              obs::count(recorder, "resilience.recovery_timeouts");
            }
            recovered = !struck;
          }
          if (recovered) {
            action = merge(action, attempt_action);
          } else {
            // Retries exhausted: climb the ladder — rollback, then
            // restart from the initial guess; past the round budget the
            // run gives up with a declared failure.
            ++ladder_rounds;
            ++report.escalations;
            obs::count(recorder, "escalations");
            if (ladder_rounds > recovery.max_escalations) {
              declare_failure(view.iteration, view.x);
              return HookAction::kAbort;
            }
            obs::mark_series_event(recorder, "escalation", view.iteration,
                                   "rollback");
            bool rolled_back = false;
            {
              obs::ScopedSpan span(recorder, "escalate:rollback",
                                   PhaseTag::kRollback, obs::kClusterTrack);
              rolled_back = scheme.rollback(ctx, view.iteration, view.x);
            }
            if (!rolled_back) {
              ++report.escalations;
              obs::count(recorder, "escalations");
              obs::mark_series_event(recorder, "escalation", view.iteration,
                                     "restart");
              obs::ScopedSpan span(recorder, "escalate:restart",
                                   PhaseTag::kRollback, obs::kClusterTrack);
              std::copy(x0_copy.begin(), x0_copy.end(), view.x.begin());
            }
            action = merge(action, HookAction::kRestart);
          }
        }
        detectors.invalidate();
        recovery_happened = true;
      } else {
        // Silent corruption: damage the target state and tell no one.
        std::span<Real> target = view.x;
        if (event->target == SdcTarget::kResidual) {
          target = view.r;
        } else if (event->target == SdcTarget::kDirection) {
          target = view.p;
        }
        FaultInjector::apply_corruption(*event, part, target);
      }
    }

    // A fault storm that outruns the drain bound while a recovery
    // runtime is active is not silently dropped: give up cleanly. (Only
    // probed when the runtime is enabled, so the default path consumes
    // no extra injector state.)
    if (events_handled >= hardening.max_nested_faults &&
        recovery.enabled()) {
      const auto more =
          injector.next_event(view.iteration, cluster.elapsed());
      if (more.has_value()) {
        obs::count(recorder, "faults");
        obs::mark_series_event(recorder, "fault", view.iteration,
                               fault_detail(*more));
        declare_failure(view.iteration, view.x);
        return HookAction::kAbort;
      }
    }

    // An announced recovery that requested kRestart leaves r and p
    // NaN-poisoned until CG rebuilds them from the recovered x right
    // after this hook returns — skip detector inspection at such a
    // boundary (there is no recurrence state to inspect yet).
    const bool rebuild_pending =
        recovery_happened && action == HookAction::kRestart;
    if (!detectors.empty() && !rebuild_pending) {
      obs::ScopedSpan detect_span(recorder, "detect", PhaseTag::kDetect,
                                  obs::kClusterTrack);
      const Real rec_rel = recurrence_relative(view.r);
      const DetectionVerdict verdict =
          detectors.inspect(dctx, view.iteration, rec_rel, view.x);
      detect_span.close();
      if (verdict.flagged) {
        ++report.detections;
        obs::count(recorder, "detections");
        obs::mark_series_event(recorder, "detection", view.iteration,
                               verdict.detector);
        if (!verdict.detector.empty()) {
          obs::count(recorder, "detections." + verdict.detector);
        }
        recover_detected(verdict, view.iteration, view.x);
        detectors.invalidate();
        action = HookAction::kRestart;
        recovery_happened = true;
        // The detected recovery advanced the clock too: drain faults
        // nested inside it. SDC landing here stays in x and is caught by
        // the detectors at the next iteration boundary.
        while (events_handled < hardening.max_nested_faults) {
          const auto event = injector.next_event(view.iteration,
                                                 cluster.elapsed());
          if (!event.has_value()) {
            break;
          }
          ++events_handled;
          ++report.nested_faults;
          obs::count(recorder, "faults");
          obs::count(recorder, "nested_faults");
          if (event->cls == FaultClass::kProcessLoss) {
            FaultInjector::apply_corruption(*event, part, view.x);
            FaultInjector::apply_corruption(*event, part, view.r);
            FaultInjector::apply_corruption(*event, part, view.p);
            for (const std::span<Real> extra : view.extra) {
              FaultInjector::apply_corruption(*event, part, extra);
            }
            rebuild_preconditioner(event->ranks);
            action = merge(action,
                           dispatch_recovery(scheme, ctx, view.iteration,
                                             event->ranks, view.x,
                                             "announced"));
          } else {
            FaultInjector::apply_corruption(*event, part, view.x);
          }
        }
      }
    }
    return action;
  };

  // Flight recorder: stream the residual trajectory into the recorder's
  // series sink. The observer fires at exactly the residual_history
  // update points, so the series reproduces the history point-for-point.
  solver::CgOptions solve_options = options;
  if (recorder != nullptr && recorder->series_enabled()) {
    solver::IterationCallback chained = std::move(solve_options.observer);
    solve_options.observer =
        [recorder, chained](const solver::IterationEvent& event) {
          recorder->sample_iteration(event.iteration,
                                     event.relative_residual);
          if (chained) chained(event);
        };
  }

  {
    obs::ScopedSpan solve_span(recorder, "solve", PhaseTag::kSolve,
                               obs::kClusterTrack);
    report.cg = solver::cg_solve(a, cluster, b, x, solve_options, hook);
  }
  report.faults = injector.faults_injected();
  report.recoveries = scheme.recoveries();
  report.status = declared_failure
                      ? SolveStatus::kDeclaredFailure
                      : (report.cg.converged ? SolveStatus::kConverged
                                             : SolveStatus::kMaxIterations);
  report.spares_consumed = cluster.spares_consumed();
  report.spare_pool_dry = runtime.stats().spare_pool_dry;
  report.shrink_events = runtime.stats().shrink_events;
  report.domain_faults = injector.domain_events();
  report.fault_schedule = injector.schedule();
  report.time = cluster.elapsed();
  report.energy = cluster.total_energy();
  report.average_power = cluster.average_power();
  report.account = cluster.energy();
  report.true_relative_residual =
      sparse::residual_norm(a.global(), x, b) / (b_norm > 0.0 ? b_norm : 1.0);
  obs::set_gauge(recorder, "iterations",
                 static_cast<double>(report.cg.iterations));
  obs::set_gauge(recorder, "true_relative_residual",
                 report.true_relative_residual);
  obs::set_gauge(recorder, "converged", report.cg.converged ? 1.0 : 0.0);
  return report;
}

ResilientSolveReport resilient_solve(const dist::DistMatrix& a,
                                     simrt::VirtualCluster& cluster,
                                     std::span<const Real> b, RealVec& x,
                                     RecoveryScheme& scheme,
                                     FaultInjector& injector,
                                     const solver::CgOptions& options,
                                     const RecoveryOptions& recovery) {
  DetectorSuite no_detectors;
  return resilient_solve(a, cluster, b, x, scheme, injector, options,
                         no_detectors, HardeningOptions{}, nullptr, recovery);
}

}  // namespace rsls::resilience
