#pragma once
// System MTBF estimation by fault class (paper Fig. 1).
//
// The paper projects exascale MTBF from petascale failure data
// (Di Martino et al.'s Blue Waters study [19], Snir et al. [38]): a
// petascale machine is 20 K nodes of today's technology, an exascale
// machine 1 M nodes at 11 nm, and system MTBF for each fault class scales
// as per-node MTBF / node count, with node-level rates worsened by the
// smaller feature size. Per-node rates below are order-of-magnitude
// estimates consistent with those sources; the bench prints the resulting
// whole-system MTBF per class, which lands within an hour at exascale.

#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::model {

/// Paper §2.1 fault classes.
enum class FaultClass {
  kDce,  // detected and corrected error (soft)
  kDue,  // detected but uncorrected error (soft)
  kSdc,  // silent data corruption (soft)
  kSwo,  // system-wide outage (hard)
  kSnf,  // single node failure (hard)
  kLnf   // link and node failure (hard)
};

const char* to_string(FaultClass fault_class);
bool is_soft(FaultClass fault_class);

struct NodeTechnology {
  std::string name;
  /// Failures per node per hour, by class. SWO is machine-level and
  /// stored as failures per system per hour.
  double dce_per_node_hour;
  double due_per_node_hour;
  double sdc_per_node_hour;
  double swo_per_system_hour;
  double snf_per_node_hour;
  double lnf_per_node_hour;
};

/// Today's technology (petascale-era node).
NodeTechnology petascale_node();

/// 11 nm technology: soft-error rates degrade with feature size and
/// near-threshold operation [4, 38].
NodeTechnology exascale_node();

/// System MTBF (hours) for one fault class on `nodes` nodes.
double system_mtbf_hours(const NodeTechnology& tech, Index nodes,
                         FaultClass fault_class);

/// MTBF across all classes combined (rates add).
double combined_mtbf_hours(const NodeTechnology& tech, Index nodes);

/// All classes, in enum order (for the Fig. 1 bench).
std::vector<FaultClass> all_fault_classes();

}  // namespace rsls::model
