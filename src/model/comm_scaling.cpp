#include "model/comm_scaling.hpp"

#include <cmath>

#include "core/error.hpp"

namespace rsls::model {

CommScalingTable::CommScalingTable()
    : CommScalingTable(std::vector<Point>{{1024, 280e-6},
                                          {4096, 360e-6},
                                          {16384, 470e-6},
                                          {65536, 620e-6}}) {}

CommScalingTable::CommScalingTable(std::vector<Point> points)
    : points_(std::move(points)) {
  RSLS_CHECK_MSG(points_.size() >= 2, "need at least two scaling points");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    RSLS_CHECK(points_[i].processes >= 1);
    RSLS_CHECK(points_[i].spmv_comm > 0.0);
    if (i > 0) {
      RSLS_CHECK_MSG(points_[i].processes > points_[i - 1].processes,
                     "scaling points must be strictly increasing");
    }
  }
}

Seconds CommScalingTable::spmv_comm_seconds(Index processes) const {
  RSLS_CHECK(processes >= 1);
  const double lx = std::log2(static_cast<double>(processes));
  const auto lp = [](const Point& p) {
    return std::log2(static_cast<double>(p.processes));
  };
  // Clamped/extrapolated piecewise-linear in (log2 p, t).
  const Point* lo = &points_.front();
  const Point* hi = &points_[1];
  if (processes >= points_.back().processes) {
    lo = &points_[points_.size() - 2];
    hi = &points_.back();
  } else {
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (static_cast<double>(points_[i].processes) >=
          static_cast<double>(processes)) {
        lo = &points_[i - 1];
        hi = &points_[i];
        break;
      }
    }
  }
  const double t = (lx - lp(*lo)) / (lp(*hi) - lp(*lo));
  const Seconds value = lo->spmv_comm + t * (hi->spmv_comm - lo->spmv_comm);
  // Extrapolation below the first point could go negative; floor at a
  // fraction of the smallest measured value.
  return std::max(value, 0.25 * points_.front().spmv_comm);
}

Seconds CommScalingTable::allreduce_seconds(Index processes, Seconds latency) {
  RSLS_CHECK(processes >= 1);
  RSLS_CHECK(latency >= 0.0);
  const double stages =
      std::ceil(std::log2(static_cast<double>(std::max<Index>(processes, 2))));
  return stages * latency;
}

Seconds CommScalingTable::cg_iteration_overhead(Index processes) const {
  return spmv_comm_seconds(processes) + 2.0 * allreduce_seconds(processes);
}

}  // namespace rsls::model
