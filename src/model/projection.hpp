#pragma once
// §6 cost projection: how resilience overhead scales with system size
// under weak scaling (50 K nnz per process) and a decreasing system MTBF
// (constant per-processor MTBF of 6 K hours).
//
// Inputs are the scalars the paper measures on the 8-node cluster and
// extrapolates:
//   t_C of CR-D grows linearly with system size (shared filesystem),
//   t_C of CR-M is constant (node-local copies),
//   t_const of FW grows linearly with system size,
//   FW's extra-iteration overhead is a constant fraction of T_base,
//   P_idle = 0.45 P₁ for FW, 0.4 P₁ for CR-D.
// T_base(N) = T_solve + iterations · per-iteration T_O(N) from the comm
// scaling table. Checkpoint intervals follow Young's formula at each N.

#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "model/comm_scaling.hpp"
#include "model/cost_models.hpp"
#include "model/topology_comm.hpp"

namespace rsls::model {

struct ProjectionInputs {
  /// Fault-free solve time (compute only) of the fixed-time workload.
  Seconds t_solve = 100.0;
  /// CG iterations of the workload (for T_O accumulation).
  Index iterations = 1000;
  /// Per-core power during computation.
  Watts p1 = 8.0;

  /// Measured scaling of the per-checkpoint/reconstruction costs:
  ///   t_C(CR-D) = crd_tc_per_process · N      (shared filesystem)
  ///   t_C(CR-M) = crm_tc (constant)           (node-local copies)
  ///   t_const(FW) = fw_tconst_base + fw_tconst_per_process · N
  /// The FW base term is the local solve (constant under weak scaling);
  /// the linear term is the gather of remote values.
  Seconds crd_tc_per_process = 1e-5;
  Seconds crm_tc = 5e-3;
  Seconds fw_tconst_base = 2.0;
  Seconds fw_tconst_per_process = 2e-7;

  /// FW extra-iteration overhead as a fraction of T_base (measured avg).
  double fw_extra_fraction = 0.4;

  /// Per-processor MTBF (paper: 6 K hours).
  Seconds per_process_mtbf = 6000.0 * 3600.0;

  /// Power ratios during recovery phases (§6).
  double fw_idle_power_ratio = 0.45;
  double crd_checkpoint_power_factor = 0.4;
  double crm_checkpoint_power_factor = 0.9;

  /// ABFT/ESR scaling: the encode overhead is a local axpy (constant
  /// under weak scaling) plus the parity reduction (grows with the
  /// allreduce depth, log₂ N); the decode term is a reduction over
  /// survivors plus a tiny Vandermonde solve, also log-depth:
  ///   f_enc(N)    = abft_encode_fraction_base
  ///                   + abft_encode_fraction_per_doubling · log₂(N)
  ///   t_decode(N) = abft_tdecode_base
  ///                   + abft_tdecode_per_doubling · log₂(N)
  double abft_encode_fraction_base = 0.01;
  double abft_encode_fraction_per_doubling = 0.002;
  Seconds abft_tdecode_base = 0.5;
  Seconds abft_tdecode_per_doubling = 0.05;
  double abft_encode_power_factor = 0.9;

  CommScalingTable comm;

  /// When set, T_O(N) comes from the analytic topology-aware model below
  /// instead of the fitted table — the projection then prices the target
  /// machine's actual interconnect rather than extrapolating the 8-node
  /// cluster's measurements.
  bool use_analytic_comm = false;
  TopologyCommModel analytic_comm;

  /// Fraction of the per-iteration reduction overhead hidden by the
  /// solver variant (DESIGN.md §16): 0 models classic PCG's two exposed
  /// dependent allreduces; pipelined PCG fuses them into one launched
  /// before the SpMV, so at least half the exposed latency overlaps
  /// with compute — 0.5 is its conservative setting (full overlap
  /// would approach 1).
  double comm_hiding = 0.0;

  /// The active per-iteration overhead term (table or analytic),
  /// scaled by the solver variant's communication hiding.
  Seconds iteration_overhead(Index processes) const {
    const Seconds exposed =
        use_analytic_comm ? analytic_comm.cg_iteration_overhead(processes)
                          : comm.cg_iteration_overhead(processes);
    return (1.0 - comm_hiding) * exposed;
  }
};

struct ProjectionPoint {
  Index processes = 0;
  Seconds system_mtbf = 0.0;
  Seconds t_base = 0.0;
  SchemeCosts rd;
  SchemeCosts cr_disk;
  SchemeCosts cr_memory;
  SchemeCosts fw;
  SchemeCosts esr;
};

/// Project every scheme at each process count (Fig. 9's x-axis).
std::vector<ProjectionPoint> project(const ProjectionInputs& inputs,
                                     const IndexVec& process_counts);

/// The paper's sweep: 1 K → 1 M processes in 4× steps.
IndexVec default_process_counts();

}  // namespace rsls::model
