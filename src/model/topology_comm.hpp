#pragma once
// Analytic, topology-aware alternative to the fitted CommScalingTable
// for the §6 projection's per-iteration comm overhead T_O(N).
//
// The fitted table interpolates four measured (p, t) points and knows
// nothing about the interconnect. This model prices the same two terms
// of a CG iteration — the SpMV halo exchange and two 8-byte allreduces —
// directly on a simrt::net topology + collective, so the projection can
// ask "what if the million-core machine is a tapered fat tree?" instead
// of extrapolating flat-network measurements.

#include "core/types.hpp"
#include "core/units.hpp"
#include "simrt/net/network_config.hpp"

namespace rsls::model {

struct TopologyCommInputs {
  /// Interconnect shape and collective algorithm to price against.
  simrt::net::NetworkConfig net;

  /// Link α–β, matching MachineConfig's defaults.
  Seconds alpha = 0.1e-6;
  double beta = 10e9;  // bytes/s

  /// Per-rank SpMV halo under weak scaling: neighbour count and total
  /// halo payload stay constant as the machine grows (3-D stencil-like
  /// partitions; boundary surface per part is fixed).
  double spmv_neighbors = 6.0;
  Bytes spmv_halo_bytes = 48.0 * 1024.0;

  /// Payload of one dot-product allreduce.
  Bytes allreduce_bytes = 8.0;
};

/// Prices CG-iteration comm terms on a topology built per process count.
class TopologyCommModel {
 public:
  TopologyCommModel() = default;
  explicit TopologyCommModel(TopologyCommInputs inputs);

  const TopologyCommInputs& inputs() const { return inputs_; }

  /// Per-iteration SpMV halo time of the worst-placed rank.
  Seconds spmv_comm_seconds(Index processes) const;

  /// Slowest rank's cost of one allreduce at this machine size.
  Seconds allreduce_seconds(Index processes) const;

  /// T_O(N) = halo + 2 allreduces, the CommScalingTable counterpart.
  Seconds cg_iteration_overhead(Index processes) const;

  /// Mean hop count of the topology at this size (diagnostics/benches).
  double mean_hops(Index processes) const;

 private:
  TopologyCommInputs inputs_;
};

}  // namespace rsls::model
