#include "model/projection.hpp"

#include <cmath>

#include "core/error.hpp"
#include "model/young_daly.hpp"

namespace rsls::model {

std::vector<ProjectionPoint> project(const ProjectionInputs& inputs,
                                     const IndexVec& process_counts) {
  RSLS_CHECK(inputs.t_solve > 0.0);
  RSLS_CHECK(inputs.iterations >= 1);
  RSLS_CHECK(inputs.per_process_mtbf > 0.0);
  std::vector<ProjectionPoint> points;
  points.reserve(process_counts.size());

  for (const Index n : process_counts) {
    RSLS_CHECK(n >= 1);
    ProjectionPoint point;
    point.processes = n;
    // Constant per-processor MTBF ⇒ system MTBF decreases linearly.
    point.system_mtbf = inputs.per_process_mtbf / static_cast<double>(n);
    const PerSecond lambda = 1.0 / point.system_mtbf;

    // Fixed-time weak scaling: T_solve constant, T_O(N) from the comm
    // table accumulated over the iterations.
    point.t_base =
        inputs.t_solve + static_cast<double>(inputs.iterations) *
                             inputs.iteration_overhead(n);

    BaseCase base;
    base.t_base = point.t_base;
    base.n_cores = n;
    base.p1 = inputs.p1;

    point.rd = redundancy(base);

    {
      CrModelParams params;
      params.t_c = inputs.crd_tc_per_process * static_cast<double>(n);
      params.interval = young_interval(params.t_c, point.system_mtbf);
      params.lambda = lambda;
      params.checkpoint_power_factor = inputs.crd_checkpoint_power_factor;
      point.cr_disk = checkpoint_restart(base, params);
    }
    {
      CrModelParams params;
      params.t_c = inputs.crm_tc;
      params.interval = young_interval(params.t_c, point.system_mtbf);
      params.lambda = lambda;
      params.checkpoint_power_factor = inputs.crm_checkpoint_power_factor;
      point.cr_memory = checkpoint_restart(base, params);
    }
    {
      FwModelParams params;
      params.t_const = inputs.fw_tconst_base +
                       inputs.fw_tconst_per_process * static_cast<double>(n);
      params.extra_time_fraction = inputs.fw_extra_fraction;
      params.lambda = lambda;
      params.active_ranks = 1;
      params.idle_power = inputs.fw_idle_power_ratio * inputs.p1;
      point.fw = forward_recovery(base, params);
    }
    {
      AbftModelParams params;
      const double doublings =
          std::log2(static_cast<double>(n));
      params.encode_fraction =
          inputs.abft_encode_fraction_base +
          inputs.abft_encode_fraction_per_doubling * doublings;
      params.t_decode = inputs.abft_tdecode_base +
                        inputs.abft_tdecode_per_doubling * doublings;
      params.lambda = lambda;
      params.encode_power_factor = inputs.abft_encode_power_factor;
      point.esr = abft(base, params);
    }
    points.push_back(point);
  }
  return points;
}

IndexVec default_process_counts() {
  return {1024, 4096, 16384, 65536, 262144, 1048576};
}

}  // namespace rsls::model
