#include "model/mtbf.hpp"

#include "core/error.hpp"

namespace rsls::model {

const char* to_string(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kDce:
      return "DCE";
    case FaultClass::kDue:
      return "DUE";
    case FaultClass::kSdc:
      return "SDC";
    case FaultClass::kSwo:
      return "SWO";
    case FaultClass::kSnf:
      return "SNF";
    case FaultClass::kLnf:
      return "LNF";
  }
  return "?";
}

bool is_soft(FaultClass fault_class) {
  return fault_class == FaultClass::kDce || fault_class == FaultClass::kDue ||
         fault_class == FaultClass::kSdc;
}

NodeTechnology petascale_node() {
  // Order-of-magnitude rates from Blue Waters-era studies [19]: corrected
  // errors are frequent machine-wide, uncorrected soft errors and node
  // failures are hours-to-days apart system-wide on ~20K nodes.
  NodeTechnology tech;
  tech.name = "petascale (today's node)";
  tech.dce_per_node_hour = 2.0e-3;
  tech.due_per_node_hour = 1.2e-4;
  tech.sdc_per_node_hour = 1.5e-5;
  tech.swo_per_system_hour = 1.0 / 160.0;
  tech.snf_per_node_hour = 6.0e-6;
  tech.lnf_per_node_hour = 2.5e-6;
  return tech;
}

NodeTechnology exascale_node() {
  // 11 nm + low-voltage operation raises per-node soft-error rates
  // (≈4× for SDC/DUE, ≈2× DCE [4, 38]); hard failure rates per node are
  // held — the paper's "conservative" assumption that MTBF is only
  // affected by system size and node-level technology.
  NodeTechnology tech = petascale_node();
  tech.name = "exascale (11nm node)";
  tech.dce_per_node_hour *= 2.0;
  tech.due_per_node_hour *= 4.0;
  tech.sdc_per_node_hour *= 4.0;
  return tech;
}

double system_mtbf_hours(const NodeTechnology& tech, Index nodes,
                         FaultClass fault_class) {
  RSLS_CHECK(nodes >= 1);
  const double n = static_cast<double>(nodes);
  double rate_per_hour = 0.0;
  switch (fault_class) {
    case FaultClass::kDce:
      rate_per_hour = tech.dce_per_node_hour * n;
      break;
    case FaultClass::kDue:
      rate_per_hour = tech.due_per_node_hour * n;
      break;
    case FaultClass::kSdc:
      rate_per_hour = tech.sdc_per_node_hour * n;
      break;
    case FaultClass::kSwo:
      rate_per_hour = tech.swo_per_system_hour;
      break;
    case FaultClass::kSnf:
      rate_per_hour = tech.snf_per_node_hour * n;
      break;
    case FaultClass::kLnf:
      rate_per_hour = tech.lnf_per_node_hour * n;
      break;
  }
  RSLS_CHECK(rate_per_hour > 0.0);
  return 1.0 / rate_per_hour;
}

double combined_mtbf_hours(const NodeTechnology& tech, Index nodes) {
  double rate = 0.0;
  for (const FaultClass fc : all_fault_classes()) {
    rate += 1.0 / system_mtbf_hours(tech, nodes, fc);
  }
  return 1.0 / rate;
}

std::vector<FaultClass> all_fault_classes() {
  return {FaultClass::kDce, FaultClass::kDue, FaultClass::kSdc,
          FaultClass::kSwo, FaultClass::kSnf, FaultClass::kLnf};
}

}  // namespace rsls::model
