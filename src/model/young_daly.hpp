#pragma once
// Optimal checkpoint interval approximations.
//
// Young's first-order formula [41] and Daly's higher-order estimate [16],
// both as used by the paper (§3.2: "The optimal checkpointing interval
// I_C is a function of failure rate and commonly approximated with
// Young's and Daly's approaches"; §5.3 computes CR cadence via Young).

#include "core/units.hpp"

namespace rsls::model {

/// Young: I_C = √(2 · t_C · MTBF). Requires t_C > 0, mtbf > 0.
Seconds young_interval(Seconds checkpoint_cost, Seconds mtbf);

/// Daly's higher-order estimate:
///   I_C = √(2 t_C M) · [1 + (1/3)√(t_C / 2M) + (1/9)(t_C / 2M)] − t_C
/// for t_C < 2M, else I_C = M (Daly 2006, Eq. 20).
Seconds daly_interval(Seconds checkpoint_cost, Seconds mtbf);

}  // namespace rsls::model
