#pragma once
// Analytical time/power/energy models of paper §3.
//
// Generalized model (Eq. 1–8): a workload scaled to N cores takes
// T_N = T_solve + T_O(N) + T_res(w', N, λ), draws phase-dependent power
// (Eq. 5), and consumes E_N = P_avg · T_N (Eq. 8). The per-scheme
// refinements below give closed forms for T_res and the recovery-phase
// power:
//   CR (Eq. 9–11): T_chkpt = t_C · T_N / I_C,  T_lost = (I_C/2) · λ · T_N,
//     so T_N = T_base / (1 − t_C/I_C − λ·I_C/2).
//   RD (Eq. 12):   T_res = 0, P_{N,res} = N·P₁ (power doubles).
//   FW (Eq. 13–16): T_const = λ·T_N·t_const, T_extra measured as a
//     fraction of T_base, so T_N = T_base(1 + extra)/(1 − λ·t_const);
//     construction power is Ñ·P₁ + (N−Ñ)·P_idle (Eq. 15).

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::model {

/// Fault-free operating point the scheme models perturb.
struct BaseCase {
  /// T_solve + T_O(N): fault-free time-to-solution on N cores.
  Seconds t_base = 0.0;
  Index n_cores = 1;
  /// Per-core power during normal execution (P₁(w)).
  Watts p1 = 8.0;
};

/// A scheme's modeled costs, absolute and relative to the base case.
struct SchemeCosts {
  Seconds total_time = 0.0;
  Seconds t_res = 0.0;
  Joules total_energy = 0.0;
  Joules e_res = 0.0;
  Watts p_avg = 0.0;

  // Normalized to the fault-free case (Table 6's columns).
  double time_ratio = 1.0;    // total_time / t_base
  double t_res_ratio = 0.0;   // t_res / t_base
  double energy_ratio = 1.0;  // total_energy / e_base
  double e_res_ratio = 0.0;   // e_res / e_base
  double power_ratio = 1.0;   // p_avg / (N·P₁)

  /// True when the modeled overhead reaches 100 % — no forward progress
  /// (the paper's §6: "if MTBF continues to decrease, workload progress
  /// can possibly halt"). Times/energies are +inf in that case.
  bool halted = false;
};

/// Eq. 7: the fault-free case itself.
SchemeCosts fault_free(const BaseCase& base);

/// Eq. 12: dual redundancy — no time overhead, double power/energy.
SchemeCosts redundancy(const BaseCase& base);

struct CrModelParams {
  /// Per-checkpoint cost (measured; storage-dependent).
  Seconds t_c = 0.0;
  /// Checkpoint interval I_C (e.g. from young_interval).
  Seconds interval = 0.0;
  /// Failure rate λ.
  PerSecond lambda = 0.0;
  /// Per-fault recomputation time t_lost (Eq. 11). Negative selects the
  /// paper's a-priori approximation t_lost ≈ I_C/2; a measured value
  /// (which also captures the post-rollback re-convergence penalty)
  /// parameterizes the model the way Table 6 does for t_C/t_const.
  Seconds t_lost = -1.0;
  /// Power during checkpointing relative to N·P₁ (CPUs are under-utilized
  /// while writing; paper §3.2 / §6 uses ≈0.4 for disk).
  double checkpoint_power_factor = 0.5;
};

/// Eq. 9–11 with the implicit T_N solved in closed form. Throws if the
/// configuration cannot make progress (overheads ≥ 100 %).
SchemeCosts checkpoint_restart(const BaseCase& base,
                               const CrModelParams& params);

struct FwModelParams {
  /// Per-reconstruction cost t_const (measured).
  Seconds t_const = 0.0;
  /// T_extra as a fraction of T_base (measured average normalized
  /// extra-iteration overhead).
  double extra_time_fraction = 0.0;
  PerSecond lambda = 0.0;
  /// Ñ of Eq. 15: ranks active during construction (1 for local CG).
  Index active_ranks = 1;
  /// Per-core power of the idle/waiting ranks during construction
  /// (≈0.45·P₁ with DVFS, §6).
  Watts idle_power = 0.0;
};

/// Eq. 13–16.
SchemeCosts forward_recovery(const BaseCase& base, const FwModelParams& params);

struct AbftModelParams {
  /// Parity-maintenance (encode) overhead as a fraction of T_base: the
  /// per-iteration axpy-time update of the m parity blocks plus the
  /// parity reduction, relative to the iteration time (measured, or from
  /// the α–β model: 2·m·w flops + an m·w-real allreduce per iteration).
  double encode_fraction = 0.0;
  /// Per-fault decode cost t_decode (measured): survivor partial sums,
  /// the f×f Vandermonde solve, and the scatter of rebuilt blocks.
  Seconds t_decode = 0.0;
  /// Failure rate λ.
  PerSecond lambda = 0.0;
  /// Power during encode relative to N·P₁. Parity maintenance is a
  /// memory-bound axpy plus a reduction, slightly below compute power.
  double encode_power_factor = 0.9;
};

/// §3-style model of the ABFT/ESR family: like FW (Eq. 13–16) the solve
/// never rolls back, but reconstruction is *exact*, so the
/// extra-iteration term vanishes and the recurring cost is the encode
/// bandwidth:
///   T_N = T_base·(1 + f_enc) / (1 − λ·t_decode),
/// encode at f_pow·N·P₁, decode at N·P₁ (all ranks participate in the
/// partial-sum reduction). Halts when λ·t_decode ≥ 1.
SchemeCosts abft(const BaseCase& base, const AbftModelParams& params);

struct PrecondParams {
  /// One-time factorization/setup cost (IC(0) numeric factor, Jacobi
  /// diagonal extraction), charged before the first iteration.
  Seconds t_setup = 0.0;
  /// Per-iteration M⁻¹-apply time relative to the unpreconditioned
  /// iteration time (e.g. two triangular sweeps ≈ one SpMV → ≈0.5–1.0
  /// for IC(0); ≈0 for Jacobi).
  double apply_fraction = 0.0;
  /// Iteration-count ratio vs unpreconditioned CG (κ(M⁻¹A) < κ(A) pays
  /// for the apply work): iters_precond / iters_plain, in (0, 1] for an
  /// effective preconditioner.
  double iteration_factor = 1.0;
};

/// §3 extension for the PR's preconditioned variants: the base case's
/// T_base covers the *unpreconditioned* iteration stream, and a
/// preconditioner reshapes it as
///   T'_base = t_setup + f_iter · (1 + f_apply) · T_base,
/// i.e. fewer iterations, each carrying the extra M⁻¹ apply, after a
/// one-time setup. Setup and apply run at normal power N·P₁ (both are
/// compute/memory-bound local kernels), so E scales with T. The returned
/// BaseCase can then feed any of the per-scheme refinements above —
/// resilience overheads multiply on top of the preconditioned operating
/// point exactly as they do on the plain one.
BaseCase preconditioned(const BaseCase& base, const PrecondParams& params);

}  // namespace rsls::model
