#include "model/young_daly.hpp"

#include <cmath>

#include "core/error.hpp"

namespace rsls::model {

Seconds young_interval(Seconds checkpoint_cost, Seconds mtbf) {
  RSLS_CHECK(checkpoint_cost > 0.0);
  RSLS_CHECK(mtbf > 0.0);
  return std::sqrt(2.0 * checkpoint_cost * mtbf);
}

Seconds daly_interval(Seconds checkpoint_cost, Seconds mtbf) {
  RSLS_CHECK(checkpoint_cost > 0.0);
  RSLS_CHECK(mtbf > 0.0);
  if (checkpoint_cost >= 2.0 * mtbf) {
    return mtbf;
  }
  const double ratio = checkpoint_cost / (2.0 * mtbf);
  const double base = std::sqrt(2.0 * checkpoint_cost * mtbf);
  return base * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         checkpoint_cost;
}

}  // namespace rsls::model
