#include "model/topology_comm.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "simrt/net/interconnect.hpp"

namespace rsls::model {

TopologyCommModel::TopologyCommModel(TopologyCommInputs inputs)
    : inputs_(std::move(inputs)) {
  RSLS_CHECK(inputs_.alpha >= 0.0);
  RSLS_CHECK(inputs_.beta > 0.0);
  RSLS_CHECK(inputs_.spmv_neighbors >= 0.0);
  RSLS_CHECK(inputs_.spmv_halo_bytes >= 0.0);
  RSLS_CHECK(inputs_.allreduce_bytes >= 0.0);
}

Seconds TopologyCommModel::spmv_comm_seconds(Index processes) const {
  RSLS_CHECK(processes >= 1);
  const simrt::net::Interconnect net(inputs_.net, inputs_.alpha, inputs_.beta,
                                     processes);
  // The iteration finishes when the worst-placed rank's halo completes.
  Seconds worst = 0.0;
  for (Index r = 0; r < processes; ++r) {
    worst = std::max(
        worst,
        net.halo_seconds(r, inputs_.spmv_neighbors, inputs_.spmv_halo_bytes));
  }
  return worst;
}

Seconds TopologyCommModel::allreduce_seconds(Index processes) const {
  RSLS_CHECK(processes >= 1);
  const simrt::net::Interconnect net(inputs_.net, inputs_.alpha, inputs_.beta,
                                     processes);
  return net.allreduce_seconds(inputs_.allreduce_bytes);
}

Seconds TopologyCommModel::cg_iteration_overhead(Index processes) const {
  return spmv_comm_seconds(processes) + 2.0 * allreduce_seconds(processes);
}

double TopologyCommModel::mean_hops(Index processes) const {
  RSLS_CHECK(processes >= 1);
  const simrt::net::Interconnect net(inputs_.net, inputs_.alpha, inputs_.beta,
                                     processes);
  return net.topology().mean_hops();
}

}  // namespace rsls::model
