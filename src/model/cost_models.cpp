#include "model/cost_models.hpp"

#include <limits>

#include "core/error.hpp"

namespace rsls::model {

namespace {

/// The scheme cannot make progress: everything diverges.
SchemeCosts halted_costs() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  SchemeCosts costs;
  costs.total_time = inf;
  costs.t_res = inf;
  costs.total_energy = inf;
  costs.e_res = inf;
  costs.p_avg = 0.0;
  costs.time_ratio = inf;
  costs.t_res_ratio = inf;
  costs.energy_ratio = inf;
  costs.e_res_ratio = inf;
  costs.power_ratio = 0.0;
  costs.halted = true;
  return costs;
}

/// Fill the normalized ratios from the absolute fields.
void normalize(SchemeCosts& costs, const BaseCase& base) {
  RSLS_CHECK(base.t_base > 0.0);
  const Watts p_base = static_cast<double>(base.n_cores) * base.p1;
  const Joules e_base = p_base * base.t_base;
  costs.time_ratio = costs.total_time / base.t_base;
  costs.t_res_ratio = costs.t_res / base.t_base;
  costs.energy_ratio = costs.total_energy / e_base;
  costs.e_res_ratio = costs.e_res / e_base;
  costs.power_ratio = costs.p_avg / p_base;
}

}  // namespace

SchemeCosts fault_free(const BaseCase& base) {
  RSLS_CHECK(base.t_base > 0.0 && base.n_cores >= 1 && base.p1 > 0.0);
  SchemeCosts costs;
  costs.total_time = base.t_base;
  costs.t_res = 0.0;
  costs.p_avg = static_cast<double>(base.n_cores) * base.p1;
  costs.total_energy = costs.p_avg * costs.total_time;
  costs.e_res = 0.0;
  normalize(costs, base);
  return costs;
}

SchemeCosts redundancy(const BaseCase& base) {
  SchemeCosts costs = fault_free(base);
  // Eq. 12: the replica set adds N·P₁ for the whole run.
  costs.p_avg *= 2.0;
  costs.total_energy *= 2.0;
  costs.e_res = costs.total_energy / 2.0;
  normalize(costs, base);
  return costs;
}

SchemeCosts checkpoint_restart(const BaseCase& base,
                               const CrModelParams& params) {
  RSLS_CHECK(base.t_base > 0.0);
  RSLS_CHECK(params.t_c > 0.0);
  RSLS_CHECK(params.interval > 0.0);
  RSLS_CHECK(params.lambda >= 0.0);
  RSLS_CHECK(params.checkpoint_power_factor > 0.0 &&
             params.checkpoint_power_factor <= 1.0);

  // Eq. 9–11. With the a-priori approximation t_lost ≈ I_C/2 the lost
  // time scales with T_N (faults strike recomputation too):
  //   T_N = T_base + (t_C/I_C)·T_N + λ·(I_C/2)·T_N.
  // With a *measured* per-fault recomputation time, faults are counted
  // against the base progress period (they were measured that way):
  //   T_N = T_base·(1 + λ·t_lost) / (1 − t_C/I_C).
  const double chkpt_fraction = params.t_c / params.interval;
  double lost_fraction = 0.0;   // of T_N
  Seconds lost_base = 0.0;      // absolute, when measured
  if (params.t_lost >= 0.0) {
    lost_base = params.lambda * params.t_lost * base.t_base;
  } else {
    lost_fraction = params.lambda * params.interval / 2.0;
  }
  if (chkpt_fraction + lost_fraction >= 1.0) {
    return halted_costs();
  }
  SchemeCosts costs;
  costs.total_time =
      (base.t_base + lost_base) / (1.0 - chkpt_fraction - lost_fraction);
  costs.t_res = costs.total_time - base.t_base;

  const Seconds t_chkpt = chkpt_fraction * costs.total_time;
  const Seconds t_lost = lost_base + lost_fraction * costs.total_time;
  const Watts p_normal = static_cast<double>(base.n_cores) * base.p1;
  const Watts p_chkpt = params.checkpoint_power_factor * p_normal;
  // Recomputation runs at normal power; checkpoint phases at p_chkpt.
  costs.total_energy =
      p_normal * (base.t_base + t_lost) + p_chkpt * t_chkpt;
  costs.e_res = costs.total_energy - p_normal * base.t_base;
  costs.p_avg = costs.total_energy / costs.total_time;
  normalize(costs, base);
  return costs;
}

SchemeCosts forward_recovery(const BaseCase& base,
                             const FwModelParams& params) {
  RSLS_CHECK(base.t_base > 0.0);
  RSLS_CHECK(params.t_const >= 0.0);
  RSLS_CHECK(params.extra_time_fraction >= 0.0);
  RSLS_CHECK(params.lambda >= 0.0);
  RSLS_CHECK(params.active_ranks >= 1 &&
             params.active_ranks <= base.n_cores);
  RSLS_CHECK(params.idle_power >= 0.0);

  // T_N = T_base + T_extra + λ·T_N·t_const with T_extra = frac·T_base.
  const double const_fraction = params.lambda * params.t_const;
  if (const_fraction >= 1.0) {
    return halted_costs();
  }
  SchemeCosts costs;
  const Seconds t_extra = params.extra_time_fraction * base.t_base;
  costs.total_time = (base.t_base + t_extra) / (1.0 - const_fraction);
  costs.t_res = costs.total_time - base.t_base;
  const Seconds t_const_total = const_fraction * costs.total_time;

  const Watts p_normal = static_cast<double>(base.n_cores) * base.p1;
  // Eq. 15: Ñ cores at P₁, the rest at P_idle during construction.
  const Watts p_const =
      static_cast<double>(params.active_ranks) * base.p1 +
      static_cast<double>(base.n_cores - params.active_ranks) *
          params.idle_power;
  // Eq. 16 plus the base progress term.
  costs.total_energy =
      p_normal * (base.t_base + t_extra) + p_const * t_const_total;
  costs.e_res = costs.total_energy - p_normal * base.t_base;
  costs.p_avg = costs.total_energy / costs.total_time;
  normalize(costs, base);
  return costs;
}

SchemeCosts abft(const BaseCase& base, const AbftModelParams& params) {
  RSLS_CHECK(base.t_base > 0.0);
  RSLS_CHECK(params.encode_fraction >= 0.0);
  RSLS_CHECK(params.t_decode >= 0.0);
  RSLS_CHECK(params.lambda >= 0.0);
  RSLS_CHECK(params.encode_power_factor > 0.0 &&
             params.encode_power_factor <= 1.0);

  // T_N = T_base + T_encode + λ·T_N·t_decode, T_encode = f_enc·T_base
  // (parity maintenance accompanies base progress; exact reconstruction
  // adds no extra iterations).
  const double decode_fraction = params.lambda * params.t_decode;
  if (decode_fraction >= 1.0) {
    return halted_costs();
  }
  SchemeCosts costs;
  const Seconds t_encode = params.encode_fraction * base.t_base;
  costs.total_time = (base.t_base + t_encode) / (1.0 - decode_fraction);
  costs.t_res = costs.total_time - base.t_base;
  const Seconds t_decode_total = decode_fraction * costs.total_time;

  const Watts p_normal = static_cast<double>(base.n_cores) * base.p1;
  const Watts p_encode = params.encode_power_factor * p_normal;
  // Decode keeps every rank busy (partial sums + the leader solve), so
  // it runs at normal power; encode is memory-bound.
  costs.total_energy = p_normal * (base.t_base + t_decode_total) +
                       p_encode * t_encode;
  costs.e_res = costs.total_energy - p_normal * base.t_base;
  costs.p_avg = costs.total_energy / costs.total_time;
  normalize(costs, base);
  return costs;
}

BaseCase preconditioned(const BaseCase& base, const PrecondParams& params) {
  RSLS_CHECK(base.t_base > 0.0);
  RSLS_CHECK(params.t_setup >= 0.0);
  RSLS_CHECK(params.apply_fraction >= 0.0);
  RSLS_CHECK(params.iteration_factor > 0.0);

  BaseCase out = base;
  out.t_base = params.t_setup +
               params.iteration_factor * (1.0 + params.apply_fraction) *
                   base.t_base;
  return out;
}

}  // namespace rsls::model
