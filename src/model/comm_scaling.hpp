#pragma once
// Large-system communication scaling (§6's T_O projection).
//
// The paper projects parallel overhead using (a) measured weak-scaling
// SpMV communication times from Bienz et al. [8] — matrices with 50 K nnz
// per process, 1 K to 60 K processes — and (b) a latency-dominated model
// for vector inner products [40]. That dataset is not redistributable, so
// CommScalingTable ships a fit with the same qualitative behaviour
// (slow, roughly logarithmic growth of per-SpMV communication with
// process count) and supports substituting measured points.

#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::model {

class CommScalingTable {
 public:
  struct Point {
    Index processes = 0;
    Seconds spmv_comm = 0.0;  // per SpMV
  };

  /// Default table: node-aware SpMV at 50 K nnz/process, in the hundreds
  /// of microseconds, growing ~1.6× per 16× processes.
  CommScalingTable();

  /// Custom measured points (must be ≥ 2, strictly increasing processes).
  explicit CommScalingTable(std::vector<Point> points);

  /// Per-SpMV communication time at `processes` (log-linear interpolation,
  /// linear-in-log extrapolation beyond the table).
  Seconds spmv_comm_seconds(Index processes) const;

  /// Per-allreduce (inner product) time: stages·α with α from the
  /// machine's latency; log₂ growth per [40]'s SP2-style model.
  static Seconds allreduce_seconds(Index processes,
                                   Seconds latency = 2e-6);

  /// Per-iteration parallel overhead for CG: one SpMV exchange + two
  /// inner-product reductions.
  Seconds cg_iteration_overhead(Index processes) const;

 private:
  std::vector<Point> points_;
};

}  // namespace rsls::model
