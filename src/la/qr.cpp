#include "la/qr.hpp"

#include <cmath>

#include "core/error.hpp"
#include "la/factor.hpp"

namespace rsls::la {

Qr::Qr(const sparse::Dense& a)
    : qr_(a), tau_(static_cast<std::size_t>(a.cols()), 0.0) {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  RSLS_CHECK_MSG(m >= n, "QR requires rows >= cols");
  for (Index k = 0; k < n; ++k) {
    // Householder vector for column k: v = x ± ‖x‖ e₁ on rows [k, m).
    Real norm_sq = 0.0;
    for (Index i = k; i < m; ++i) {
      norm_sq += qr_(i, k) * qr_(i, k);
    }
    const Real norm = std::sqrt(norm_sq);
    RSLS_CHECK_MSG(norm > 0.0, "QR met a rank-deficient column");
    const Real x0 = qr_(k, k);
    const Real alpha = x0 >= 0.0 ? -norm : norm;
    // v₀ = x₀ - α; store v (scaled so v₀ = 1) below the diagonal.
    const Real v0 = x0 - alpha;
    for (Index i = k + 1; i < m; ++i) {
      qr_(i, k) /= v0;
    }
    tau_[static_cast<std::size_t>(k)] = -v0 / alpha;
    qr_(k, k) = alpha;
    // Apply H = I - τ v vᵀ to the trailing columns.
    for (Index j = k + 1; j < n; ++j) {
      Real dot_vx = qr_(k, j);
      for (Index i = k + 1; i < m; ++i) {
        dot_vx += qr_(i, k) * qr_(i, j);
      }
      const Real scale = tau_[static_cast<std::size_t>(k)] * dot_vx;
      qr_(k, j) -= scale;
      for (Index i = k + 1; i < m; ++i) {
        qr_(i, j) -= scale * qr_(i, k);
      }
    }
  }
}

void Qr::apply_q_transpose(std::span<Real> v) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  RSLS_CHECK(v.size() == static_cast<std::size_t>(m));
  for (Index k = 0; k < n; ++k) {
    Real dot_vx = v[static_cast<std::size_t>(k)];
    for (Index i = k + 1; i < m; ++i) {
      dot_vx += qr_(i, k) * v[static_cast<std::size_t>(i)];
    }
    const Real scale = tau_[static_cast<std::size_t>(k)] * dot_vx;
    v[static_cast<std::size_t>(k)] -= scale;
    for (Index i = k + 1; i < m; ++i) {
      v[static_cast<std::size_t>(i)] -= scale * qr_(i, k);
    }
  }
}

RealVec Qr::solve_least_squares(std::span<const Real> b) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  RSLS_CHECK(b.size() == static_cast<std::size_t>(m));
  RealVec work(b.begin(), b.end());
  apply_q_transpose(work);
  // Back-substitute R x = (Qᵀ b)[0:n].
  RealVec x(work.begin(), work.begin() + static_cast<std::ptrdiff_t>(n));
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) {
      sum -= qr_(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / qr_(i, i);
  }
  return x;
}

}  // namespace rsls::la
