#pragma once
// Spectrum and condition-number estimation for SPD matrices.
//
// Used by tests to verify the generators hit their conditioning targets
// and by the harness to report matrix difficulty alongside Table 3.

#include "core/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::la {

struct SpectrumEstimate {
  Real lambda_max = 0.0;
  Real lambda_min = 0.0;
  Real condition() const {
    return lambda_min > 0.0 ? lambda_max / lambda_min : 0.0;
  }
};

/// Power iteration for λ_max and shifted power iteration (on λ_max·I - A)
/// for λ_min. `iterations` trades accuracy for cost; both estimates
/// converge from below/above respectively so the condition estimate is a
/// (slight) underestimate. `kernel` selects the SpMV implementation for
/// the power steps; null means csr-scalar.
SpectrumEstimate estimate_spectrum(const sparse::Csr& a,
                                   Index iterations = 200,
                                   std::uint64_t seed = 7,
                                   const sparse::SpmvKernel* kernel = nullptr);

}  // namespace rsls::la
