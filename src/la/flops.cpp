#include "la/flops.hpp"

namespace rsls::la {

namespace {
double d(Index v) { return static_cast<double>(v); }
}  // namespace

double lu_factor_flops(Index n) { return 2.0 / 3.0 * d(n) * d(n) * d(n); }

double lu_solve_flops(Index n) { return 2.0 * d(n) * d(n); }

double cholesky_flops(Index n) { return 1.0 / 3.0 * d(n) * d(n) * d(n); }

double qr_factor_flops(Index m, Index n) {
  return 2.0 * d(n) * d(n) * (d(m) - d(n) / 3.0);
}

double qr_solve_flops(Index m, Index n) { return 4.0 * d(m) * d(n); }

double spmv_flops(Index nnz) { return 2.0 * d(nnz); }

double cg_iteration_flops(Index nnz, Index n) {
  return 2.0 * d(nnz) + 10.0 * d(n);
}

double lsi_cg_iteration_flops(Index nnz, Index m, Index n) {
  return 4.0 * d(nnz) + 10.0 * d(m) + 2.0 * d(n);
}

}  // namespace rsls::la
