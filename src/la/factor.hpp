#pragma once
// Dense factorizations: Cholesky and LU with partial pivoting.
//
// These implement the *exact* local solves of the prior-work construction
// baselines: Agullo et al. [2] recover the LI interpolation by LU-factoring
// the diagonal block A_{p_i,p_i} (paper §4.1). The factor objects own their
// data and expose solve(); sizes here are one process's block, i.e. small.

#include <span>

#include "core/types.hpp"
#include "sparse/dense.hpp"

namespace rsls::la {

/// Cholesky factorization A = L Lᵀ of an SPD matrix.
class Cholesky {
 public:
  /// Factor a dense SPD matrix; throws rsls::Error if a non-positive
  /// pivot is met (matrix not SPD to working precision).
  explicit Cholesky(const sparse::Dense& a);

  Index size() const { return l_.rows(); }

  /// Solve A x = b in place.
  void solve(std::span<Real> x) const;

  /// Lower factor (for tests).
  const sparse::Dense& lower() const { return l_; }

 private:
  sparse::Dense l_;
};

/// LU factorization with partial pivoting, P A = L U.
class Lu {
 public:
  /// Factor a square dense matrix; throws rsls::Error on singularity.
  explicit Lu(const sparse::Dense& a);

  Index size() const { return lu_.rows(); }

  /// Solve A x = b in place.
  void solve(std::span<Real> x) const;

  /// Determinant sign-sensitive magnitude estimate is not needed; expose
  /// the max |U_ii| / min |U_ii| growth ratio as a conditioning hint.
  Real pivot_ratio() const;

 private:
  sparse::Dense lu_;
  IndexVec perm_;
};

/// x := L⁻¹ x for lower-triangular L (unit_diag selects implicit 1s).
void solve_lower(const sparse::Dense& l, std::span<Real> x, bool unit_diag);

/// x := U⁻¹ x for upper-triangular U.
void solve_upper(const sparse::Dense& u, std::span<Real> x);

/// x := L⁻ᵀ x for lower-triangular L (used by Cholesky).
void solve_lower_transpose(const sparse::Dense& l, std::span<Real> x);

}  // namespace rsls::la
