#pragma once
// Dense factorizations: Cholesky and LU with partial pivoting.
//
// These implement the *exact* local solves of the prior-work construction
// baselines: Agullo et al. [2] recover the LI interpolation by LU-factoring
// the diagonal block A_{p_i,p_i} (paper §4.1). The factor objects own their
// data and expose solve(); sizes here are one process's block, i.e. small.

#include <span>

#include "core/types.hpp"
#include "sparse/dense.hpp"

namespace rsls::la {

/// Cholesky factorization A = L Lᵀ of an SPD matrix.
class Cholesky {
 public:
  /// Factor a dense SPD matrix; throws rsls::Error if a non-positive
  /// pivot is met (matrix not SPD to working precision).
  explicit Cholesky(const sparse::Dense& a);

  Index size() const { return l_.rows(); }

  /// Solve A x = b in place.
  void solve(std::span<Real> x) const;

  /// Lower factor (for tests).
  const sparse::Dense& lower() const { return l_; }

 private:
  sparse::Dense l_;
};

/// LU factorization with partial pivoting, P A = L U.
class Lu {
 public:
  /// Factor a square dense matrix; throws rsls::Error on singularity.
  explicit Lu(const sparse::Dense& a);

  Index size() const { return lu_.rows(); }

  /// Solve A x = b in place.
  void solve(std::span<Real> x) const;

  /// Determinant sign-sensitive magnitude estimate is not needed; expose
  /// the max |U_ii| / min |U_ii| growth ratio as a conditioning hint.
  Real pivot_ratio() const;

 private:
  sparse::Dense lu_;
  IndexVec perm_;
};

/// x := L⁻¹ x for lower-triangular L (unit_diag selects implicit 1s).
void solve_lower(const sparse::Dense& l, std::span<Real> x, bool unit_diag);

/// x := U⁻¹ x for upper-triangular U.
void solve_upper(const sparse::Dense& u, std::span<Real> x);

/// x := L⁻ᵀ x for lower-triangular L (used by Cholesky).
void solve_lower_transpose(const sparse::Dense& l, std::span<Real> x);

/// Incomplete Cholesky with zero fill, A ≈ L Lᵀ on the lower-triangular
/// sparsity pattern of A. This is the sparse counterpart of Cholesky
/// above, sized for one process's diagonal block: the IC(0) block
/// preconditioner factors each A_{p,p} locally and applies two sparse
/// triangular sweeps per solve. Factoring an SPD M-matrix (Laplacians,
/// the diagonally dominant roster generators) never breaks down; a
/// non-positive pivot on other input throws rsls::Error.
class IncompleteCholesky0 {
 public:
  /// Factor a block-local sparse SPD matrix (no fill beyond A's lower
  /// triangle). Throws rsls::Error on a non-positive pivot.
  explicit IncompleteCholesky0(const sparse::Csr& a);

  Index size() const { return n_; }
  /// Stored entries of L (including the diagonal).
  Index nnz() const { return static_cast<Index>(values_.size()); }

  /// z := (L Lᵀ)⁻¹ r. r and z have block-local length size().
  void solve(std::span<const Real> r, std::span<Real> z) const;

  /// Multiply–add operations the factorization performed (the charge
  /// model's setup term; data-dependent, counted exactly).
  double factor_flops() const { return factor_flops_; }
  /// Flops of one solve: two sparse triangular sweeps ≈ 4·nnz(L).
  double solve_flops() const { return 4.0 * static_cast<double>(nnz()); }

 private:
  Index n_ = 0;
  IndexVec row_ptr_;  // L in CSR, ascending columns, diagonal last
  IndexVec col_idx_;
  RealVec values_;
  double factor_flops_ = 0.0;
};

}  // namespace rsls::la
