#include "la/factor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::la {

Cholesky::Cholesky(const sparse::Dense& a) : l_(a.rows(), a.cols()) {
  RSLS_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    Real diag = a(j, j);
    for (Index k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    RSLS_CHECK_MSG(diag > 0.0, "matrix is not positive definite");
    const Real ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real sum = a(i, j);
      for (Index k = 0; k < j; ++k) {
        sum -= l_(i, k) * l_(j, k);
      }
      l_(i, j) = sum / ljj;
    }
  }
}

void Cholesky::solve(std::span<Real> x) const {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(l_.rows()));
  solve_lower(l_, x, /*unit_diag=*/false);
  solve_lower_transpose(l_, x);
}

Lu::Lu(const sparse::Dense& a) : lu_(a), perm_(static_cast<std::size_t>(a.rows())) {
  RSLS_CHECK_MSG(a.rows() == a.cols(), "LU requires a square matrix");
  const Index n = lu_.rows();
  for (Index i = 0; i < n; ++i) {
    perm_[static_cast<std::size_t>(i)] = i;
  }
  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    Index pivot = k;
    Real best = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const Real mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    RSLS_CHECK_MSG(best > 0.0, "LU pivot is zero: matrix is singular");
    if (pivot != k) {
      for (Index c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[static_cast<std::size_t>(k)],
                perm_[static_cast<std::size_t>(pivot)]);
    }
    const Real pivot_value = lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const Real factor = lu_(i, k) / pivot_value;
      lu_(i, k) = factor;
      for (Index c = k + 1; c < n; ++c) {
        lu_(i, c) -= factor * lu_(k, c);
      }
    }
  }
}

void Lu::solve(std::span<Real> x) const {
  const Index n = lu_.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  RealVec permuted(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    permuted[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
  }
  std::copy(permuted.begin(), permuted.end(), x.begin());
  solve_lower(lu_, x, /*unit_diag=*/true);
  solve_upper(lu_, x);
}

Real Lu::pivot_ratio() const {
  const Index n = lu_.rows();
  Real max_u = 0.0;
  Real min_u = std::abs(lu_(0, 0));
  for (Index i = 0; i < n; ++i) {
    const Real mag = std::abs(lu_(i, i));
    max_u = std::max(max_u, mag);
    min_u = std::min(min_u, mag);
  }
  return min_u > 0.0 ? max_u / min_u : std::numeric_limits<Real>::infinity();
}

void solve_lower(const sparse::Dense& l, std::span<Real> x, bool unit_diag) {
  const Index n = l.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = 0; j < i; ++j) {
      sum -= l(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = unit_diag ? sum : sum / l(i, i);
  }
}

void solve_upper(const sparse::Dense& u, std::span<Real> x) {
  const Index n = u.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) {
      sum -= u(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / u(i, i);
  }
}

void solve_lower_transpose(const sparse::Dense& l, std::span<Real> x) {
  const Index n = l.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) {
      sum -= l(j, i) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
}

}  // namespace rsls::la
