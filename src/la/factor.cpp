#include "la/factor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "sparse/csr.hpp"

namespace rsls::la {

Cholesky::Cholesky(const sparse::Dense& a) : l_(a.rows(), a.cols()) {
  RSLS_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    Real diag = a(j, j);
    for (Index k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    RSLS_CHECK_MSG(diag > 0.0, "matrix is not positive definite");
    const Real ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real sum = a(i, j);
      for (Index k = 0; k < j; ++k) {
        sum -= l_(i, k) * l_(j, k);
      }
      l_(i, j) = sum / ljj;
    }
  }
}

void Cholesky::solve(std::span<Real> x) const {
  RSLS_CHECK(x.size() == static_cast<std::size_t>(l_.rows()));
  solve_lower(l_, x, /*unit_diag=*/false);
  solve_lower_transpose(l_, x);
}

Lu::Lu(const sparse::Dense& a) : lu_(a), perm_(static_cast<std::size_t>(a.rows())) {
  RSLS_CHECK_MSG(a.rows() == a.cols(), "LU requires a square matrix");
  const Index n = lu_.rows();
  for (Index i = 0; i < n; ++i) {
    perm_[static_cast<std::size_t>(i)] = i;
  }
  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    Index pivot = k;
    Real best = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const Real mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    RSLS_CHECK_MSG(best > 0.0, "LU pivot is zero: matrix is singular");
    if (pivot != k) {
      for (Index c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[static_cast<std::size_t>(k)],
                perm_[static_cast<std::size_t>(pivot)]);
    }
    const Real pivot_value = lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const Real factor = lu_(i, k) / pivot_value;
      lu_(i, k) = factor;
      for (Index c = k + 1; c < n; ++c) {
        lu_(i, c) -= factor * lu_(k, c);
      }
    }
  }
}

void Lu::solve(std::span<Real> x) const {
  const Index n = lu_.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  RealVec permuted(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    permuted[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
  }
  std::copy(permuted.begin(), permuted.end(), x.begin());
  solve_lower(lu_, x, /*unit_diag=*/true);
  solve_upper(lu_, x);
}

Real Lu::pivot_ratio() const {
  const Index n = lu_.rows();
  Real max_u = 0.0;
  Real min_u = std::abs(lu_(0, 0));
  for (Index i = 0; i < n; ++i) {
    const Real mag = std::abs(lu_(i, i));
    max_u = std::max(max_u, mag);
    min_u = std::min(min_u, mag);
  }
  return min_u > 0.0 ? max_u / min_u : std::numeric_limits<Real>::infinity();
}

void solve_lower(const sparse::Dense& l, std::span<Real> x, bool unit_diag) {
  const Index n = l.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = 0; j < i; ++j) {
      sum -= l(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = unit_diag ? sum : sum / l(i, i);
  }
}

void solve_upper(const sparse::Dense& u, std::span<Real> x) {
  const Index n = u.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) {
      sum -= u(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / u(i, i);
  }
}

void solve_lower_transpose(const sparse::Dense& l, std::span<Real> x) {
  const Index n = l.rows();
  RSLS_CHECK(x.size() == static_cast<std::size_t>(n));
  for (Index i = n - 1; i >= 0; --i) {
    Real sum = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) {
      sum -= l(j, i) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
}

IncompleteCholesky0::IncompleteCholesky0(const sparse::Csr& a) {
  RSLS_CHECK_MSG(a.rows == a.cols, "IC(0) needs a square matrix");
  n_ = a.rows;
  // Lower-triangular pattern of A, columns ascending (so the diagonal is
  // each row's last stored entry).
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index i = 0; i < n_; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    bool has_diagonal = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] > i) {
        break;
      }
      col_idx_.push_back(cols[k]);
      values_.push_back(vals[k]);
      has_diagonal = has_diagonal || cols[k] == i;
    }
    RSLS_CHECK_MSG(has_diagonal, "IC(0) needs a stored diagonal");
    row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx_.size());
  }
  // Up-looking IC(0): for row i and each stored k < i,
  //   l_ik = (a_ik − Σ_j l_ij l_kj) / l_kk   over the shared prefix j < k,
  //   l_ii = sqrt(a_ii − Σ_j l_ij²).
  for (Index i = 0; i < n_; ++i) {
    const Index begin = row_ptr_[static_cast<std::size_t>(i)];
    const Index end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (Index ik = begin; ik < end; ++ik) {
      const Index k = col_idx_[static_cast<std::size_t>(ik)];
      Real sum = values_[static_cast<std::size_t>(ik)];
      const Index k_begin = row_ptr_[static_cast<std::size_t>(k)];
      const Index k_end = row_ptr_[static_cast<std::size_t>(k) + 1];
      // Sparse dot of row i's and row k's prefixes (columns < k).
      Index pi = begin;
      Index pk = k_begin;
      while (pi < ik && pk < k_end - 1) {
        const Index ci = col_idx_[static_cast<std::size_t>(pi)];
        const Index ck = col_idx_[static_cast<std::size_t>(pk)];
        if (ci == ck) {
          sum -= values_[static_cast<std::size_t>(pi)] *
                 values_[static_cast<std::size_t>(pk)];
          factor_flops_ += 2.0;
          ++pi;
          ++pk;
        } else if (ci < ck) {
          ++pi;
        } else {
          ++pk;
        }
      }
      if (k == i) {
        RSLS_CHECK_MSG(sum > 0.0,
                       "IC(0) breakdown: non-positive pivot (matrix not SPD "
                       "enough for zero fill)");
        values_[static_cast<std::size_t>(ik)] = std::sqrt(sum);
      } else {
        const Real l_kk = values_[static_cast<std::size_t>(k_end) - 1];
        values_[static_cast<std::size_t>(ik)] = sum / l_kk;
        factor_flops_ += 1.0;
      }
    }
  }
}

void IncompleteCholesky0::solve(std::span<const Real> r,
                                std::span<Real> z) const {
  RSLS_CHECK(r.size() == static_cast<std::size_t>(n_) &&
             z.size() == static_cast<std::size_t>(n_));
  // Forward sweep: L y = r (y stored in z).
  for (Index i = 0; i < n_; ++i) {
    Real sum = r[static_cast<std::size_t>(i)];
    const Index begin = row_ptr_[static_cast<std::size_t>(i)];
    const Index end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (Index k = begin; k < end - 1; ++k) {
      sum -= values_[static_cast<std::size_t>(k)] *
             z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] =
        sum / values_[static_cast<std::size_t>(end) - 1];
  }
  // Backward sweep: Lᵀ z = y, traversing L's rows in reverse and
  // scattering into the columns they touch.
  for (Index i = n_ - 1; i >= 0; --i) {
    const Index begin = row_ptr_[static_cast<std::size_t>(i)];
    const Index end = row_ptr_[static_cast<std::size_t>(i) + 1];
    const Real zi = z[static_cast<std::size_t>(i)] /
                    values_[static_cast<std::size_t>(end) - 1];
    z[static_cast<std::size_t>(i)] = zi;
    for (Index k = begin; k < end - 1; ++k) {
      z[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] -=
          values_[static_cast<std::size_t>(k)] * zi;
    }
  }
}

}  // namespace rsls::la
