#pragma once
// Householder QR and dense least squares.
//
// This is the exact construction baseline for the LSI scheme: prior work
// [2] solves min ‖β - A_{:,p_i} x‖ with a (parallel) sparse QR; we provide
// a dense Householder QR over the gathered column slice, which is exact
// and serves as the reference the paper's CG-based LSI is compared against
// (Fig. 4).

#include <span>

#include "core/types.hpp"
#include "sparse/dense.hpp"

namespace rsls::la {

/// Householder QR of an m × n matrix with m ≥ n.
class Qr {
 public:
  explicit Qr(const sparse::Dense& a);

  Index rows() const { return qr_.rows(); }
  Index cols() const { return qr_.cols(); }

  /// Least-squares solution of min ‖b - A x‖₂; b has m entries, the
  /// result has n entries.
  RealVec solve_least_squares(std::span<const Real> b) const;

  /// Apply Qᵀ to a vector of m entries, in place (for tests).
  void apply_q_transpose(std::span<Real> v) const;

 private:
  sparse::Dense qr_;   // Householder vectors below the diagonal, R above
  RealVec tau_;        // Householder coefficients
};

}  // namespace rsls::la
