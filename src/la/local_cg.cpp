#include "la/local_cg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {

LocalCgResult local_pcg(const SpdOperator& op,
                        std::span<const Real> inverse_diagonal,
                        std::span<const Real> b, std::span<Real> x,
                        const LocalCgOptions& options) {
  using sparse::axpy;
  using sparse::dot;
  using sparse::norm2;

  RSLS_CHECK(b.size() == x.size());
  RSLS_CHECK(inverse_diagonal.size() == x.size());
  RSLS_CHECK(options.tolerance > 0.0);
  const std::size_t n = b.size();

  LocalCgResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  for (const Real d : inverse_diagonal) {
    RSLS_CHECK_MSG(d > 0.0, "Jacobi preconditioner must be positive");
  }

  RealVec r(n), z(n), p(n), ap(n);
  op(x, ap);
  result.operator_applications = 1;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    z[i] = inverse_diagonal[i] * r[i];
  }
  const Real b_norm = norm2(b);
  const Real threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  Real r_norm = norm2(r);
  if (r_norm <= threshold) {
    result.converged = true;
    result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : 0.0;
    return result;
  }
  sparse::copy(z, p);
  Real rz = dot(r, z);
  for (Index k = 0; k < options.max_iterations; ++k) {
    op(p, ap);
    ++result.operator_applications;
    const Real p_ap = dot(p, ap);
    RSLS_CHECK_MSG(p_ap > 0.0, "operator is not positive definite");
    const Real alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = inverse_diagonal[i] * r[i];
    }
    const Real rz_next = dot(r, z);
    ++result.iterations;
    r_norm = norm2(r);
    if (r_norm <= threshold) {
      result.converged = true;
      break;
    }
    const Real beta = rz_next / rz;
    rz = rz_next;
    sparse::xpby(z, beta, p);
  }
  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

LocalCgResult local_cg(const SpdOperator& op, std::span<const Real> b,
                       std::span<Real> x, const LocalCgOptions& options) {
  using sparse::axpy;
  using sparse::dot;
  using sparse::norm2;
  using sparse::xpby;

  RSLS_CHECK(b.size() == x.size());
  RSLS_CHECK(options.tolerance > 0.0);
  const std::size_t n = b.size();

  LocalCgResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  RealVec r(n), p(n), ap(n);
  // r = b - Op(x)
  op(x, ap);
  result.operator_applications = 1;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
  }
  const Real b_norm = norm2(b);
  const Real threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  Real r_norm = norm2(r);
  if (r_norm <= threshold) {
    result.converged = true;
    result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : 0.0;
    return result;
  }

  sparse::copy(r, p);
  Real rr = dot(r, r);
  for (Index k = 0; k < options.max_iterations; ++k) {
    op(p, ap);
    ++result.operator_applications;
    const Real p_ap = dot(p, ap);
    RSLS_CHECK_MSG(p_ap > 0.0, "operator is not positive definite");
    const Real alpha = rr / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const Real rr_next = dot(r, r);
    ++result.iterations;
    r_norm = std::sqrt(rr_next);
    if (r_norm <= threshold) {
      result.converged = true;
      break;
    }
    const Real beta = rr_next / rr;
    rr = rr_next;
    xpby(r, beta, p);
  }
  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

}  // namespace rsls::la
