#include "la/condition.hpp"

#include <cmath>
#include <functional>
#include <span>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::la {

namespace {

using ApplyFn = std::function<void(std::span<const Real>, std::span<Real>)>;

/// Rayleigh quotient after `iterations` normalized power steps of op.
Real power_iteration(const ApplyFn& op, Index n, Index iterations, Rng& rng) {
  RealVec v(static_cast<std::size_t>(n));
  RealVec av(static_cast<std::size_t>(n));
  for (Real& value : v) {
    value = rng.uniform(-1.0, 1.0);
  }
  Real norm = sparse::norm2(v);
  RSLS_CHECK(norm > 0.0);
  sparse::scale(1.0 / norm, v);
  Real rayleigh = 0.0;
  for (Index k = 0; k < iterations; ++k) {
    op(v, av);
    rayleigh = sparse::dot(v, av);
    norm = sparse::norm2(av);
    if (norm == 0.0) {
      return 0.0;
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = av[i] / norm;
    }
  }
  return rayleigh;
}

}  // namespace

SpectrumEstimate estimate_spectrum(const sparse::Csr& a, Index iterations,
                                   std::uint64_t seed,
                                   const sparse::SpmvKernel* kernel) {
  RSLS_CHECK(a.rows == a.cols);
  RSLS_CHECK(a.rows > 0);
  Rng rng(seed);
  const auto plan = sparse::kernel_or_default(kernel).prepare(a);
  SpectrumEstimate est;
  est.lambda_max = power_iteration(
      [&plan](std::span<const Real> x, std::span<Real> y) {
        plan->spmv(x, y);
      },
      a.rows, iterations, rng);
  // λ_min(A) = λ_max(σI - A) shifted back, with σ slightly above λ_max.
  const Real sigma = est.lambda_max * 1.01;
  const Real shifted_max = power_iteration(
      [&plan, sigma](std::span<const Real> x, std::span<Real> y) {
        plan->spmv(x, y);
        for (std::size_t i = 0; i < y.size(); ++i) {
          y[i] = sigma * x[i] - y[i];
        }
      },
      a.rows, iterations, rng);
  est.lambda_min = sigma - shifted_max;
  return est;
}

}  // namespace rsls::la
