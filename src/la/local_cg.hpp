#pragma once
// Local (single-process) conjugate gradient over an abstract SPD operator.
//
// This is the paper's §4.1 contribution vehicle: the LI and LSI
// reconstructions are solved *locally and inexactly* with CG instead of
// exact LU/QR. The operator is a callback so the same driver serves
//   * LI  — y = A_{p_i,p_i} x              (one local SpMV), and
//   * LSI — y = A_{p_i,:} (A_{p_i,:}ᵀ x)   (two local SpMVs, Eq. 21).

#include <functional>
#include <span>

#include "core/types.hpp"

namespace rsls::la {

/// Applies an SPD operator: y = Op(x). x and y have the same length and
/// never alias.
using SpdOperator =
    std::function<void(std::span<const Real> x, std::span<Real> y)>;

struct LocalCgOptions {
  /// Relative residual tolerance ‖r‖/‖b‖.
  Real tolerance = 1e-8;
  Index max_iterations = 10000;
};

struct LocalCgResult {
  Index iterations = 0;
  Real relative_residual = 0.0;
  bool converged = false;
  /// Total operator applications (== iterations + 1); callers translate
  /// this into flop/time charges.
  Index operator_applications = 0;
};

/// Solve Op(x) = b starting from the provided x (commonly zero).
LocalCgResult local_cg(const SpdOperator& op, std::span<const Real> b,
                       std::span<Real> x, const LocalCgOptions& options);

/// Jacobi-preconditioned variant: `inverse_diagonal` holds 1/diag(Op).
/// Used by the LSI construction, whose normal-equations operator (Eq. 21)
/// squares the conditioning — the diagonal is cheap to form locally
/// (squared row norms of A_{p_i,:}) and recovers most of the loss.
LocalCgResult local_pcg(const SpdOperator& op,
                        std::span<const Real> inverse_diagonal,
                        std::span<const Real> b, std::span<Real> x,
                        const LocalCgOptions& options);

}  // namespace rsls::la
