#pragma once
// Floating-point operation counts for the kernels the recovery schemes
// execute. The virtual cluster charges time as flops / (rate × frequency),
// so these closed forms are the bridge between the real numerics and the
// simulated clock (DESIGN.md §6.2). Counts are the standard leading-order
// terms (Golub & Van Loan).

#include "core/types.hpp"

namespace rsls::la {

/// Dense LU with partial pivoting on an n × n block: (2/3)n³.
double lu_factor_flops(Index n);

/// Two triangular solves after LU/Cholesky: 2n².
double lu_solve_flops(Index n);

/// Dense Cholesky: (1/3)n³.
double cholesky_flops(Index n);

/// Householder QR of m × n (m ≥ n): 2n²(m - n/3).
double qr_factor_flops(Index m, Index n);

/// Least-squares solve given QR (apply Qᵀ + back-substitution): 4mn.
double qr_solve_flops(Index m, Index n);

/// One sparse mat-vec: 2·nnz.
double spmv_flops(Index nnz);

/// One CG iteration on a system with `nnz` stored entries and `n`
/// unknowns: one SpMV + 3 axpy-class updates + 2 dots ≈ 2·nnz + 10n.
double cg_iteration_flops(Index nnz, Index n);

/// One CG iteration on the LSI normal-equations operator (Eq. 21):
/// two SpMVs through the m × n row slice with `nnz` entries + vector work.
double lsi_cg_iteration_flops(Index nnz, Index m, Index n);

}  // namespace rsls::la
