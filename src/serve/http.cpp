#include "serve/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace rsls::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  const std::string lowered = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) {
      return value;
    }
  }
  return "";
}

bool read_http_request(int fd, HttpRequest& request) {
  // Read until the header terminator; whatever follows it is body.
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      return false;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::string head = buffer.substr(0, header_end);
  std::istringstream lines(head);
  std::string request_line;
  if (!std::getline(lines, request_line)) {
    return false;
  }
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  std::istringstream parts(request_line);
  std::string target;
  std::string version;
  if (!(parts >> request.method >> target >> version) ||
      version.rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  const std::size_t query_pos = target.find('?');
  request.path = target.substr(0, query_pos);
  request.query =
      query_pos == std::string::npos ? "" : target.substr(query_pos + 1);

  // Headers (names lowered; continuation lines not supported).
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    request.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                                 trim(line.substr(colon + 1)));
  }

  // Body per Content-Length (chunked request bodies are not accepted).
  std::size_t content_length = 0;
  const std::string length_text = request.header("content-length");
  if (!length_text.empty()) {
    try {
      const long long parsed = std::stoll(length_text);
      if (parsed < 0 ||
          static_cast<std::size_t>(parsed) > kMaxBodyBytes) {
        return false;
      }
      content_length = static_cast<std::size_t>(parsed);
    } catch (const std::exception&) {
      return false;
    }
  }
  request.body = buffer.substr(header_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    request.body.append(chunk, static_cast<std::size_t>(n));
  }
  request.body.resize(content_length);
  return true;
}

const char* HttpResponseWriter::status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

bool HttpResponseWriter::send_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a client that hung up must produce EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool HttpResponseWriter::respond(int status, const std::string& content_type,
                                 const std::string& body) {
  std::ostringstream head;
  head << "HTTP/1.1 " << status << ' ' << status_text(status) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  started_ = true;
  const std::string head_text = head.str();
  return send_all(head_text.data(), head_text.size()) &&
         send_all(body.data(), body.size());
}

bool HttpResponseWriter::begin_chunked(int status,
                                       const std::string& content_type) {
  std::ostringstream head;
  head << "HTTP/1.1 " << status << ' ' << status_text(status) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Transfer-Encoding: chunked\r\n"
       << "Connection: close\r\n\r\n";
  started_ = true;
  const std::string head_text = head.str();
  return send_all(head_text.data(), head_text.size());
}

bool HttpResponseWriter::send_chunk(const std::string& data) {
  if (data.empty()) {
    return true;  // an empty chunk would terminate the stream
  }
  std::ostringstream frame;
  frame << std::hex << data.size() << "\r\n" << data << "\r\n";
  const std::string text = frame.str();
  return send_all(text.data(), text.size());
}

bool HttpResponseWriter::end_chunked() { return send_all("0\r\n\r\n", 5); }

HttpServer::HttpServer(int port, HttpHandler handler)
    : handler_(std::move(handler)) {
  RSLS_CHECK_MSG(handler_ != nullptr, "HttpServer needs a handler");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RSLS_CHECK_MSG(listen_fd_ >= 0,
                 std::string("socket: ") + std::strerror(errno));
  const int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                reason);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("listen: " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

HttpServer::~HttpServer() {
  stop();
  reap_finished(/*join_all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

void HttpServer::serve_forever() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    reap_finished(/*join_all=*/false);
    auto connection = std::make_unique<Connection>();
    Connection& ref = *connection;
    ref.fd.store(fd);
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    ref.thread = std::thread([this, &ref] { handle_connection(ref); });
  }
  reap_finished(/*join_all=*/true);
}

void HttpServer::handle_connection(Connection& connection) {
  const int fd = connection.fd.load();
  HttpRequest request;
  HttpResponseWriter writer(fd);
  if (read_http_request(fd, request)) {
    try {
      handler_(request, writer);
      if (!writer.started()) {
        writer.respond(500, "application/json",
                       "{\"error\":\"handler produced no response\"}");
      }
    } catch (const std::exception& e) {
      if (!writer.started()) {
        writer.respond(
            500, "application/json",
            std::string("{\"error\":\"internal\",\"detail\":\"") + e.what() +
                "\"}");
      }
    }
  } else {
    writer.respond(400, "application/json",
                   "{\"error\":\"malformed request\"}");
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  connection.fd.store(-1);
  connection.done.store(true);
}

void HttpServer::reap_finished(bool join_all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (join_all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
  }
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Closing the listener makes the blocked accept() return; shutting
  // down live connection sockets unblocks handler reads/writes so the
  // join in serve_forever cannot hang on a slow client.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& connection : connections_) {
    const int fd = connection->fd.load();
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
}

}  // namespace rsls::serve
