#include "serve/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/error.hpp"

namespace rsls::serve {

namespace {

/// Close-on-scope-exit socket handle.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
};

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string request_text(const std::string& method, const std::string& path,
                         const std::string& body) {
  std::ostringstream os;
  os << method << ' ' << path << " HTTP/1.1\r\n"
     << "Host: 127.0.0.1\r\n"
     << "Content-Type: application/json\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

/// Read until EOF or `stop_at` bytes of head are available.
bool recv_some(int fd, std::string& buffer) {
  char chunk[4096];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n < 0 && errno == EINTR) {
    return true;
  }
  if (n <= 0) {
    return false;
  }
  buffer.append(chunk, static_cast<std::size_t>(n));
  return true;
}

struct ResponseHead {
  int status = 0;
  bool chunked = false;
  std::size_t content_length = 0;
  bool have_length = false;
  std::size_t body_start = 0;  // offset into the receive buffer
};

bool parse_head(const std::string& buffer, ResponseHead& head) {
  const std::size_t end = buffer.find("\r\n\r\n");
  if (end == std::string::npos) {
    return false;
  }
  head.body_start = end + 4;
  std::istringstream lines(buffer.substr(0, end));
  std::string status_line;
  std::getline(lines, status_line);
  std::istringstream parts(status_line);
  std::string version;
  parts >> version >> head.status;
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    std::string lowered = line;
    for (char& c : lowered) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (lowered.rfind("transfer-encoding:", 0) == 0 &&
        lowered.find("chunked") != std::string::npos) {
      head.chunked = true;
    }
    if (lowered.rfind("content-length:", 0) == 0) {
      head.content_length = static_cast<std::size_t>(
          std::stoll(line.substr(line.find(':') + 1)));
      head.have_length = true;
    }
  }
  return true;
}

}  // namespace

int Client::connect_fd() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("connect 127.0.0.1:" + std::to_string(port_) + ": " + reason);
  }
  return fd;
}

ClientResponse Client::request(const std::string& method,
                               const std::string& path,
                               const std::string& body) const {
  Fd sock{connect_fd()};
  if (!send_all(sock.fd, request_text(method, path, body))) {
    throw Error("send to daemon failed: " + std::string(std::strerror(errno)));
  }
  std::string buffer;
  ResponseHead head;
  while (!parse_head(buffer, head)) {
    if (!recv_some(sock.fd, buffer)) {
      throw Error("daemon closed the connection before a full response");
    }
  }
  // Connection: close — read to EOF, then frame by what the head said.
  while (recv_some(sock.fd, buffer)) {
  }
  ClientResponse response;
  response.status = head.status;
  std::string raw = buffer.substr(head.body_start);
  if (head.chunked) {
    // Decode chunk framing: <hex-size>\r\n<data>\r\n ... 0\r\n\r\n.
    std::string decoded;
    std::size_t pos = 0;
    while (pos < raw.size()) {
      const std::size_t line_end = raw.find("\r\n", pos);
      if (line_end == std::string::npos) {
        break;
      }
      const std::size_t size = static_cast<std::size_t>(
          std::strtoull(raw.substr(pos, line_end - pos).c_str(), nullptr, 16));
      if (size == 0) {
        break;
      }
      decoded += raw.substr(line_end + 2, size);
      pos = line_end + 2 + size + 2;
    }
    response.body = std::move(decoded);
  } else if (head.have_length) {
    raw.resize(std::min(raw.size(), head.content_length));
    response.body = std::move(raw);
  } else {
    response.body = std::move(raw);
  }
  return response;
}

std::string Client::submit(const std::string& job_json) const {
  const ClientResponse response = request("POST", "/v1/jobs", job_json);
  if (response.status != 202) {
    throw Error("submit rejected (" + std::to_string(response.status) +
                "): " + response.body);
  }
  return obs::parse_json(response.body).at("id").as_string();
}

obs::JsonValue Client::status(const std::string& id) const {
  const ClientResponse response = request("GET", "/v1/jobs/" + id);
  if (response.status != 200) {
    throw Error("status " + id + " failed (" +
                std::to_string(response.status) + "): " + response.body);
  }
  return obs::parse_json(response.body);
}

bool Client::cancel(const std::string& id) const {
  return request("POST", "/v1/jobs/" + id + "/cancel").status == 202;
}

std::string Client::stream_events(
    const std::string& id,
    const std::function<void(const std::string&)>& line) const {
  const ClientResponse response =
      request("GET", "/v1/jobs/" + id + "/events");
  if (response.status != 200) {
    throw Error("events " + id + " failed (" +
                std::to_string(response.status) + "): " + response.body);
  }
  std::string final_state;
  std::istringstream body(response.body);
  std::string one;
  while (std::getline(body, one)) {
    if (one.empty()) {
      continue;
    }
    const obs::JsonValue parsed = obs::parse_json(one);
    if (parsed.contains("state")) {
      final_state = parsed.at("state").as_string();
    } else if (line != nullptr) {
      line(one);
    }
  }
  return final_state;
}

obs::JsonValue Client::metrics() const {
  const ClientResponse response = request("GET", "/v1/metrics");
  if (response.status != 200) {
    throw Error("metrics failed (" + std::to_string(response.status) + ")");
  }
  return obs::parse_json(response.body);
}

bool Client::healthy() const {
  try {
    return request("GET", "/v1/healthz").status == 200;
  } catch (const Error&) {
    return false;
  }
}

obs::JsonValue Client::wait(const std::string& id, int poll_ms) const {
  while (true) {
    const obs::JsonValue doc = status(id);
    const std::string& state = doc.at("state").as_string();
    if (state != "queued" && state != "running") {
      return doc;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace rsls::serve
