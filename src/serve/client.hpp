#pragma once
// Client library for the solve daemon: blocking HTTP/1.1 requests over
// POSIX sockets (127.0.0.1 only), with chunked-response decoding for
// the event stream. Used by the CLI (rsls_client), the throughput
// bench, and the end-to-end tests.

#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace rsls::serve {

struct ClientResponse {
  int status = 0;
  std::string body;
};

class Client {
 public:
  explicit Client(int port) : port_(port) {}

  /// One request/response round trip (the daemon closes after each
  /// response). Throws rsls::Error on connect/IO failure; HTTP error
  /// statuses come back in the response for the caller to interpret.
  ClientResponse request(const std::string& method, const std::string& path,
                         const std::string& body = "") const;

  /// POST /v1/jobs. Returns the job id on 202; throws rsls::Error
  /// carrying the server's structured error body otherwise (the bench
  /// catches rejections and counts them via raw request()).
  std::string submit(const std::string& job_json) const;

  /// GET /v1/jobs/{id} parsed; throws on 404.
  obs::JsonValue status(const std::string& id) const;

  /// POST /v1/jobs/{id}/cancel; true when the server accepted it.
  bool cancel(const std::string& id) const;

  /// GET /v1/jobs/{id}/events — decodes the chunked stream and calls
  /// `line` once per NDJSON line as it arrives. Returns the final state
  /// from the terminating {"state": ...} line ("" if the stream broke).
  std::string stream_events(
      const std::string& id,
      const std::function<void(const std::string&)>& line = nullptr) const;

  /// GET /v1/metrics parsed.
  obs::JsonValue metrics() const;

  /// GET /v1/healthz → true on 200.
  bool healthy() const;

  /// Poll GET /v1/jobs/{id} until the job is terminal; returns the
  /// final status document. `poll_ms` is the host-time poll interval.
  obs::JsonValue wait(const std::string& id, int poll_ms = 2) const;

  int port() const { return port_; }

 private:
  int connect_fd() const;  // throws rsls::Error on failure

  int port_;
};

}  // namespace rsls::serve
