#pragma once
// Minimal HTTP/1.1 transport for the solve daemon — POSIX sockets only,
// no third-party dependencies (same spirit as the obs JSON layer).
//
// Model: a blocking accept loop hands each connection to its own worker
// thread ("thread per connection"); every connection serves exactly one
// request and closes (Connection: close), which keeps parsing trivial
// and is plenty for the target load of ~dozens of concurrent clients.
// Responses are either complete (Content-Length) or streamed with
// chunked transfer-encoding — the event stream sends one chunk per
// progress event, so a client sees iterations as they happen.
//
// The server binds 127.0.0.1 only: this is an experiment daemon, not an
// internet-facing service. Port 0 asks the kernel for an ephemeral port
// (tests and the bench read it back via port()).

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rsls::serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // decoded path, no query string
  std::string query;   // raw query string ("" when absent)
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered
  std::string body;

  /// Case-insensitive header lookup; "" when absent.
  std::string header(const std::string& name) const;
};

/// Write side of one connection. A handler must either respond() once or
/// begin_chunked() → send_chunk()* → end_chunked(). Send failures (peer
/// hung up) surface as a false return and are otherwise swallowed — a
/// vanished client must not take the daemon down.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  bool respond(int status, const std::string& content_type,
               const std::string& body);
  bool begin_chunked(int status, const std::string& content_type);
  bool send_chunk(const std::string& data);
  bool end_chunked();

  /// True once any bytes hit the socket (error handlers check this to
  /// avoid writing a second status line).
  bool started() const { return started_; }

  static const char* status_text(int status);

 private:
  bool send_all(const char* data, std::size_t size);

  int fd_;
  bool started_ = false;
};

using HttpHandler = std::function<void(const HttpRequest&, HttpResponseWriter&)>;

class HttpServer {
 public:
  /// Bind 127.0.0.1:port (0 = ephemeral) and listen. Throws rsls::Error
  /// on bind failure (port in use).
  HttpServer(int port, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Blocking accept loop; returns after stop(). Call from the owning
  /// thread (the daemon's main), or wrap in a std::thread for tests.
  void serve_forever();

  /// Close the listener and shut down active connections; wakes
  /// serve_forever. Safe from any thread and from signal-adjacent
  /// contexts (the daemon calls it after its SIGTERM flag trips).
  void stop();

 private:
  struct Connection {
    std::thread thread;
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
  };

  void handle_connection(Connection& connection);
  void reap_finished(bool join_all);

  HttpHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
};

/// Parse one HTTP request from `fd` (blocking). Returns false on a
/// malformed request or closed peer. Exposed for the client library's
/// response parsing tests.
bool read_http_request(int fd, HttpRequest& request);

}  // namespace rsls::serve
