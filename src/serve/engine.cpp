#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "sparse/ordering.hpp"

namespace rsls::serve {

namespace {

/// Thrown by the residual observer of a cancelled job; unwinds the
/// solve cleanly (no catch inside resilient_solve).
struct JobCancelledSignal {};

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

JobEngine::JobEngine(const Options& options)
    : options_(options),
      cache_(options.cache_entries),
      pool_(std::max<Index>(options.workers, 1)) {}

JobEngine::~JobEngine() {
  // Cancel everything still queued, then let running jobs finish: the
  // pool's destructor joins its workers, which reference `this`.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    paused_ = false;
    for (const auto& [key, record] : ready_) {
      (void)key;
      record->cancel_requested = true;
    }
    for (const auto& [id, record] : jobs_) {
      (void)id;
      record->cancel_requested = true;
    }
  }
  unpaused_.notify_all();
  pool_.wait_idle();
}

std::string JobEngine::submit(JobSpec spec) {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      ++rejected_;
      throw AdmissionError("draining", "server is draining; try again later");
    }
    if (queued_ >= options_.queue_depth) {
      ++rejected_;
      throw AdmissionError(
          "queue_full",
          "job queue is full (" + std::to_string(options_.queue_depth) +
              " queued); retry with backoff");
    }
    record = std::make_shared<JobRecord>();
    record->seq = next_seq_++;
    record->id = "job-" + std::to_string(record->seq);
    record->spec = std::move(spec);
    jobs_.emplace(record->id, record);
    ready_.insert({{-record->spec.priority, record->seq}, record});
    ++queued_;
    ++submitted_;
  }
  // One pull task per admitted job: the task runs whichever job is
  // highest-priority *at dispatch time*, not the one admitted with it.
  pool_.submit([this] { run_next(); });
  return record->id;
}

void JobEngine::run_next() {
  std::shared_ptr<JobRecord> record;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    unpaused_.wait(lock, [this] { return !paused_; });
    if (ready_.empty()) {
      return;  // job was cancelled out of the queue
    }
    record = ready_.begin()->second;
    ready_.erase(ready_.begin());
    --queued_;
    if (record->cancel_requested) {
      // Cancelled while queued but before the cancel path removed it.
      record->state = JobState::kCancelled;
      ++cancelled_;
      record->progress.notify_all();
      if (queued_ == 0 && running_ == 0) {
        idle_.notify_all();
      }
      return;
    }
    record->state = JobState::kRunning;
    record->dispatch_seq = next_dispatch_++;
    ++running_;
  }
  execute(record);
}

void JobEngine::execute(const std::shared_ptr<JobRecord>& record) {
  const JobSpec& spec = record->spec;
  try {
    // Build the workload (deterministic from the spec), apply the
    // requested ordering, and pull the fault-free baseline through the
    // shared artifact cache — repeat submissions of the same problem
    // skip the baseline solve entirely.
    sparse::Csr matrix = build_matrix(spec);
    std::string label = spec.matrix;
    if (spec.ordering == "rcm") {
      const IndexVec perm = sparse::rcm_ordering(matrix);
      matrix = sparse::permute_symmetric(matrix, perm);
      label += "+rcm";
    }
    const auto workload = std::make_shared<const harness::Workload>(
        harness::Workload::create(std::move(matrix), spec.config.processes,
                                  label));
    const std::string key =
        harness::ArtifactCache::key_for(*workload, spec.config, spec.ordering);
    bool built_here = false;
    const auto artifacts =
        cache_.get_or_build(key, [&workload, &spec, &built_here] {
          built_here = true;
          return harness::SolveArtifacts{
              workload, IndexVec{},
              harness::run_fault_free(*workload, spec.config)};
        });
    record->cache_hit = !built_here;

    harness::RunHooks hooks;
    hooks.observer = [this, &record](const solver::IterationEvent& event) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (record->cancel_requested) {
        throw JobCancelledSignal{};
      }
      if (record->events.size() <
          static_cast<std::size_t>(options_.max_events_per_job)) {
        record->events.push_back(
            JobEvent{event.iteration, event.relative_residual});
      } else {
        ++record->events_dropped;
      }
      ++events_streamed_;
      record->progress.notify_all();
    };
    const harness::SchemeRun run = harness::run_scheme(
        *artifacts->workload, spec.scheme, spec.config, artifacts->ff, hooks);

    if (spec.deadline_s > 0.0 && run.report.time > spec.deadline_s) {
      finish(record, JobState::kDeadlineExceeded,
             "virtual makespan " + obs::JsonWriter::number(run.report.time) +
                 "s exceeded deadline " +
                 obs::JsonWriter::number(spec.deadline_s) + "s");
      return;
    }
    if (run.report.status == resilience::SolveStatus::kDeclaredFailure) {
      finish(record, JobState::kFailed, "solver declared failure");
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      record->report = run.run_report;
    }
    finish(record, JobState::kSucceeded, "");
  } catch (const JobCancelledSignal&) {
    finish(record, JobState::kCancelled, "");
  } catch (const std::exception& e) {
    finish(record, JobState::kFailed, e.what());
  }
}

void JobEngine::finish(const std::shared_ptr<JobRecord>& record,
                       JobState state, const std::string& error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record->state = state;
    record->error = error;
    --running_;
    switch (state) {
      case JobState::kSucceeded:
        ++completed_;
        break;
      case JobState::kCancelled:
        ++cancelled_;
        break;
      case JobState::kDeadlineExceeded:
        ++deadline_exceeded_;
        break;
      default:
        ++failed_;
        break;
    }
    record->progress.notify_all();
    if (queued_ == 0 && running_ == 0) {
      idle_.notify_all();
    }
  }
}

std::optional<JobStatus> JobEngine::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  const JobRecord& record = *it->second;
  JobStatus out;
  out.id = record.id;
  out.state = record.state;
  out.error = record.error;
  out.priority = record.spec.priority;
  out.events = record.events.size() + record.events_dropped;
  out.events_dropped = record.events_dropped;
  out.dispatch_seq = record.dispatch_seq;
  out.cache_hit = record.cache_hit;
  out.report = record.report;
  return out;
}

bool JobEngine::cancel(const std::string& id) {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return false;
    }
    record = it->second;
    switch (record->state) {
      case JobState::kQueued: {
        record->cancel_requested = true;
        const auto key = std::make_pair(
            std::make_pair(-record->spec.priority, record->seq), record);
        if (ready_.erase(key) > 0) {
          --queued_;
          record->state = JobState::kCancelled;
          ++cancelled_;
          record->progress.notify_all();
          if (queued_ == 0 && running_ == 0) {
            idle_.notify_all();
          }
        }
        return true;
      }
      case JobState::kRunning:
        record->cancel_requested = true;
        return true;
      default:
        return false;  // already terminal
    }
  }
}

JobState JobEngine::stream_events(
    const std::string& id, const std::function<bool(const JobEvent&)>& sink) {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      throw Error("unknown job id " + id);
    }
    record = it->second;
  }
  std::size_t cursor = 0;
  while (true) {
    JobEvent event;
    bool have_event = false;
    bool terminal = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      record->progress.wait(lock, [&] {
        return cursor < record->events.size() ||
               (record->state != JobState::kQueued &&
                record->state != JobState::kRunning);
      });
      if (cursor < record->events.size()) {
        event = record->events[cursor];
        have_event = true;
        ++cursor;
      } else {
        terminal = true;
      }
    }
    if (have_event) {
      if (!sink(event)) {
        break;  // client hung up
      }
      continue;
    }
    if (terminal) {
      break;
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  return record->state;
}

void JobEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

void JobEngine::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

void JobEngine::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void JobEngine::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  unpaused_.notify_all();
}

obs::MetricsSnapshot JobEngine::metrics() const {
  obs::MetricsRegistry registry;
  const harness::ArtifactCache::Stats cache = cache_.stats();
  const ThreadPool::Stats pool = pool_.stats();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    registry.counter("serve.jobs.submitted")
        .add(static_cast<double>(submitted_));
    registry.counter("serve.jobs.rejected").add(static_cast<double>(rejected_));
    registry.counter("serve.jobs.completed")
        .add(static_cast<double>(completed_));
    registry.counter("serve.jobs.failed").add(static_cast<double>(failed_));
    registry.counter("serve.jobs.cancelled")
        .add(static_cast<double>(cancelled_));
    registry.counter("serve.jobs.deadline_exceeded")
        .add(static_cast<double>(deadline_exceeded_));
    registry.counter("serve.events.recorded")
        .add(static_cast<double>(events_streamed_));
    registry.gauge("serve.queue.depth").set(static_cast<double>(queued_));
    registry.gauge("serve.jobs.running").set(static_cast<double>(running_));
  }
  registry.counter("serve.cache.hits").add(static_cast<double>(cache.hits));
  registry.counter("serve.cache.misses").add(static_cast<double>(cache.misses));
  registry.counter("serve.cache.evictions")
      .add(static_cast<double>(cache.evictions));
  registry.gauge("serve.cache.entries").set(static_cast<double>(cache.entries));
  registry.counter("pool.tasks_submitted")
      .add(static_cast<double>(pool.tasks_submitted));
  registry.counter("pool.tasks_executed")
      .add(static_cast<double>(pool.tasks_executed));
  registry.counter("pool.tasks_stolen")
      .add(static_cast<double>(pool.tasks_stolen));
  registry.gauge("pool.max_queue_depth")
      .set(static_cast<double>(pool.max_queue_depth));
  return registry.snapshot();
}

}  // namespace rsls::serve
