#pragma once
// HTTP endpoint routing for the solve daemon: binds the transport
// (http.hpp) to the job engine (engine.hpp).
//
//   POST /v1/jobs              submit a job (JSON body) → 202 {"id":...}
//                              429/503 structured rejection when full /
//                              draining
//   GET  /v1/jobs/{id}         status; includes the full RunReport once
//                              the job succeeded
//   GET  /v1/jobs/{id}/events  chunked stream, one JSON line per solver
//                              progress event, then a final state line
//   POST /v1/jobs/{id}/cancel  request cancellation
//   GET  /v1/metrics           engine counters (serve.*, pool.*)
//   GET  /v1/healthz           liveness probe

#include <memory>
#include <string>

#include "serve/engine.hpp"
#include "serve/http.hpp"

namespace rsls::serve {

class SolveServer {
 public:
  /// Bind 127.0.0.1:port (0 = ephemeral; read back via port()).
  SolveServer(int port, const JobEngine::Options& options);

  int port() const { return http_.port(); }
  JobEngine& engine() { return engine_; }

  /// Blocking accept loop (the daemon's main thread lives here).
  void serve_forever() { http_.serve_forever(); }

  /// Graceful shutdown: stop admitting, finish queued + running jobs,
  /// then close the listener.
  void shutdown();

  /// Route one request — public so tests can drive the router without a
  /// socket.
  void handle(const HttpRequest& request, HttpResponseWriter& writer);

 private:
  JobEngine engine_;
  HttpServer http_;
};

/// The JSON body used for every structured error response:
/// {"error": slug, "detail": message}.
std::string error_body(const std::string& slug, const std::string& detail);

/// Serialize a metrics snapshot as {"counters": {...}, "gauges": {...}}.
std::string metrics_body(const obs::MetricsSnapshot& snapshot);

}  // namespace rsls::serve
