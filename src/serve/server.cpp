#include "serve/server.hpp"

#include <sstream>

#include "obs/run_report.hpp"

namespace rsls::serve {

namespace {

constexpr const char* kJson = "application/json";

/// "/v1/jobs/job-3/cancel" → ("job-3", "cancel"); rest is "" when the
/// path stops at the id.
bool split_job_path(const std::string& path, std::string& id,
                    std::string& rest) {
  const std::string prefix = "/v1/jobs/";
  if (path.rfind(prefix, 0) != 0) {
    return false;
  }
  const std::string tail = path.substr(prefix.size());
  const std::size_t slash = tail.find('/');
  id = tail.substr(0, slash);
  rest = slash == std::string::npos ? "" : tail.substr(slash + 1);
  return !id.empty();
}

std::string job_event_json(const JobEvent& event) {
  std::ostringstream os;
  os << "{\"iteration\":" << event.iteration
     << ",\"residual\":" << obs::JsonWriter::number(event.residual) << "}";
  return os.str();
}

std::string status_body(const JobStatus& status) {
  std::ostringstream os;
  os << "{\"id\":" << obs::JsonWriter::quote(status.id)
     << ",\"state\":" << obs::JsonWriter::quote(to_string(status.state))
     << ",\"priority\":" << status.priority
     << ",\"events\":" << status.events
     << ",\"events_dropped\":" << status.events_dropped
     << ",\"dispatch_seq\":" << status.dispatch_seq << ",\"cache_hit\":"
     << (status.cache_hit ? "true" : "false");
  if (!status.error.empty()) {
    os << ",\"error\":" << obs::JsonWriter::quote(status.error);
  }
  if (status.report != nullptr) {
    os << ",\"report\":";
    obs::write_run_report(os, *status.report);
  }
  os << "}";
  return os.str();
}

}  // namespace

std::string error_body(const std::string& slug, const std::string& detail) {
  return "{\"error\":" + obs::JsonWriter::quote(slug) +
         ",\"detail\":" + obs::JsonWriter::quote(detail) + "}";
}

std::string metrics_body(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  writer.begin_object();
  writer.begin_object("counters");
  for (const auto& [name, value] : snapshot.counters) {
    writer.field(name, value);
  }
  writer.end_object();
  writer.begin_object("gauges");
  for (const auto& [name, value] : snapshot.gauges) {
    writer.field(name, value);
  }
  writer.end_object();
  writer.end_object();
  return os.str();
}

SolveServer::SolveServer(int port, const JobEngine::Options& options)
    : engine_(options),
      http_(port, [this](const HttpRequest& request,
                         HttpResponseWriter& writer) {
        handle(request, writer);
      }) {}

void SolveServer::shutdown() {
  engine_.drain();
  http_.stop();
}

void SolveServer::handle(const HttpRequest& request,
                         HttpResponseWriter& writer) {
  const std::string& path = request.path;

  if (path == "/v1/healthz") {
    writer.respond(200, kJson, "{\"status\":\"ok\"}");
    return;
  }

  if (path == "/v1/metrics") {
    if (request.method != "GET") {
      writer.respond(405, kJson, error_body("method_not_allowed", "use GET"));
      return;
    }
    writer.respond(200, kJson, metrics_body(engine_.metrics()));
    return;
  }

  if (path == "/v1/jobs") {
    if (request.method != "POST") {
      writer.respond(405, kJson, error_body("method_not_allowed", "use POST"));
      return;
    }
    JobSpec spec;
    try {
      spec = parse_job_spec(obs::parse_json(
          request.body.empty() ? "{}" : request.body));
    } catch (const std::exception& e) {
      writer.respond(400, kJson, error_body("bad_request", e.what()));
      return;
    }
    try {
      const std::string id = engine_.submit(std::move(spec));
      writer.respond(202, kJson,
                     "{\"id\":" + obs::JsonWriter::quote(id) + "}");
    } catch (const AdmissionError& e) {
      writer.respond(e.reason == "draining" ? 503 : 429, kJson,
                     error_body(e.reason, e.what()));
    }
    return;
  }

  std::string id;
  std::string rest;
  if (split_job_path(path, id, rest)) {
    if (rest.empty()) {
      if (request.method != "GET") {
        writer.respond(405, kJson, error_body("method_not_allowed", "use GET"));
        return;
      }
      const auto status = engine_.status(id);
      if (!status.has_value()) {
        writer.respond(404, kJson, error_body("not_found", "no job " + id));
        return;
      }
      writer.respond(200, kJson, status_body(*status));
      return;
    }
    if (rest == "cancel") {
      if (request.method != "POST") {
        writer.respond(405, kJson,
                       error_body("method_not_allowed", "use POST"));
        return;
      }
      if (!engine_.status(id).has_value()) {
        writer.respond(404, kJson, error_body("not_found", "no job " + id));
        return;
      }
      const bool accepted = engine_.cancel(id);
      writer.respond(accepted ? 202 : 409, kJson,
                     accepted ? "{\"cancelling\":true}"
                              : error_body("terminal", "job already finished"));
      return;
    }
    if (rest == "events") {
      if (request.method != "GET") {
        writer.respond(405, kJson, error_body("method_not_allowed", "use GET"));
        return;
      }
      if (!engine_.status(id).has_value()) {
        writer.respond(404, kJson, error_body("not_found", "no job " + id));
        return;
      }
      if (!writer.begin_chunked(200, "application/x-ndjson")) {
        return;
      }
      const JobState final_state = engine_.stream_events(
          id, [&writer](const JobEvent& event) {
            return writer.send_chunk(job_event_json(event) + "\n");
          });
      writer.send_chunk(
          std::string("{\"state\":") +
          obs::JsonWriter::quote(to_string(final_state)) + "}\n");
      writer.end_chunked();
      return;
    }
  }

  writer.respond(404, kJson, error_body("not_found", "no route " + path));
}

}  // namespace rsls::serve
