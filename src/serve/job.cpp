#include "serve/job.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/env.hpp"
#include "core/error.hpp"
#include "simrt/net/network_config.hpp"
#include "sparse/generators.hpp"
#include "sparse/roster.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::serve {

namespace {

double number_field(const obs::JsonObject& object, const std::string& key,
                    double fallback) {
  const auto it = object.find(key);
  if (it == object.end()) {
    return fallback;
  }
  if (!it->second.is_number()) {
    throw Error("job field '" + key + "' must be a number");
  }
  return it->second.as_number();
}

Index int_field(const obs::JsonObject& object, const std::string& key,
                Index fallback) {
  const double value = number_field(object, key, static_cast<double>(fallback));
  if (value != std::floor(value)) {
    throw Error("job field '" + key + "' must be an integer");
  }
  return static_cast<Index>(value);
}

std::string string_field(const obs::JsonObject& object, const std::string& key,
                         const std::string& fallback) {
  const auto it = object.find(key);
  if (it == object.end()) {
    return fallback;
  }
  if (!it->second.is_string()) {
    throw Error("job field '" + key + "' must be a string");
  }
  return it->second.as_string();
}

bool bool_field(const obs::JsonObject& object, const std::string& key,
                bool fallback) {
  const auto it = object.find(key);
  if (it == object.end()) {
    return fallback;
  }
  if (it->second.kind() != obs::JsonValue::Kind::kBool) {
    throw Error("job field '" + key + "' must be a boolean");
  }
  return it->second.as_bool();
}

const std::set<std::string>& known_fields() {
  static const std::set<std::string> fields = {
      "matrix",        "n",
      "scheme",        "ordering",
      "priority",      "deadline_s",
      "processes",     "faults",
      "tolerance",     "max_iterations",
      "fault_seed",    "fault_domains",
      "weibull_shape", "spare_ranks",
      "recovery_retries",
      "net_topology",  "net_collective",
      "series",        "use_young_interval",
      "cr_interval",   "solver",
      "preconditioner", "spmv_kernel",
  };
  return fields;
}

bool is_generator(const std::string& name) {
  return name == "laplacian_1d" || name == "laplacian_2d" ||
         name == "laplacian_3d" || name == "banded" || name == "irregular";
}

}  // namespace

JobSpec parse_job_spec(const obs::JsonValue& body) {
  if (!body.is_object()) {
    throw Error("job body must be a JSON object");
  }
  const obs::JsonObject& object = body.as_object();
  for (const auto& [key, value] : object) {
    (void)value;
    if (known_fields().count(key) == 0) {
      throw Error("unknown job field '" + key + "'");
    }
  }

  JobSpec spec;
  spec.matrix = string_field(object, "matrix", spec.matrix);
  if (!is_generator(spec.matrix)) {
    sparse::roster_entry(spec.matrix);  // throws on unknown names
  }
  spec.n = int_field(object, "n", spec.n);
  if (spec.n < 4 || spec.n > 2'000'000) {
    throw Error("job field 'n' out of range [4, 2e6]");
  }
  spec.ordering = string_field(object, "ordering", spec.ordering);
  if (spec.ordering != "natural" && spec.ordering != "rcm") {
    throw Error("job field 'ordering' must be natural|rcm");
  }
  spec.priority = int_field(object, "priority", 0);
  spec.deadline_s = number_field(object, "deadline_s", 0.0);
  if (spec.deadline_s < 0.0) {
    throw Error("job field 'deadline_s' must be >= 0");
  }

  // Resolve every server knob env-first, then let explicit job fields
  // override — the precedence contract from the header. After this
  // block nothing downstream may consult the environment again.
  spec.scheme = string_field(object, "scheme", env::serve_scheme());
  harness::make_scheme(spec.scheme, {}, RealVec(4, 0.0));  // validate name

  harness::ExperimentConfig& config = spec.config;
  // Solver knobs: daemon env supplies the default, explicit job fields
  // override; both are validated here so an unknown name turns into a
  // structured 400 naming the roster, like the scheme field above.
  config.solver = string_field(object, "solver",
                               env::solver_name().value_or(config.solver));
  solver::solver_variant_or_throw(config.solver);  // validate name
  config.preconditioner = string_field(
      object, "preconditioner",
      env::preconditioner_name().value_or(config.preconditioner));
  solver::make_preconditioner(config.preconditioner);  // validate name
  config.spmv_kernel =
      string_field(object, "spmv_kernel",
                   env::spmv_kernel_name().value_or(config.spmv_kernel));
  sparse::spmv_kernel_or_throw(config.spmv_kernel);  // validate name
  config.processes = int_field(object, "processes", config.processes);
  if (config.processes < 1 || config.processes > 65536) {
    throw Error("job field 'processes' out of range [1, 65536]");
  }
  config.faults = int_field(object, "faults", config.faults);
  if (config.faults < 0) {
    throw Error("job field 'faults' must be >= 0");
  }
  config.tolerance = number_field(object, "tolerance", config.tolerance);
  if (!(config.tolerance > 0.0)) {
    throw Error("job field 'tolerance' must be > 0");
  }
  config.max_iterations =
      int_field(object, "max_iterations", config.max_iterations);
  config.fault_seed = static_cast<std::uint64_t>(
      int_field(object, "fault_seed", static_cast<Index>(config.fault_seed)));
  config.fault_domains =
      int_field(object, "fault_domains", env::fault_domains());
  config.weibull_shape =
      number_field(object, "weibull_shape", env::weibull_shape());
  config.recovery.spare_ranks =
      int_field(object, "spare_ranks", env::spare_ranks());
  config.recovery.max_retries =
      int_field(object, "recovery_retries", env::recovery_retries());
  if (config.recovery.spare_ranks > 0 &&
      config.recovery.policy == resilience::RecoveryPolicy::kInPlace) {
    config.recovery.policy = resilience::RecoveryPolicy::kSpare;
  }
  config.use_young_interval =
      bool_field(object, "use_young_interval", config.use_young_interval);
  config.scheme.cr_interval_iterations = int_field(
      object, "cr_interval", config.scheme.cr_interval_iterations);

  // Network: the daemon's RSLS_NET_* supply defaults; explicit job
  // fields replace them. Pinning config.network here means machine_for's
  // own env overlay never applies to this job.
  simrt::net::NetworkConfig net;
  if (const auto name = env::net_topology()) {
    if (const auto kind = simrt::net::topology_from_name(*name)) {
      net.topology = *kind;
    }
  }
  if (const auto name = env::net_collective()) {
    if (const auto kind = simrt::net::collective_from_name(*name)) {
      net.collective = *kind;
    }
  }
  if (const std::string name = string_field(object, "net_topology", "");
      !name.empty()) {
    const auto kind = simrt::net::topology_from_name(name);
    if (!kind.has_value()) {
      throw Error("job field 'net_topology' must be flat|fat-tree|torus3d");
    }
    net.topology = *kind;
  }
  if (const std::string name = string_field(object, "net_collective", "");
      !name.empty()) {
    const auto kind = simrt::net::collective_from_name(name);
    if (!kind.has_value()) {
      throw Error(
          "job field 'net_collective' must be "
          "recursive-doubling|ring|binomial-tree");
    }
    net.collective = *kind;
  }
  config.network = net;

  // Observability: resolve the env once here, then pin the result.
  config.observability = obs::resolve_from_env(config.observability);
  config.observability.series =
      bool_field(object, "series", config.observability.series);
  config.observability.per_rank = config.observability.series;
  if (config.observability.series) {
    config.observability.enabled = true;
  }
  config.observability.source = "serve";
  config.observability.keep_report = true;
  config.observability.env_resolved = true;
  config.env_overlay = false;  // env fully folded in above
  return spec;
}

sparse::Csr build_matrix(const JobSpec& spec) {
  const Index n = spec.n;
  if (spec.matrix == "laplacian_1d") {
    return sparse::laplacian_1d(n);
  }
  if (spec.matrix == "laplacian_2d") {
    return sparse::laplacian_2d(n, n);
  }
  if (spec.matrix == "laplacian_3d") {
    return sparse::laplacian_3d(n, n, n);
  }
  if (spec.matrix == "banded") {
    sparse::BandedSpdConfig config;
    config.n = n;
    config.half_bandwidth = 8;
    config.fill = 0.7;
    config.seed = 7;
    return sparse::banded_spd(config);
  }
  if (spec.matrix == "irregular") {
    sparse::IrregularSpdConfig config;
    config.n = n;
    config.seed = 7;
    return sparse::irregular_spd(config);
  }
  // Roster entries ignore `n` (each carries its calibrated size).
  return sparse::roster_entry(spec.matrix).make(quick_mode());
}

obs::JsonValue job_spec_json(const JobSpec& spec) {
  obs::JsonObject object;
  object["matrix"] = obs::JsonValue::make_string(spec.matrix);
  object["n"] = obs::JsonValue::make_number(static_cast<double>(spec.n));
  object["scheme"] = obs::JsonValue::make_string(spec.scheme);
  object["ordering"] = obs::JsonValue::make_string(spec.ordering);
  object["priority"] =
      obs::JsonValue::make_number(static_cast<double>(spec.priority));
  object["deadline_s"] = obs::JsonValue::make_number(spec.deadline_s);
  object["processes"] = obs::JsonValue::make_number(
      static_cast<double>(spec.config.processes));
  object["faults"] =
      obs::JsonValue::make_number(static_cast<double>(spec.config.faults));
  object["tolerance"] = obs::JsonValue::make_number(spec.config.tolerance);
  object["solver"] = obs::JsonValue::make_string(spec.config.solver);
  object["preconditioner"] =
      obs::JsonValue::make_string(spec.config.preconditioner);
  object["spmv_kernel"] =
      obs::JsonValue::make_string(spec.config.spmv_kernel);
  return obs::JsonValue::make_object(std::move(object));
}

}  // namespace rsls::serve
