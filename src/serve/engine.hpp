#pragma once
// The daemon's job engine: an admission-controlled priority queue of
// solve jobs running on a core::ThreadPool, with per-job progress
// streaming, cancellation, virtual-time deadlines, and the shared
// solve-artifact cache.
//
// Scheduling model: submit() enqueues the job into a ready set ordered
// by (priority desc, arrival seq asc) and hands the pool one "pull"
// task; each pull task takes the *current* highest-priority ready job,
// so a high-priority job submitted while the queue is backed up
// overtakes everything still queued. Admission is bounded on the queued
// (not running) count — past the bound submit() throws AdmissionError,
// which the HTTP layer turns into a structured 429.
//
// Cancellation rides the solver's residual observer: a cancelled job's
// observer throws out of the solve (resilient_solve holds no catch, so
// the unwind is clean and RAII restores all instrument state).
// Deadlines are priced in VIRTUAL time — queue wait costs nothing, and
// the budget is judged against the run's simulated makespan when the
// solve finishes, so the verdict is bitwise deterministic regardless of
// host load.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"

#include "core/thread_pool.hpp"
#include "harness/artifact_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/job.hpp"

namespace rsls::serve {

enum class JobState {
  kQueued,
  kRunning,
  kSucceeded,
  kFailed,            // solve error, declared failure, or non-convergence
  kCancelled,
  kDeadlineExceeded,  // virtual-time budget blown
};

const char* to_string(JobState state);

/// One solver progress sample, streamed to /v1/jobs/{id}/events.
struct JobEvent {
  Index iteration = 0;
  Real residual = 0.0;
};

/// submit() refused the job (queue full or draining). The HTTP layer
/// maps this to 429/503 with the structured body below.
struct AdmissionError : Error {
  AdmissionError(std::string reason_slug, const std::string& message)
      : Error(message), reason(std::move(reason_slug)) {}
  /// "queue_full" | "draining" — machine-readable rejection cause.
  std::string reason;
};

/// Point-in-time job view (all fields copied under the engine lock).
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  std::string error;           // terminal failure detail ("" otherwise)
  Index priority = 0;
  std::uint64_t events = 0;    // progress events recorded so far
  std::uint64_t events_dropped = 0;
  /// Order in which the job was *started* (1-based; 0 = never started).
  /// Tests use this to assert priority scheduling deterministically.
  std::uint64_t dispatch_seq = 0;
  bool cache_hit = false;      // baseline came from the artifact cache
  /// The full result, set once the job succeeded.
  std::shared_ptr<const obs::RunReport> report;
};

class JobEngine {
 public:
  struct Options {
    Index workers = 1;
    Index queue_depth = 64;
    std::size_t cache_entries = 32;
    /// Progress events retained per job. Retained-from-start: beyond the
    /// cap new events are counted in events_dropped but not stored, so
    /// the set a late subscriber replays is deterministic.
    std::size_t max_events_per_job = 4096;
  };

  explicit JobEngine(const Options& options);
  ~JobEngine();
  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Admit one job; returns its id ("job-<seq>"). Throws AdmissionError
  /// when the queued count is at queue_depth or the engine is draining.
  std::string submit(JobSpec spec);

  /// Look up a job; nullopt when the id is unknown.
  std::optional<JobStatus> status(const std::string& id) const;

  /// Request cancellation. A queued job moves to kCancelled immediately;
  /// a running job's observer throws at its next iteration. Returns
  /// false for unknown ids or jobs already terminal.
  bool cancel(const std::string& id);

  /// Stream the job's events: replays everything recorded so far, then
  /// follows live until the job is terminal or `sink` returns false
  /// (client hung up). Returns the job's final state; throws on unknown
  /// id. Blocking — call from the connection's own thread.
  JobState stream_events(const std::string& id,
                         const std::function<bool(const JobEvent&)>& sink);

  /// Stop admitting (submit throws AdmissionError "draining") and block
  /// until every queued and running job reaches a terminal state.
  void drain();

  /// Block until the engine is momentarily idle (no queued or running
  /// jobs) WITHOUT stopping admission — a test/bench barrier; drain()
  /// is the daemon's terminal shutdown.
  void wait_idle();

  /// Hold back job dispatch: running jobs finish, queued jobs stay
  /// queued until resume(). Lets tests and the bench build a
  /// deterministically full queue to probe admission control.
  void pause();
  void resume();

  /// Engine counters as a metrics snapshot: serve.jobs.* (submitted /
  /// completed / failed / cancelled / rejected / deadline_exceeded),
  /// serve.cache.* (artifact cache), serve.queue.depth gauge, and the
  /// pool.* occupancy counters.
  obs::MetricsSnapshot metrics() const;

  harness::ArtifactCache& cache() { return cache_; }

 private:
  struct JobRecord {
    std::string id;
    JobSpec spec;
    std::uint64_t seq = 0;  // arrival order (FIFO within a priority)
    JobState state = JobState::kQueued;
    std::string error;
    std::uint64_t dispatch_seq = 0;
    bool cancel_requested = false;
    bool cache_hit = false;
    std::vector<JobEvent> events;
    std::uint64_t events_dropped = 0;
    std::shared_ptr<const obs::RunReport> report;
    /// Signalled on every event append and state change.
    std::condition_variable progress;
  };

  void run_next();  // one pull task: dequeue + execute one job
  void execute(const std::shared_ptr<JobRecord>& record);
  void finish(const std::shared_ptr<JobRecord>& record, JobState state,
              const std::string& error);

  const Options options_;
  harness::ArtifactCache cache_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_;      // drain(): queued + running == 0
  std::condition_variable unpaused_;  // pause()/resume()
  std::map<std::string, std::shared_ptr<JobRecord>> jobs_;
  /// Ready queue: ordered by (-priority, seq); begin() runs next.
  std::set<std::pair<std::pair<Index, std::uint64_t>,
                     std::shared_ptr<JobRecord>>>
      ready_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_dispatch_ = 1;
  Index queued_ = 0;
  Index running_ = 0;
  bool draining_ = false;
  bool paused_ = false;

  // Monotone counters (guarded by mutex_).
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t events_streamed_ = 0;
};

}  // namespace rsls::serve
