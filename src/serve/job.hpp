#pragma once
// Job specification for the solve daemon: the JSON shape a client POSTs
// to /v1/jobs, resolved against the daemon's environment.
//
// Precedence contract (tested table-driven in serve_env_test): for every
// knob the server accepts, an explicit job field beats the daemon's
// RSLS_* environment, and the environment beats the built-in default.
// Resolution happens exactly once, here at parse time — the resulting
// ExperimentConfig carries env_overlay = false and an env_resolved
// observability block, so nothing downstream re-reads the environment
// for this job.

#include <string>

#include "harness/experiment.hpp"
#include "obs/json.hpp"

namespace rsls::serve {

struct JobSpec {
  /// Matrix family: laplacian_1d|laplacian_2d|laplacian_3d|banded|
  /// irregular or any roster name (e.g. "syn:Kuu").
  std::string matrix = "laplacian_1d";
  /// Size parameter: rows for 1D/banded/irregular, grid side for 2D/3D.
  Index n = 256;
  /// Recovery scheme (make_scheme name). Default: RSLS_SERVE_SCHEME.
  std::string scheme;
  /// Row ordering applied before partitioning: "natural" | "rcm".
  std::string ordering = "natural";
  /// Higher runs first; FIFO within a priority level.
  Index priority = 0;
  /// Virtual-time budget in simulated seconds (0 = none). Priced in
  /// virtual time: queue wait costs nothing, only the solve's simulated
  /// time counts against it, checked when the solve finishes.
  double deadline_s = 0.0;
  /// Fully resolved experiment configuration (env already folded in).
  harness::ExperimentConfig config;
};

/// Parse and resolve one job body. Throws rsls::Error with a
/// client-facing message on unknown fields of the wrong type, unknown
/// matrix/scheme/ordering names, or out-of-range sizes.
JobSpec parse_job_spec(const obs::JsonValue& body);

/// Construct the job's matrix (deterministic from the spec).
sparse::Csr build_matrix(const JobSpec& spec);

/// The JSON the daemon echoes for a job spec (diagnostics; config is
/// reported through the RunReport's own config block).
obs::JsonValue job_spec_json(const JobSpec& spec);

}  // namespace rsls::serve
