#pragma once
// Observability recorder: hierarchical virtual-time spans, the charge
// slice stream, DVFS marks, and the metrics registry — one session
// object that attaches to a VirtualCluster as a ChargeSink and is fed
// span open/close calls by the resilience layer.
//
// Span model. A span is a named interval on a *track*. Track r ≥ 0 is
// rank r and uses that rank's virtual clock; track kClusterTrack (-1) is
// the whole-run track and uses the cluster makespan. Spans on one track
// open and close LIFO (enforced), so a track renders as a properly
// nested flame graph in Perfetto: solve → detect → recover →
// reconstruct → escalate, with the raw charge slices as the finest
// level. Each span carries its PhaseTag, the scheme name in effect, and
// a free-form detail attribute.
//
// Null-safety. Instrumented code holds a `Recorder*` that is null when
// observability is off; ScopedSpan and the metric helpers accept the
// null pointer and do nothing, so the disabled cost is one branch.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "obs/metrics.hpp"
#include "obs/time_series.hpp"
#include "power/rapl.hpp"
#include "simrt/charge_sink.hpp"
#include "simrt/cluster.hpp"

namespace rsls::obs {

/// Track id of the whole-run (cluster) track.
inline constexpr Index kClusterTrack = -1;

struct SpanRecord {
  std::string name;
  Index track = kClusterTrack;
  Seconds begin = 0.0;
  Seconds end = 0.0;
  /// Nesting depth on the track at open (0 = top level).
  Index depth = 0;
  power::PhaseTag tag = power::PhaseTag::kSolve;
  /// Scheme attribute in effect when the span opened (may be empty).
  std::string scheme;
  /// Free-form attribute (e.g. "announced rank=3", "detected").
  std::string detail;
};

struct DvfsMark {
  Index rank = 0;
  Seconds time = 0.0;
  Hertz from = 0.0;
  Hertz to = 0.0;
};

class Recorder final : public simrt::ChargeSink {
 public:
  Recorder() = default;
  ~Recorder() override;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Register on the cluster's charge path and adopt its clocks as the
  /// span time source. detach() (or destruction) unregisters.
  void attach(simrt::VirtualCluster& cluster);
  void detach();
  bool attached() const { return cluster_ != nullptr; }
  const simrt::VirtualCluster* cluster() const { return cluster_; }

  /// Scheme attribute stamped on subsequently opened spans.
  void set_scheme(std::string scheme) { scheme_ = std::move(scheme); }
  const std::string& scheme() const { return scheme_; }

  // --- spans ------------------------------------------------------------
  /// Open a span on `track` at the track's current virtual time. Returns
  /// a handle for close(). Prefer ScopedSpan.
  std::size_t open_span(std::string name, power::PhaseTag tag,
                        Index track = kClusterTrack, std::string detail = "");
  /// Close the given span (must be the innermost open span on its track).
  void close_span(std::size_t handle);

  /// Closed spans in close order. Open spans are not included.
  const std::vector<SpanRecord>& spans() const { return spans_; }
  Index open_span_count() const { return open_spans_; }

  // --- charge stream ----------------------------------------------------
  void on_charge(const simrt::ChargeRecord& record) override;
  void on_dvfs_transition(Index rank, Seconds time, Hertz from,
                          Hertz to) override;

  const std::vector<simrt::ChargeRecord>& charges() const { return charges_; }
  const std::vector<DvfsMark>& dvfs_marks() const { return dvfs_marks_; }

  /// Drop the per-interval charge stream (spans/metrics keep recording);
  /// for long runs where only the span level is wanted.
  void set_record_charges(bool record) { record_charges_ = record; }

  // --- flight recorder (per-iteration time series) ----------------------
  /// Attach a TimeSeries sink. Until this is called (the default), the
  /// sampling hooks are one null check; nothing about the run changes.
  void enable_series(const SeriesOptions& options);
  bool series_enabled() const { return series_ != nullptr; }
  const TimeSeries* series() const { return series_.get(); }

  /// Record the state at one solver iteration boundary: the residual from
  /// the caller, time/energy/phase-split/comm pulled from the attached
  /// cluster. Timestamps are absolute cluster time (aligning with spans);
  /// energy and comm columns are cumulative since attach(), so a series
  /// on a long-lived hooked cluster is still per-run. Re-sampling the
  /// newest iteration replaces it (post-recovery amendment). No-op when
  /// the series sink is absent or the iteration is off the stride grid.
  void sample_iteration(Index iteration, Real relative_residual);

  /// Drop a fault/detection/recovery/escalation marker on the series at
  /// the current cluster time. No-op without a series sink.
  void mark_series_event(std::string kind, Index iteration,
                         std::string detail = "");

  /// Value-copy of the series for reports; empty-disabled snapshot when
  /// no sink was attached.
  SeriesSnapshot series_snapshot() const;

  // --- per-rank energy attribution --------------------------------------
  /// Accumulate each published charge into a rank × phase joule table.
  /// Sums to the cluster's per-phase core totals (since attach) exactly
  /// up to summation order. Default-off.
  void enable_per_rank_energy() { per_rank_enabled_ = true; }
  bool per_rank_enabled() const { return per_rank_enabled_; }
  /// rank → cumulative core joules by phase tag (replica-scaled, i.e.
  /// the same values EnergyAccount accumulated). Deterministic order.
  const std::map<Index, std::array<Joules, power::kPhaseTagCount>>&
  per_rank_core_energy() const {
    return per_rank_core_;
  }

  // --- metrics ----------------------------------------------------------
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  Seconds track_now(Index track) const;

  simrt::VirtualCluster* cluster_ = nullptr;
  std::string scheme_;
  std::vector<SpanRecord> spans_;
  // Spans currently open, per track, outermost first (value = index into
  // pending_).
  std::vector<SpanRecord> pending_;
  std::map<Index, std::vector<std::size_t>> open_by_track_;
  Index open_spans_ = 0;
  std::vector<simrt::ChargeRecord> charges_;
  std::vector<DvfsMark> dvfs_marks_;
  bool record_charges_ = true;
  MetricsRegistry metrics_;
  std::unique_ptr<TimeSeries> series_;
  bool per_rank_enabled_ = false;
  std::map<Index, std::array<Joules, power::kPhaseTagCount>> per_rank_core_;
  // Cluster state at attach(), so series/per-rank columns are per-run
  // deltas even on a long-lived hooked cluster. Zero for fresh clusters.
  Joules base_total_energy_ = 0.0;
  std::array<Joules, power::kPhaseTagCount> base_phase_energy_{};
  double base_comm_messages_ = 0.0;
  Bytes base_comm_wire_bytes_ = 0.0;
};

/// RAII span; null-safe (a null recorder makes every operation a no-op)
/// and move-only. Closes on destruction.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Recorder* recorder, std::string name, power::PhaseTag tag,
             Index track = kClusterTrack, std::string detail = "");
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Close early (idempotent).
  void close();

 private:
  Recorder* recorder_ = nullptr;
  std::size_t handle_ = 0;
};

// Null-safe metric helpers for instrumented code holding a Recorder*.
inline void count(Recorder* recorder, const std::string& name,
                  double delta = 1.0) {
  if (recorder != nullptr) {
    recorder->metrics().counter(name).add(delta);
  }
}

inline void set_gauge(Recorder* recorder, const std::string& name,
                      double value) {
  if (recorder != nullptr) {
    recorder->metrics().gauge(name).set(value);
  }
}

inline void observe(Recorder* recorder, const std::string& name,
                    std::vector<double> bounds, double value) {
  if (recorder != nullptr) {
    recorder->metrics().histogram(name, std::move(bounds)).observe(value);
  }
}

inline void sample_iteration(Recorder* recorder, Index iteration,
                             Real relative_residual) {
  if (recorder != nullptr) {
    recorder->sample_iteration(iteration, relative_residual);
  }
}

inline void mark_series_event(Recorder* recorder, const std::string& kind,
                              Index iteration, const std::string& detail = "") {
  if (recorder != nullptr) {
    recorder->mark_series_event(kind, iteration, detail);
  }
}

}  // namespace rsls::obs
