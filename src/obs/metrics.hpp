#pragma once
// Metrics registry: counters, gauges, and fixed-bucket histograms keyed
// by name. The registry is the numeric half of the observability layer
// (spans are the temporal half, src/obs/recorder.hpp): recovery
// durations, detector verdicts, DVFS transitions, residual decay — any
// scalar a bench wants to assert on lands here and flows into the
// RunReport exporter.
//
// Cost model: instruments are looked up once (string hash) and then held
// by reference; add()/set()/observe() are a few arithmetic instructions.
// Code paths that may run without observability hold a nullable
// MetricsRegistry* (or obs::Recorder*) and skip the lookup entirely, so
// the disabled cost is one pointer test.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rsls::obs {

class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

struct HistogramSnapshot;

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets; one overflow bucket catches the rest. Tracks count,
/// sum, min, and max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Add another histogram's contents bucket-wise; `other` must have
  /// identical bounds.
  void absorb(const HistogramSnapshot& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of every instrument, name-sorted (std::map order);
/// what the exporters serialize.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (node-based map storage). A histogram's bounds are fixed by
  /// the first call; later calls ignore `bounds`.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Fold another registry's snapshot into this one: counters add,
  /// gauges take the incoming value (last write wins), histograms add
  /// bucket-wise (bounds must match; a name new to this registry is
  /// adopted wholesale). This is the join half of the per-cell pattern:
  /// concurrent workers each record into a private registry and the
  /// owner merges them serially. Because gauges are last-write-wins,
  /// the merged gauge values depend on merge order — callers that want
  /// a deterministic aggregate must merge in a fixed order (e.g. cell
  /// index), not in completion order (see harness::Runner::run).
  void merge(const MetricsSnapshot& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rsls::obs
