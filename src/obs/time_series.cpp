#include "obs/time_series.hpp"

#include <cassert>
#include <utility>

namespace rsls::obs {

TimeSeries::TimeSeries(const SeriesOptions& options) : options_(options) {
  if (options_.stride < 1) options_.stride = 1;
  // Below 4 retained points decimation cannot terminate (halving keeps
  // first + last); clamp to a floor that always can.
  if (options_.max_points < 4) options_.max_points = 4;
  stride_ = options_.stride;
  points_.reserve(static_cast<std::size_t>(options_.max_points));
}

bool TimeSeries::due(Index iteration) const {
  if (iteration == 0) return true;
  if (!points_.empty() && points_.back().iteration == iteration) {
    return true;  // amendment of the newest point is always accepted
  }
  return iteration % stride_ == 0;
}

void TimeSeries::sample(const SeriesPoint& point) {
  if (!due(point.iteration)) return;
  if (!points_.empty() && points_.back().iteration == point.iteration) {
    points_.back() = point;
    refresh_rate(points_.size() - 1);
    return;
  }
  // Iterations arrive monotonically from the solver loop; a stale sample
  // (e.g. replayed after decimation changed the grid) is dropped rather
  // than splicing the middle of the buffer.
  if (!points_.empty() && point.iteration < points_.back().iteration) return;
  points_.push_back(point);
  refresh_rate(points_.size() - 1);
  if (static_cast<Index>(points_.size()) > options_.max_points) decimate();
}

void TimeSeries::add_event(SeriesEvent event) {
  if (static_cast<Index>(events_.size()) >= options_.max_points) {
    ++dropped_events_;
    return;
  }
  events_.push_back(std::move(event));
}

void TimeSeries::decimate() {
  // Keep even indices: index 0 (the initial residual) and — because the
  // overflow that triggered us made the size odd (max_points + 1 with
  // max_points even, or the clamp keeps it >= 4) — check the last point
  // explicitly and keep it regardless of parity.
  std::vector<SeriesPoint> kept;
  kept.reserve(points_.size() / 2 + 1);
  for (std::size_t i = 0; i < points_.size(); i += 2) kept.push_back(points_[i]);
  if (points_.size() % 2 == 0) kept.push_back(points_.back());
  points_ = std::move(kept);
  stride_ *= 2;
  ++decimations_;
  for (std::size_t i = 0; i < points_.size(); ++i) refresh_rate(i);
}

void TimeSeries::refresh_rate(std::size_t i) {
  assert(i < points_.size());
  SeriesPoint& p = points_[i];
  if (i == 0) {
    p.power_w = 0.0;
    return;
  }
  const SeriesPoint& prev = points_[i - 1];
  const Seconds dt = p.time_s - prev.time_s;
  p.power_w = dt > 0.0 ? (p.energy_j - prev.energy_j) / dt : 0.0;
}

SeriesSnapshot TimeSeries::snapshot() const {
  SeriesSnapshot snap;
  snap.enabled = true;
  snap.stride = stride_;
  snap.max_points = options_.max_points;
  snap.decimations = decimations_;
  snap.dropped_events = dropped_events_;
  snap.points = points_;
  snap.events = events_;
  return snap;
}

}  // namespace rsls::obs
