#pragma once
// Standardized machine-readable run record: one JSON object per run,
// appended as a JSONL line. Every bench and harness::run_scheme emit
// this alongside their human tables, so a run's claims (time/energy
// ratios, per-phase E_res splits, detector activity) are verifiable from
// structured artifacts.
//
// Schema (schema_version 1):
//   {"schema_version":1, "source":..., "matrix":..., "scheme":...,
//    "config":{str:str},                 — experiment configuration
//    "results":{str:num},                — scalar outcomes
//    "energy":{"phases":{tag:J}, "node_constant":J, "core_sleep":J,
//              "total":J},               — phases+constant+sleep == total
//    "metrics":{"counters":{...}, "gauges":{...}, "histograms":[...]},
//    "fault_schedule":[{"time_s":..,"iteration":..,"ranks":[..],
//                       "class":..,"corruption_seed":..,
//                       "domain_event":..}, ...]}   — omitted when empty
//
// schema_version 2 adds two blocks, each omitted when absent (a report
// without them is still written — and parses — as version 1):
//   "energy".."per_rank":[{"rank":r,"phases":{tag:J},"total":J}, ...]
//       — per-rank core-energy attribution; summed over ranks it equals
//         the phases block to 1e-9 relative
//   "series":{"stride":n,"max_points":n,"decimations":n,
//             "dropped_events":n,
//             "points":[{"iteration":k,"time_s":t,"relative_residual":ρ,
//                        "energy_j":E,"power_w":P,"comm_messages":m,
//                        "comm_wire_bytes":B,"phases":{tag:J}}, ...],
//             "events":[{"kind":..,"iteration":..,"time_s":..,
//                        "detail":..}, ...]}
//       — the flight recorder's per-iteration trajectory (cumulative
//         columns; see obs/time_series.hpp)
//
// The energy block is written with round-trip double precision so
// sum(phases) + node_constant + core_sleep == total holds to 1e-9
// relative after a parse round-trip.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "obs/metrics.hpp"
#include "obs/time_series.hpp"

namespace rsls::obs {

/// One realized fault, flattened for the report (obs stays neutral of
/// the resilience layer's types; the harness converts FaultRecord into
/// this). The entry carries everything FaultInjector::from_schedule
/// needs for an exact replay.
struct FaultScheduleEntry {
  double time_s = 0.0;
  double iteration = 0.0;
  IndexVec ranks;
  /// "process-loss" or "sdc".
  std::string fault_class;
  std::uint64_t corruption_seed = 0;
  bool domain_event = false;
};

/// One rank's core-energy attribution (replica-scaled joules by phase
/// name, zero phases omitted by the harness).
struct RankEnergy {
  Index rank = 0;
  std::vector<std::pair<std::string, Joules>> phase_core_energy;
  /// Sum of this rank's phases (precomputed so readers need no fp sum).
  Joules total = 0.0;
};

struct RunReport {
  /// Effective version is bumped to 2 by the writer when a v2-only block
  /// (series, per_rank) is present; leave at 1 otherwise.
  int schema_version = 1;
  /// Producing binary or harness entry point.
  std::string source;
  std::string matrix;
  std::string scheme;
  /// Ordered configuration snapshot (stringly, for the config block).
  std::vector<std::pair<std::string, std::string>> config;
  /// Ordered scalar results (iterations, time_s, energy_j, ratios, …).
  std::vector<std::pair<std::string, double>> results;
  /// Core energy per phase tag (replica-scaled), name → joules.
  std::vector<std::pair<std::string, Joules>> phase_core_energy;
  Joules node_constant_energy = 0.0;
  Joules sleep_energy = 0.0;
  /// Must equal sum(phase) + node_constant + sleep (the writer does not
  /// recompute it; exporters assert in tests).
  Joules total_energy = 0.0;
  MetricsSnapshot metrics;
  /// Realized fault schedule; an empty vector keeps the report line
  /// byte-identical to schema-version-1 output (the key is omitted).
  std::vector<FaultScheduleEntry> fault_schedule;
  /// Per-rank energy attribution (schema_version 2); empty = omitted.
  std::vector<RankEnergy> per_rank;
  /// Flight-recorder series (schema_version 2); disabled/empty = omitted.
  SeriesSnapshot series;
};

/// One JSONL line (object + '\n').
void write_run_report(std::ostream& os, const RunReport& report);

/// Append one line to `path`, creating the file if needed.
void append_run_report(const std::string& path, const RunReport& report);

}  // namespace rsls::obs
