#pragma once
// Solver flight recorder: a bounded per-iteration time series of one
// resilient solve — residual trajectory, cumulative energy by phase,
// instantaneous power, interconnect traffic, and fault/detect/recover
// event markers over virtual time (the paper's Fig. 6 residual curves
// and Fig. 7a power profiles as one machine-readable artifact).
//
// Memory model. The recorder must survive million-iteration runs with
// fixed memory, so it samples every `stride`-th iteration and, when the
// retained buffer would exceed `max_points`, decimates: every second
// retained point is dropped and the stride doubles. The decimation is
// deterministic (no RNG), keeps the first and newest points, and
// preserves the cumulative columns exactly — derived rates (power) are
// recomputed against each point's new predecessor, so the series stays
// self-consistent at any resolution. Event markers are bounded
// separately: past `max_points` events the newest are dropped and
// counted, never silently.
//
// Points carry *cumulative* totals (energy, comm traffic) so that any
// two retained points bracket an interval exactly, whatever was dropped
// between them; per-interval deltas and rates are derived views.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/rapl.hpp"

namespace rsls::obs {

struct SeriesOptions {
  /// Sample every `stride`-th iteration (iteration % stride == 0);
  /// iteration 0 (the initial residual) is always eligible.
  Index stride = 1;
  /// Retained-point bound; reaching it halves the buffer and doubles the
  /// stride. Also bounds the retained event markers.
  Index max_points = 4096;
};

/// One retained sample. All totals are cumulative since the start of the
/// run; `power_w` is the derived mean power since the previous retained
/// point (0 for the first point).
struct SeriesPoint {
  Index iteration = 0;
  Seconds time_s = 0.0;
  Real relative_residual = 0.0;
  /// Cluster total energy (cores + uncore/DRAM + sleep, replica-scaled).
  Joules energy_j = 0.0;
  Watts power_w = 0.0;
  double comm_messages = 0.0;
  Bytes comm_wire_bytes = 0.0;
  /// Cumulative core energy per phase tag (replica-scaled).
  std::array<Joules, power::kPhaseTagCount> phase_energy_j{};
};

/// One fault/detection/recovery/escalation marker on the series.
struct SeriesEvent {
  std::string kind;  // "fault" | "detection" | "recovery" | "escalation"
  Index iteration = 0;
  Seconds time_s = 0.0;
  std::string detail;
};

/// Value-copy of a finished series, what SchemeRun and the RunReport
/// carry. Empty (no points, not enabled) when the recorder ran without a
/// series sink.
struct SeriesSnapshot {
  bool enabled = false;
  /// Stride actually in effect at the end of the run (>= the configured
  /// stride after decimations).
  Index stride = 1;
  Index max_points = 0;
  Index decimations = 0;
  std::uint64_t dropped_events = 0;
  std::vector<SeriesPoint> points;
  std::vector<SeriesEvent> events;

  bool empty() const { return points.empty() && events.empty(); }
};

class TimeSeries {
 public:
  explicit TimeSeries(const SeriesOptions& options);

  /// Whether `iteration` lands on the current sampling grid. Callers may
  /// skip assembling a point when false; sample() re-checks.
  bool due(Index iteration) const;

  /// Record `point` if it is due. A point for the same iteration as the
  /// newest retained one *replaces* it (post-recovery amendment: the
  /// solver re-reports an iteration after a restart rebuilt its state).
  void sample(const SeriesPoint& point);

  /// Append an event marker; bounded by max_points (newest dropped and
  /// counted beyond it).
  void add_event(SeriesEvent event);

  const std::vector<SeriesPoint>& points() const { return points_; }
  const std::vector<SeriesEvent>& events() const { return events_; }
  /// Stride currently in effect (doubles on each decimation).
  Index stride() const { return stride_; }
  Index decimations() const { return decimations_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  SeriesSnapshot snapshot() const;

 private:
  /// Halve the retained buffer (keep even indices), double the stride,
  /// and recompute the derived rate columns.
  void decimate();
  /// power_w of points_[i] from its predecessor's cumulative columns.
  void refresh_rate(std::size_t i);

  SeriesOptions options_;
  Index stride_ = 1;
  Index decimations_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::vector<SeriesPoint> points_;
  std::vector<SeriesEvent> events_;
};

}  // namespace rsls::obs
