#pragma once
// Observability configuration: what a harness run should record and
// where the artifacts go. Benches set this on ExperimentConfig; the
// environment can switch it on for ANY binary that reaches
// harness::run_scheme_on_cluster without touching its flags:
//
//   RSLS_TRACE_DIR=dir    — write one Chrome trace JSON per run into dir
//   RSLS_RUN_REPORT=path  — append one RunReport JSONL line per run
//   RSLS_OBS_POWER_BIN=s  — power-trace bin width for counter tracks
//                           (seconds; default 0.05 when tracing)
//   RSLS_SERIES=1         — flight recorder: per-iteration series +
//                           per-rank energy in reports and traces
//   RSLS_SERIES_STRIDE=n  — sample every n-th iteration (default 1)
//   RSLS_SERIES_MAX_POINTS=n — retained-point bound before decimation

#include <string>

#include "core/env.hpp"
#include "core/units.hpp"

namespace rsls::obs {

struct ObservabilityOptions {
  /// Master switch; resolve_from_env flips it on when the environment
  /// requests artifacts.
  bool enabled = false;
  /// RunReport "source" field: the producing binary / entry point.
  std::string source = "harness";
  /// Explicit Chrome trace output file ("" = derive from trace_dir).
  std::string trace_path;
  /// Directory for per-run trace files named
  /// trace_<matrix>_<scheme>_<seq>.json ("" = no traces unless
  /// trace_path is set).
  std::string trace_dir;
  /// RunReport JSONL append path ("" = no report file; the report is
  /// still built and returned to callers that want it).
  std::string report_path;
  /// Power-trace bin width for the counter track; 0 disables the
  /// power counters.
  Seconds power_bin = 0.05;
  /// Record per-interval charge slices in the trace (the finest level).
  bool include_charges = true;
  /// Flight recorder: per-iteration time series in the report/trace.
  bool series = false;
  /// Per-rank energy attribution in the report's energy block.
  bool per_rank = false;
  /// Series sampling stride (every n-th iteration).
  Index series_stride = 1;
  /// Series memory bound (retained points before decimation).
  Index series_max_points = 4096;
  /// Bound on the recorder's charge stream is not needed — traces are
  /// per-run — but the cluster-owned EventLog (if any) can be capped.
  std::size_t event_log_capacity = 0;
  /// Build the RunReport and hand it back on SchemeRun even when no
  /// report_path is set (the serve layer returns it over the wire).
  bool keep_report = false;
  /// Set when the caller already ran resolve_from_env (or deliberately
  /// wants explicit fields to win): resolve_from_env becomes a no-op,
  /// so RSLS_* cannot re-overlay a decided configuration.
  bool env_resolved = false;

  bool wants_trace() const {
    return enabled && (!trace_path.empty() || !trace_dir.empty());
  }
  bool wants_report() const { return enabled && !report_path.empty(); }
};

/// Overlay the environment on `base`: RSLS_TRACE_DIR / RSLS_RUN_REPORT /
/// RSLS_OBS_POWER_BIN (via the core::env registry), enabling
/// observability when any is present.
inline ObservabilityOptions resolve_from_env(ObservabilityOptions base) {
  if (base.env_resolved) {
    return base;  // already decided; explicit fields win
  }
  base.env_resolved = true;
  if (const auto dir = env::trace_dir(); dir.has_value()) {
    base.trace_dir = *dir;
    base.enabled = true;
  }
  if (const auto path = env::run_report_path(); path.has_value()) {
    base.report_path = *path;
    base.enabled = true;
  }
  if (const auto bin = env::obs_power_bin(); bin.has_value()) {
    base.power_bin = *bin;
  }
  if (env::series()) {
    base.enabled = true;
    base.series = true;
    base.per_rank = true;
  }
  if (const auto stride = env::series_stride(); stride.has_value()) {
    base.series_stride = *stride;
  }
  if (const auto points = env::series_max_points(); points.has_value()) {
    base.series_max_points = *points;
  }
  return base;
}

/// File-name-safe form of a matrix/scheme label.
inline std::string sanitize_label(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("run") : out;
}

}  // namespace rsls::obs
