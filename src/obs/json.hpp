#pragma once
// Minimal JSON support for the observability exporters.
//
// JsonWriter is a streaming emitter with explicit begin/end nesting —
// enough for the Chrome trace and RunReport formats, with correct string
// escaping and round-trip double precision (max_digits10), so energy
// totals survive export → parse → compare at 1e-9 tolerance.
//
// JsonValue/parse_json is a small recursive-descent reader used by the
// exporter tests (and anything that wants to consume the emitted
// artifacts in-process). It supports the full JSON grammar, including
// \uXXXX escapes with surrogate pairs, decoded to UTF-8.

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace rsls::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  // Containers. `key` variants are for use inside an open object.
  void begin_object();
  void begin_object(const std::string& key);
  void end_object();
  void begin_array();
  void begin_array(const std::string& key);
  void end_array();

  // Scalars inside an open object.
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);

  // Scalars inside an open array.
  void element(const std::string& value);
  void element(double value);
  void element(std::uint64_t value);

  /// Escaped, quoted string literal.
  static std::string quote(const std::string& text);
  /// Shortest round-trip decimal form of a double ("1e-9"-safe).
  static std::string number(double value);

 private:
  void comma();
  void key_prefix(const std::string& key);

  std::ostream& os_;
  // One bool per open container: "a value has been written at this level".
  std::vector<bool> needs_comma_;
};

// ---------------------------------------------------------------------------

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw rsls::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws if not an object or key missing.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parse one JSON document; throws rsls::Error with position info on
/// malformed input. Trailing non-whitespace is an error.
JsonValue parse_json(const std::string& text);

/// Stream a JsonValue directly to `os` without materializing the full
/// document as a string — containers are walked depth-first and each
/// scalar is emitted as it is visited, so chunked transports (the serve
/// event stream) can write arbitrarily large values with O(depth)
/// memory. Numbers use the same shortest-round-trip form as JsonWriter,
/// so write_json → parse_json is lossless for finite doubles.
void write_json(std::ostream& os, const JsonValue& value);

/// Convenience: write_json into a std::string.
std::string to_string(const JsonValue& value);

}  // namespace rsls::obs
