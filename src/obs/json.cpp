#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rsls::obs {

// --- writer ----------------------------------------------------------------

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      os_ << ',';
    }
    needs_comma_.back() = true;
  }
}

void JsonWriter::key_prefix(const std::string& key) {
  comma();
  os_ << quote(key) << ':';
}

void JsonWriter::begin_object() {
  comma();
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  RSLS_CHECK_MSG(!needs_comma_.empty(), "end_object with no open container");
  needs_comma_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  comma();
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  RSLS_CHECK_MSG(!needs_comma_.empty(), "end_array with no open container");
  needs_comma_.pop_back();
  os_ << ']';
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  key_prefix(key);
  os_ << quote(value);
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, double value) {
  key_prefix(key);
  os_ << number(value);
}

void JsonWriter::field(const std::string& key, std::int64_t value) {
  key_prefix(key);
  os_ << value;
}

void JsonWriter::field(const std::string& key, std::uint64_t value) {
  key_prefix(key);
  os_ << value;
}

void JsonWriter::field(const std::string& key, int value) {
  field(key, static_cast<std::int64_t>(value));
}

void JsonWriter::field(const std::string& key, bool value) {
  key_prefix(key);
  os_ << (value ? "true" : "false");
}

void JsonWriter::element(const std::string& value) {
  comma();
  os_ << quote(value);
}

void JsonWriter::element(double value) {
  comma();
  os_ << number(value);
}

void JsonWriter::element(std::uint64_t value) {
  comma();
  os_ << value;
}

std::string JsonWriter::quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonWriter::number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    return "null";
  }
  char buf[40];
  const auto result =
      std::to_chars(buf, buf + sizeof(buf), value);  // shortest round-trip
  return std::string(buf, result.ptr);
}

// --- value -----------------------------------------------------------------

bool JsonValue::as_bool() const {
  RSLS_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  RSLS_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  RSLS_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  RSLS_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  RSLS_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return *object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  RSLS_CHECK_MSG(it != object.end(), "missing JSON key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  const auto& object = as_object();
  return object.find(key) != object.end();
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    RSLS_CHECK_MSG(pos_ == text_.size(),
                   "trailing characters after JSON document at offset " +
                       std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return JsonValue::make_bool(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return JsonValue::make_bool(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return JsonValue::make_null();
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(object));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(array));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Full \uXXXX support: a single escape names a BMP code
          // point; a high surrogate must be followed by a second
          // escape with its low surrogate, yielding a supplementary
          // code point. The result is emitted as UTF-8.
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  /// Four hex digits of a \uXXXX escape (pos_ at the first digit).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  /// UTF-8 encode one code point (≤ U+10FFFF by construction).
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

void write_json(std::ostream& os, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      return;
    case JsonValue::Kind::kBool:
      os << (value.as_bool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      os << JsonWriter::number(value.as_number());
      return;
    case JsonValue::Kind::kString:
      os << JsonWriter::quote(value.as_string());
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& element : value.as_array()) {
        if (!first) {
          os << ',';
        }
        first = false;
        write_json(os, element);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) {
          os << ',';
        }
        first = false;
        os << JsonWriter::quote(key) << ':';
        write_json(os, member);
      }
      os << '}';
      return;
    }
  }
}

std::string to_string(const JsonValue& value) {
  std::ostringstream os;
  write_json(os, value);
  return os.str();
}

}  // namespace rsls::obs
