#include "obs/recorder.hpp"

#include "core/error.hpp"

namespace rsls::obs {

Recorder::~Recorder() { detach(); }

void Recorder::attach(simrt::VirtualCluster& cluster) {
  RSLS_CHECK_MSG(cluster_ == nullptr, "recorder is already attached");
  cluster_ = &cluster;
  cluster.add_charge_sink(this);
  base_total_energy_ = cluster.total_energy();
  for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
    base_phase_energy_[t] =
        cluster.energy().core_energy(static_cast<power::PhaseTag>(t));
  }
  base_comm_messages_ = static_cast<double>(cluster.comm_stats().messages);
  base_comm_wire_bytes_ = cluster.comm_stats().wire_bytes;
}

void Recorder::detach() {
  if (cluster_ != nullptr) {
    cluster_->remove_charge_sink(this);
    cluster_ = nullptr;
  }
}

Seconds Recorder::track_now(Index track) const {
  RSLS_CHECK_MSG(cluster_ != nullptr,
                 "recorder must be attached to a cluster to open spans");
  return track == kClusterTrack ? cluster_->elapsed() : cluster_->now(track);
}

std::size_t Recorder::open_span(std::string name, power::PhaseTag tag,
                                Index track, std::string detail) {
  SpanRecord span;
  span.name = std::move(name);
  span.track = track;
  span.begin = track_now(track);
  span.tag = tag;
  span.scheme = scheme_;
  span.detail = std::move(detail);
  span.depth = static_cast<Index>(open_by_track_[track].size());
  pending_.push_back(std::move(span));
  const std::size_t handle = pending_.size() - 1;
  open_by_track_[track].push_back(handle);
  ++open_spans_;
  return handle;
}

void Recorder::close_span(std::size_t handle) {
  RSLS_CHECK_MSG(handle < pending_.size(), "invalid span handle");
  SpanRecord& span = pending_[handle];
  auto& stack = open_by_track_[span.track];
  RSLS_CHECK_MSG(!stack.empty() && stack.back() == handle,
                 "spans on a track must close LIFO (innermost first)");
  stack.pop_back();
  span.end = track_now(span.track);
  spans_.push_back(span);
  --open_spans_;
  // pending_ slots are not reclaimed until all spans on all tracks are
  // closed; with the shallow nesting of a solve this stays tiny.
  if (open_spans_ == 0) {
    pending_.clear();
    open_by_track_.clear();
  }
}

void Recorder::on_charge(const simrt::ChargeRecord& record) {
  if (record_charges_) {
    charges_.push_back(record);
  }
  if (per_rank_enabled_) {
    per_rank_core_[record.rank][static_cast<std::size_t>(record.tag)] +=
        record.core_joules;
  }
}

void Recorder::on_dvfs_transition(Index rank, Seconds time, Hertz from,
                                  Hertz to) {
  dvfs_marks_.push_back(DvfsMark{rank, time, from, to});
  metrics_.counter("dvfs_transitions").add(1.0);
}

// --- flight recorder -------------------------------------------------------

void Recorder::enable_series(const SeriesOptions& options) {
  series_ = std::make_unique<TimeSeries>(options);
}

void Recorder::sample_iteration(Index iteration, Real relative_residual) {
  if (series_ == nullptr || !series_->due(iteration)) return;
  RSLS_CHECK_MSG(cluster_ != nullptr,
                 "recorder must be attached to a cluster to sample the series");
  SeriesPoint point;
  point.iteration = iteration;
  point.time_s = cluster_->elapsed();
  point.relative_residual = relative_residual;
  point.energy_j = cluster_->total_energy() - base_total_energy_;
  const simrt::net::CommStats& comm = cluster_->comm_stats();
  point.comm_messages = comm.messages - base_comm_messages_;
  point.comm_wire_bytes = comm.wire_bytes - base_comm_wire_bytes_;
  for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
    point.phase_energy_j[t] =
        cluster_->energy().core_energy(static_cast<power::PhaseTag>(t)) -
        base_phase_energy_[t];
  }
  series_->sample(point);
}

void Recorder::mark_series_event(std::string kind, Index iteration,
                                 std::string detail) {
  if (series_ == nullptr) return;
  SeriesEvent event;
  event.kind = std::move(kind);
  event.iteration = iteration;
  event.time_s = cluster_ != nullptr ? cluster_->elapsed() : 0.0;
  event.detail = std::move(detail);
  series_->add_event(std::move(event));
}

SeriesSnapshot Recorder::series_snapshot() const {
  return series_ != nullptr ? series_->snapshot() : SeriesSnapshot{};
}

// --- ScopedSpan ------------------------------------------------------------

ScopedSpan::ScopedSpan(Recorder* recorder, std::string name,
                       power::PhaseTag tag, Index track, std::string detail)
    : recorder_(recorder) {
  if (recorder_ != nullptr) {
    handle_ =
        recorder_->open_span(std::move(name), tag, track, std::move(detail));
  }
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : recorder_(other.recorder_), handle_(other.handle_) {
  other.recorder_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    close();
    recorder_ = other.recorder_;
    handle_ = other.handle_;
    other.recorder_ = nullptr;
  }
  return *this;
}

ScopedSpan::~ScopedSpan() { close(); }

void ScopedSpan::close() {
  if (recorder_ != nullptr) {
    recorder_->close_span(handle_);
    recorder_ = nullptr;
  }
}

}  // namespace rsls::obs
