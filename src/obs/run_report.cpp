#include "obs/run_report.hpp"

#include <fstream>
#include <mutex>
#include <ostream>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace rsls::obs {

void write_run_report(std::ostream& os, const RunReport& report) {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", report.schema_version);
  json.field("source", report.source);
  json.field("matrix", report.matrix);
  json.field("scheme", report.scheme);

  json.begin_object("config");
  for (const auto& [key, value] : report.config) {
    json.field(key, value);
  }
  json.end_object();

  json.begin_object("results");
  for (const auto& [key, value] : report.results) {
    json.field(key, value);
  }
  json.end_object();

  json.begin_object("energy");
  json.begin_object("phases");
  for (const auto& [tag, joules] : report.phase_core_energy) {
    json.field(tag, joules);
  }
  json.end_object();
  json.field("node_constant", report.node_constant_energy);
  json.field("core_sleep", report.sleep_energy);
  json.field("total", report.total_energy);
  json.end_object();

  json.begin_object("metrics");
  json.begin_object("counters");
  for (const auto& [name, value] : report.metrics.counters) {
    json.field(name, value);
  }
  json.end_object();
  json.begin_object("gauges");
  for (const auto& [name, value] : report.metrics.gauges) {
    json.field(name, value);
  }
  json.end_object();
  json.begin_array("histograms");
  for (const auto& histogram : report.metrics.histograms) {
    json.begin_object();
    json.field("name", histogram.name);
    json.begin_array("bounds");
    for (const double bound : histogram.bounds) {
      json.element(bound);
    }
    json.end_array();
    json.begin_array("bucket_counts");
    for (const std::uint64_t count : histogram.bucket_counts) {
      json.element(count);
    }
    json.end_array();
    json.field("count", histogram.count);
    json.field("sum", histogram.sum);
    json.field("min", histogram.min);
    json.field("max", histogram.max);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  // Omitted when empty so fault-free reports stay byte-identical to the
  // pre-schedule schema.
  if (!report.fault_schedule.empty()) {
    json.begin_array("fault_schedule");
    for (const FaultScheduleEntry& entry : report.fault_schedule) {
      json.begin_object();
      json.field("time_s", entry.time_s);
      json.field("iteration", entry.iteration);
      json.begin_array("ranks");
      for (const Index rank : entry.ranks) {
        json.element(static_cast<std::uint64_t>(rank));
      }
      json.end_array();
      json.field("class", entry.fault_class);
      json.field("corruption_seed", entry.corruption_seed);
      json.field("domain_event", entry.domain_event);
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  os << '\n';
}

void append_run_report(const std::string& path, const RunReport& report) {
  // Concurrent sweep cells append to the same JSONL file; the mutex
  // keeps each report line atomic (ordering between lines is scheduling
  // order, which is fine for JSONL).
  static std::mutex append_mutex;
  const std::lock_guard<std::mutex> lock(append_mutex);
  std::ofstream os(path, std::ios::app);
  RSLS_CHECK_MSG(os.good(), "cannot open run report file " + path);
  write_run_report(os, report);
  RSLS_CHECK_MSG(os.good(), "failed writing run report to " + path);
}

}  // namespace rsls::obs
