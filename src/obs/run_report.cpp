#include "obs/run_report.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <ostream>
#include <sstream>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace rsls::obs {

void write_run_report(std::ostream& os, const RunReport& report) {
  // v2-only blocks imply at least version 2; reports without them keep
  // whatever the producer set (byte-identical v1 output).
  const bool has_v2_blocks =
      !report.per_rank.empty() || !report.series.empty() ||
      report.series.enabled;
  const int version =
      has_v2_blocks && report.schema_version < 2 ? 2 : report.schema_version;
  JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", version);
  json.field("source", report.source);
  json.field("matrix", report.matrix);
  json.field("scheme", report.scheme);

  json.begin_object("config");
  for (const auto& [key, value] : report.config) {
    json.field(key, value);
  }
  json.end_object();

  json.begin_object("results");
  for (const auto& [key, value] : report.results) {
    json.field(key, value);
  }
  json.end_object();

  json.begin_object("energy");
  json.begin_object("phases");
  for (const auto& [tag, joules] : report.phase_core_energy) {
    json.field(tag, joules);
  }
  json.end_object();
  json.field("node_constant", report.node_constant_energy);
  json.field("core_sleep", report.sleep_energy);
  json.field("total", report.total_energy);
  if (!report.per_rank.empty()) {
    json.begin_array("per_rank");
    for (const RankEnergy& rank : report.per_rank) {
      json.begin_object();
      json.field("rank", static_cast<std::uint64_t>(rank.rank));
      json.begin_object("phases");
      for (const auto& [tag, joules] : rank.phase_core_energy) {
        json.field(tag, joules);
      }
      json.end_object();
      json.field("total", rank.total);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();

  json.begin_object("metrics");
  json.begin_object("counters");
  for (const auto& [name, value] : report.metrics.counters) {
    json.field(name, value);
  }
  json.end_object();
  json.begin_object("gauges");
  for (const auto& [name, value] : report.metrics.gauges) {
    json.field(name, value);
  }
  json.end_object();
  json.begin_array("histograms");
  for (const auto& histogram : report.metrics.histograms) {
    json.begin_object();
    json.field("name", histogram.name);
    json.begin_array("bounds");
    for (const double bound : histogram.bounds) {
      json.element(bound);
    }
    json.end_array();
    json.begin_array("bucket_counts");
    for (const std::uint64_t count : histogram.bucket_counts) {
      json.element(count);
    }
    json.end_array();
    json.field("count", histogram.count);
    json.field("sum", histogram.sum);
    json.field("min", histogram.min);
    json.field("max", histogram.max);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  // Omitted when empty so fault-free reports stay byte-identical to the
  // pre-schedule schema.
  if (!report.fault_schedule.empty()) {
    json.begin_array("fault_schedule");
    for (const FaultScheduleEntry& entry : report.fault_schedule) {
      json.begin_object();
      json.field("time_s", entry.time_s);
      json.field("iteration", entry.iteration);
      json.begin_array("ranks");
      for (const Index rank : entry.ranks) {
        json.element(static_cast<std::uint64_t>(rank));
      }
      json.end_array();
      json.field("class", entry.fault_class);
      json.field("corruption_seed", entry.corruption_seed);
      json.field("domain_event", entry.domain_event);
      json.end_object();
    }
    json.end_array();
  }

  if (report.series.enabled || !report.series.empty()) {
    json.begin_object("series");
    json.field("stride", static_cast<std::uint64_t>(report.series.stride));
    json.field("max_points",
               static_cast<std::uint64_t>(report.series.max_points));
    json.field("decimations",
               static_cast<std::uint64_t>(report.series.decimations));
    json.field("dropped_events", report.series.dropped_events);
    json.begin_array("points");
    for (const SeriesPoint& point : report.series.points) {
      json.begin_object();
      json.field("iteration", static_cast<std::uint64_t>(point.iteration));
      json.field("time_s", point.time_s);
      json.field("relative_residual", point.relative_residual);
      json.field("energy_j", point.energy_j);
      json.field("power_w", point.power_w);
      json.field("comm_messages", point.comm_messages);
      json.field("comm_wire_bytes", point.comm_wire_bytes);
      json.begin_object("phases");
      for (std::size_t t = 0; t < power::kPhaseTagCount; ++t) {
        if (point.phase_energy_j[t] != 0.0) {
          json.field(power::to_string(static_cast<power::PhaseTag>(t)),
                     point.phase_energy_j[t]);
        }
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.begin_array("events");
    for (const SeriesEvent& event : report.series.events) {
      json.begin_object();
      json.field("kind", event.kind);
      json.field("iteration", static_cast<std::uint64_t>(event.iteration));
      json.field("time_s", event.time_s);
      json.field("detail", event.detail);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  json.end_object();
  os << '\n';
}

void append_run_report(const std::string& path, const RunReport& report) {
  // Concurrent jobs (sweep cells, server solves) append to the same
  // JSONL file. Each report is serialized to one buffer first and then
  // pushed through a single write(2) on an O_APPEND descriptor: the
  // kernel makes the seek+write pair atomic, so lines never interleave
  // even across descriptors or processes. The mutex additionally
  // serializes in-process callers so a rare partial write (ENOSPC,
  // signal) can be continued without another thread splicing in.
  std::ostringstream buffer;
  write_run_report(buffer, report);
  const std::string line = buffer.str();

  static std::mutex append_mutex;
  const std::lock_guard<std::mutex> lock(append_mutex);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  RSLS_CHECK_MSG(fd >= 0, "cannot open run report file " + path + ": " +
                              std::strerror(errno));
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw Error("failed writing run report to " + path + ": " + reason);
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

}  // namespace rsls::obs
