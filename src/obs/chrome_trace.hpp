#pragma once
// Chrome trace-event exporter: renders a Recorder session (spans, charge
// slices, DVFS marks, power trace) as the JSON trace-event format that
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load natively.
//
// Mapping:
//   pid 0 "virtual cluster"   — all timeline tracks
//     tid 0 "run"             — cluster-wide spans (kClusterTrack)
//     tid r+1 "rank r"        — rank r's spans + charge slices, nested
//   complete events ("ph":"X")— spans (cat = phase tag) and, one level
//                               deeper, charge slices (cat = "charge")
//   instant events ("ph":"i") — DVFS transitions, on the rank's track
//   counter events ("ph":"C") — per-node power profile (requires
//                               enable_power_trace on the cluster)
// Virtual seconds map to trace microseconds (ts/dur are doubles).

#include <iosfwd>
#include <string>

#include "obs/recorder.hpp"

namespace rsls::obs {

struct ChromeTraceOptions {
  /// Emit the per-interval charge slices under the spans. The finest and
  /// largest part of the trace; disable for a spans-only overview.
  bool include_charges = true;
  /// Emit per-node power counter tracks (needs the cluster's power trace
  /// enabled; silently skipped otherwise).
  bool include_power_counters = true;
};

/// Write one complete trace-event JSON document. The recorder must be
/// (still) attached to the cluster whose run it observed, and all spans
/// must be closed.
void write_chrome_trace(std::ostream& os, const Recorder& recorder,
                        const ChromeTraceOptions& options = {});

/// Convenience: write to a file path (throws rsls::Error on I/O failure).
void write_chrome_trace_file(const std::string& path, const Recorder& recorder,
                             const ChromeTraceOptions& options = {});

}  // namespace rsls::obs
