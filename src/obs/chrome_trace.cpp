#include "obs/chrome_trace.hpp"

#include <fstream>
#include <ostream>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace rsls::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

/// Trace tid for a span/charge track: run track is 0, rank r is r+1.
std::int64_t tid_of(Index track) { return static_cast<std::int64_t>(track) + 1; }

void write_thread_name(JsonWriter& json, std::int64_t tid,
                       const std::string& name) {
  json.begin_object();
  json.field("name", "thread_name");
  json.field("ph", "M");
  json.field("pid", std::int64_t{0});
  json.field("tid", tid);
  json.begin_object("args");
  json.field("name", name);
  json.end_object();
  json.end_object();
}

void write_span(JsonWriter& json, const SpanRecord& span) {
  json.begin_object();
  json.field("name", span.name);
  json.field("cat", power::to_string(span.tag));
  json.field("ph", "X");
  json.field("ts", span.begin * kMicrosPerSecond);
  json.field("dur", (span.end - span.begin) * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", tid_of(span.track));
  json.begin_object("args");
  json.field("phase", power::to_string(span.tag));
  if (!span.scheme.empty()) {
    json.field("scheme", span.scheme);
  }
  if (!span.detail.empty()) {
    json.field("detail", span.detail);
  }
  json.field("depth", static_cast<std::int64_t>(span.depth));
  json.end_object();
  json.end_object();
}

void write_charge(JsonWriter& json, const simrt::ChargeRecord& charge) {
  json.begin_object();
  json.field("name", power::to_string(charge.tag));
  json.field("cat", "charge");
  json.field("ph", "X");
  json.field("ts", charge.begin * kMicrosPerSecond);
  json.field("dur", (charge.end - charge.begin) * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", tid_of(charge.rank));
  json.begin_object("args");
  json.field("activity", power::to_string(charge.activity));
  json.field("joules", charge.core_joules);
  json.end_object();
  json.end_object();
}

void write_dvfs_mark(JsonWriter& json, const DvfsMark& mark) {
  json.begin_object();
  json.field("name", "dvfs");
  json.field("cat", "dvfs");
  json.field("ph", "i");
  json.field("s", "t");  // thread-scoped instant
  json.field("ts", mark.time * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", tid_of(mark.rank));
  json.begin_object("args");
  json.field("from_ghz", mark.from / 1e9);
  json.field("to_ghz", mark.to / 1e9);
  json.end_object();
  json.end_object();
}

void write_power_counter(JsonWriter& json, Index node,
                         const simrt::PowerSample& sample) {
  json.begin_object();
  json.field("name", "power/node" + std::to_string(node));
  json.field("ph", "C");
  json.field("ts", sample.time * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", std::int64_t{0});
  json.begin_object("args");
  json.field("watts", sample.power);
  json.end_object();
  json.end_object();
}

/// One counter sample on a named series track.
void write_series_counter(JsonWriter& json, const char* track, Seconds time,
                          const char* key, double value) {
  json.begin_object();
  json.field("name", track);
  json.field("ph", "C");
  json.field("ts", time * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", std::int64_t{0});
  json.begin_object("args");
  json.field(key, value);
  json.end_object();
  json.end_object();
}

void write_series_event(JsonWriter& json, const SeriesEvent& event) {
  json.begin_object();
  json.field("name", event.kind);
  json.field("cat", "series");
  json.field("ph", "i");
  json.field("s", "g");  // global-scoped instant: visible on every track
  json.field("ts", event.time_s * kMicrosPerSecond);
  json.field("pid", std::int64_t{0});
  json.field("tid", std::int64_t{0});
  json.begin_object("args");
  json.field("iteration", static_cast<std::int64_t>(event.iteration));
  if (!event.detail.empty()) {
    json.field("detail", event.detail);
  }
  json.end_object();
  json.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Recorder& recorder,
                        const ChromeTraceOptions& options) {
  RSLS_CHECK_MSG(recorder.cluster() != nullptr,
                 "recorder must be attached to export a trace");
  RSLS_CHECK_MSG(recorder.open_span_count() == 0,
                 "all spans must be closed before export");
  const simrt::VirtualCluster& cluster = *recorder.cluster();

  JsonWriter json(os);
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.begin_object("otherData");
  json.field("producer", "rsls");
  if (!recorder.scheme().empty()) {
    json.field("scheme", recorder.scheme());
  }
  json.field("ranks", static_cast<std::int64_t>(cluster.num_ranks()));
  json.field("virtual_makespan_s", cluster.elapsed());
  json.end_object();

  json.begin_array("traceEvents");

  // Track metadata.
  {
    json.begin_object();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", std::int64_t{0});
    json.begin_object("args");
    json.field("name", "virtual cluster");
    json.end_object();
    json.end_object();
  }
  write_thread_name(json, 0, "run");
  for (Index r = 0; r < cluster.num_ranks(); ++r) {
    write_thread_name(json, tid_of(r), "rank " + std::to_string(r));
  }

  for (const SpanRecord& span : recorder.spans()) {
    write_span(json, span);
  }
  if (options.include_charges) {
    for (const simrt::ChargeRecord& charge : recorder.charges()) {
      write_charge(json, charge);
    }
  }
  for (const DvfsMark& mark : recorder.dvfs_marks()) {
    write_dvfs_mark(json, mark);
  }
  if (options.include_power_counters && cluster.power_trace_enabled()) {
    for (Index node = 0; node < cluster.nodes_used(); ++node) {
      for (const simrt::PowerSample& sample :
           cluster.node_power_profile(node)) {
        write_power_counter(json, node, sample);
      }
    }
  }
  // Flight-recorder series: counter tracks over virtual time plus the
  // fault/detection/recovery/escalation markers as global instants.
  if (recorder.series_enabled()) {
    for (const SeriesPoint& point : recorder.series()->points()) {
      write_series_counter(json, "series/residual", point.time_s,
                           "relative_residual", point.relative_residual);
      write_series_counter(json, "series/power", point.time_s, "watts",
                           point.power_w);
      write_series_counter(json, "series/energy", point.time_s, "joules",
                           point.energy_j);
      write_series_counter(json, "series/comm", point.time_s, "wire_bytes",
                           point.comm_wire_bytes);
    }
    for (const SeriesEvent& event : recorder.series()->events()) {
      write_series_event(json, event);
    }
  }

  json.end_array();
  json.end_object();
  os << '\n';
}

void write_chrome_trace_file(const std::string& path, const Recorder& recorder,
                             const ChromeTraceOptions& options) {
  std::ofstream os(path);
  RSLS_CHECK_MSG(os.good(), "cannot open trace file " + path);
  write_chrome_trace(os, recorder, options);
  RSLS_CHECK_MSG(os.good(), "failed writing trace file " + path);
}

}  // namespace rsls::obs
