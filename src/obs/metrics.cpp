#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>

#include "core/error.hpp"

namespace rsls::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RSLS_CHECK_MSG(!bounds_.empty(),
                 "histogram needs at least one bucket bound");
  RSLS_CHECK_MSG(std::adjacent_find(bounds_.begin(), bounds_.end(),
                                    std::greater_equal<double>()) ==
                     bounds_.end(),
                 "histogram bucket bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::absorb(const HistogramSnapshot& other) {
  RSLS_CHECK_MSG(other.bounds == bounds_,
                 "cannot merge histograms with different bucket bounds");
  if (other.count == 0) {
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.bucket_counts[i];
  }
  if (count_ == 0) {
    min_ = other.min;
    max_ = other.max;
  } else {
    min_ = std::min(min_, other.min);
    max_ = std::max(max_, other.max);
  }
  count_ += other.count;
  sum_ += other.sum;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(HistogramSnapshot{
        name, histogram.bounds(), histogram.bucket_counts(), histogram.count(),
        histogram.sum(), histogram.min(), histogram.max()});
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counter(name).add(value);
  }
  for (const auto& [name, value] : other.gauges) {
    gauge(name).set(value);
  }
  for (const auto& hist : other.histograms) {
    histogram(hist.name, hist.bounds).absorb(hist);
  }
}

}  // namespace rsls::obs
