#include "harness/artifact_cache.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <sstream>

#include "core/error.hpp"
#include "obs/json.hpp"
#include "simrt/net/network_config.hpp"

namespace rsls::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

template <typename T>
void fnv1a_span(std::uint64_t& hash, std::span<const T> values) {
  fnv1a_bytes(hash, values.data(), values.size() * sizeof(T));
}

std::uint64_t fingerprint_vector(const RealVec& values) {
  std::uint64_t hash = kFnvOffset;
  fnv1a_span<Real>(hash, values);
  return hash;
}

}  // namespace

std::uint64_t ArtifactCache::fingerprint(const sparse::Csr& matrix) {
  std::uint64_t hash = kFnvOffset;
  const std::int64_t dims[2] = {matrix.rows, matrix.cols};
  fnv1a_bytes(hash, dims, sizeof(dims));
  fnv1a_span<Index>(hash, std::span<const Index>(matrix.row_ptr));
  fnv1a_span<Index>(hash, std::span<const Index>(matrix.col_idx));
  fnv1a_span<Real>(hash, std::span<const Real>(matrix.values));
  return hash;
}

std::string ArtifactCache::key_for(const Workload& workload,
                                   const ExperimentConfig& config,
                                   const std::string& ordering) {
  // The interconnect shapes virtual time, so the baseline depends on it.
  // Resolve exactly like run_fault_free: explicit config wins, otherwise
  // machine_for's default (which honors RSLS_NET_* env).
  const simrt::net::NetworkConfig net =
      config.network.has_value() ? *config.network
                                 : machine_for(config.processes).net;
  std::ostringstream key;
  key << std::hex << fingerprint(workload.a.global()) << '.'
      << fingerprint_vector(workload.b) << '.'
      << fingerprint_vector(workload.x0) << std::dec << "|p"
      << config.processes << "|ord:" << ordering
      << "|tol:" << obs::JsonWriter::number(config.tolerance)
      << "|maxit:" << config.max_iterations << "|solver:" << config.solver
      << "|precond:" << config.preconditioner
      << "|net:" << simrt::net::to_string(net.topology) << '/'
      << simrt::net::to_string(net.collective);
  return key.str();
}

ArtifactCache::ArtifactCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(max_entries, 1)) {}

std::shared_ptr<const SolveArtifacts> ArtifactCache::get_or_build(
    const std::string& key, const Builder& build) {
  RSLS_CHECK_MSG(build != nullptr, "ArtifactCache needs a builder");
  bool owner = false;
  std::promise<std::shared_ptr<const SolveArtifacts>> promise;
  std::shared_future<std::shared_ptr<const SolveArtifacts>> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      touch(it->second, key);
      future = it->second.future;
    } else {
      ++stats_.misses;
      owner = true;
      future = promise.get_future().share();
      entries_.emplace(key, Entry{future, false, lru_.end()});
    }
  }
  if (!owner) {
    return future.get();  // blocks on an in-flight build; rethrows failure
  }
  // Build outside the lock: a slow derivation must not serialize hits on
  // other keys. In-flight entries are invisible to eviction, so the map
  // slot is stable until we mark it ready (or erase it on failure).
  std::shared_ptr<const SolveArtifacts> value;
  try {
    value = std::make_shared<const SolveArtifacts>(build());
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);  // failed builds are not cached: retry later
      stats_.entries = entries_.size();
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(value);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.ready = true;
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      evict_excess();
    }
  }
  return value;
}

void ArtifactCache::touch(Entry& entry, const std::string& key) {
  if (entry.ready) {
    lru_.erase(entry.lru_pos);
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
  }
}

void ArtifactCache::evict_excess() {
  while (lru_.size() > max_entries_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace rsls::harness
