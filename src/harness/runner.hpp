#pragma once
// Parallel batch execution engine for experiment grids.
//
// Every figure/table is a sweep of (matrix × scheme × fault plan)
// cells, and the cells are embarrassingly parallel: each one is a
// self-contained virtual-cluster solve. The Runner fans them across a
// work-stealing thread pool (RSLS_JOBS workers) while preserving the
// serial path's semantics exactly:
//
//  * Cell graph. Work is organized as groups — one shared workload and
//    fault-free baseline — each carrying an ordered list of cells. The
//    group task builds the workload, runs the baseline once, then
//    submits its cells; cells of different groups interleave freely
//    (no barrier between groups), so the grid pipelines.
//  * Baseline cache. The FfBaseline is computed once per group and
//    shared read-only by every cell, exactly like the serial loops.
//  * Deterministic RNG. A cell's fault plan is derived inside
//    run_scheme from its own config (fault_seed, faults, ff), never
//    from shared mutable RNG state — results are bit-identical to the
//    serial path for any worker count and any schedule.
//  * Thread-safe aggregation. Results land in pre-sized slots (one per
//    cell, disjoint), and per-cell observability metrics are merged
//    into the runner's registry on join under a lock.
//
// The first exception thrown by any cell aborts the batch (remaining
// queued cells still drain) and is rethrown from run().

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "harness/artifact_cache.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"

namespace rsls::harness {

/// One experiment cell: a scheme run against its group's shared
/// fault-free baseline.
struct CellSpec {
  std::string scheme;
  /// Per-cell configuration override (fault seed / count sweeps); the
  /// group config is used when unset. The override must agree with the
  /// group config on everything the baseline depends on (processes,
  /// tolerance, solver kind).
  std::optional<ExperimentConfig> config;
  /// Custom cell body for runs that need hooks (bespoke scheme
  /// instance, injector, or cluster). Defaults to plain run_scheme.
  /// Runs on a worker thread: touch only cell-local state.
  std::function<SchemeRun(const Workload&, const FfBaseline&,
                          const ExperimentConfig&)>
      body;
};

/// A shared workload + baseline with its dependent cells.
struct GroupSpec {
  /// Row label (matrix name, process count, …).
  std::string label;
  /// Builds the workload on a worker thread, once per group.
  std::function<Workload()> make_workload;
  ExperimentConfig config;
  std::vector<CellSpec> cells;
};

struct GroupResult {
  std::string label;
  FfBaseline ff;
  /// One entry per cell, in CellSpec order (independent of schedule).
  std::vector<SchemeRun> runs;
};

class Runner {
 public:
  /// `jobs` worker threads; 0 means take RSLS_JOBS from the
  /// environment.
  explicit Runner(Index jobs = 0);

  Index jobs() const { return jobs_; }

  /// Execute every cell of every group and return results in spec
  /// order. Rethrows the first cell exception after the batch drains.
  std::vector<GroupResult> run(const std::vector<GroupSpec>& groups);

  /// Convenience: one anonymous group.
  GroupResult run_group(const GroupSpec& group);

  /// Merged observability metrics across every cell run so far (plus
  /// the runner's own counters: runner.cells, runner.groups, and the
  /// deterministic artifact-cache counters runner.cache.*). Cells are
  /// folded in (group, cell) spec order after each batch drains, so the
  /// aggregate — gauges included — is independent of RSLS_JOBS and
  /// scheduling.
  obs::MetricsSnapshot metrics() const;

  /// Thread-pool occupancy summed over every run() so far. Stolen-task
  /// and queue-depth figures are genuinely schedule-dependent, so they
  /// live here — telemetry — rather than in the deterministic metrics()
  /// aggregate.
  ThreadPool::Stats pool_stats() const;

  /// Workload/baseline cache shared by every group of every run():
  /// groups naming the same (matrix, config) content key reuse one
  /// baseline instead of recomputing it. Exposed so callers (the serve
  /// engine, tests) can share or inspect it.
  ArtifactCache& cache() { return cache_; }

 private:
  Index jobs_ = 1;
  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;
  ThreadPool::Stats pool_stats_;  // guarded by metrics_mutex_
  ArtifactCache cache_;
};

}  // namespace rsls::harness
