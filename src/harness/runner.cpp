#include "harness/runner.hpp"

#include <utility>

#include "core/error.hpp"
#include "core/thread_pool.hpp"

namespace rsls::harness {

namespace {

/// Shared per-group state: built once by the group task, then read-only
/// for every cell of the group.
struct GroupState {
  std::optional<Workload> workload;
  FfBaseline ff;
};

}  // namespace

Runner::Runner(Index jobs)
    : jobs_(jobs > 0 ? jobs : ThreadPool::default_threads()) {}

std::vector<GroupResult> Runner::run(const std::vector<GroupSpec>& groups) {
  std::vector<GroupResult> results(groups.size());
  std::vector<GroupState> states(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    RSLS_CHECK_MSG(groups[gi].make_workload != nullptr,
                   "GroupSpec needs a make_workload factory");
    results[gi].label = groups[gi].label;
    // Pre-sized slots: concurrent cells write disjoint entries, so no
    // lock is needed on the result path.
    results[gi].runs.resize(groups[gi].cells.size());
  }

  ThreadPool pool(jobs_);
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    pool.submit([&groups, &results, &states, gi, &pool] {
      const GroupSpec& group = groups[gi];
      GroupState& state = states[gi];
      state.workload.emplace(group.make_workload());
      state.ff = run_fault_free(*state.workload, group.config);
      results[gi].ff = state.ff;
      // Fan the group's cells out; they land on this worker's deque and
      // are stolen by idle workers, so cells of a slow group overlap
      // with other groups' baselines.
      for (std::size_t ci = 0; ci < group.cells.size(); ++ci) {
        pool.submit([&groups, &results, &states, gi, ci] {
          const GroupSpec& g = groups[gi];
          const CellSpec& cell = g.cells[ci];
          const GroupState& st = states[gi];
          const ExperimentConfig& config =
              cell.config.has_value() ? *cell.config : g.config;
          SchemeRun run =
              cell.body != nullptr
                  ? cell.body(*st.workload, st.ff, config)
                  : run_scheme(*st.workload, cell.scheme, config, st.ff);
          results[gi].runs[ci] = std::move(run);
        });
      }
    });
  }
  pool.wait_idle();
  // Fold per-cell metrics in (group, cell) order after the drain
  // barrier. Gauges merge last-write-wins, so merging at cell
  // completion time would make the aggregate registry depend on the
  // schedule; a fixed fold order keeps runner.metrics() bit-identical
  // at any worker count, matching the result slots themselves.
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const GroupResult& group_result : results) {
      metrics_.counter("runner.groups").add();
      for (const SchemeRun& run : group_result.runs) {
        metrics_.merge(run.metrics);
        metrics_.counter("runner.cells").add();
      }
    }
  }
  return results;
}

GroupResult Runner::run_group(const GroupSpec& group) {
  auto results = run(std::vector<GroupSpec>{group});
  return std::move(results.front());
}

obs::MetricsSnapshot Runner::metrics() const {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_.snapshot();
}

}  // namespace rsls::harness
