#include "harness/runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/error.hpp"
#include "core/thread_pool.hpp"

namespace rsls::harness {

namespace {

/// Shared per-group state: resolved once by the group task (through the
/// runner's artifact cache), then read-only for every cell of the group.
struct GroupState {
  std::shared_ptr<const SolveArtifacts> artifacts;
};

}  // namespace

Runner::Runner(Index jobs)
    : jobs_(jobs > 0 ? jobs : ThreadPool::default_threads()) {}

std::vector<GroupResult> Runner::run(const std::vector<GroupSpec>& groups) {
  std::vector<GroupResult> results(groups.size());
  std::vector<GroupState> states(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    RSLS_CHECK_MSG(groups[gi].make_workload != nullptr,
                   "GroupSpec needs a make_workload factory");
    results[gi].label = groups[gi].label;
    // Pre-sized slots: concurrent cells write disjoint entries, so no
    // lock is needed on the result path.
    results[gi].runs.resize(groups[gi].cells.size());
  }

  ThreadPool pool(jobs_);
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    pool.submit([this, &groups, &results, &states, gi, &pool] {
      const GroupSpec& group = groups[gi];
      GroupState& state = states[gi];
      // Workload + baseline resolve through the shared artifact cache:
      // groups naming the same content key (two sweeps over one matrix,
      // repeated batches on a long-lived Runner) reuse one baseline —
      // run_fault_free is a pure function of (workload, config), so the
      // cached value is bitwise what this group would have computed.
      const auto built =
          std::make_shared<const Workload>(group.make_workload());
      state.artifacts = cache_.get_or_build(
          ArtifactCache::key_for(*built, group.config), [&built, &group] {
            return SolveArtifacts{built, IndexVec{},
                                  run_fault_free(*built, group.config)};
          });
      results[gi].ff = state.artifacts->ff;
      // Fan the group's cells out; they land on this worker's deque and
      // are stolen by idle workers, so cells of a slow group overlap
      // with other groups' baselines.
      for (std::size_t ci = 0; ci < group.cells.size(); ++ci) {
        pool.submit([&groups, &results, &states, gi, ci] {
          const GroupSpec& g = groups[gi];
          const CellSpec& cell = g.cells[ci];
          const GroupState& st = states[gi];
          const ExperimentConfig& config =
              cell.config.has_value() ? *cell.config : g.config;
          const Workload& workload = *st.artifacts->workload;
          const FfBaseline& ff = st.artifacts->ff;
          SchemeRun run = cell.body != nullptr
                              ? cell.body(workload, ff, config)
                              : run_scheme(workload, cell.scheme, config, ff);
          results[gi].runs[ci] = std::move(run);
        });
      }
    });
  }
  pool.wait_idle();
  // Fold per-cell metrics in (group, cell) order after the drain
  // barrier. Gauges merge last-write-wins, so merging at cell
  // completion time would make the aggregate registry depend on the
  // schedule; a fixed fold order keeps runner.metrics() bit-identical
  // at any worker count, matching the result slots themselves.
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const GroupResult& group_result : results) {
      metrics_.counter("runner.groups").add();
      for (const SchemeRun& run : group_result.runs) {
        metrics_.merge(run.metrics);
        metrics_.counter("runner.cells").add();
      }
    }
    // Cache traffic is deterministic (hits = lookups − distinct keys,
    // independent of which thread built an entry), so it belongs in the
    // reproducible aggregate. The registry holds cumulative totals;
    // gauges overwrite, counters get the delta since the last fold.
    const ArtifactCache::Stats cache = cache_.stats();
    const auto fold_counter = [this](const char* name, std::uint64_t total) {
      auto& counter = metrics_.counter(name);
      counter.add(static_cast<double>(total) - counter.value());
    };
    fold_counter("runner.cache.hits", cache.hits);
    fold_counter("runner.cache.misses", cache.misses);
    fold_counter("runner.cache.evictions", cache.evictions);
    metrics_.gauge("runner.cache.entries")
        .set(static_cast<double>(cache.entries));
    // Pool occupancy is telemetry (schedule-dependent), summed across
    // batches but kept out of metrics(); see pool_stats().
    const ThreadPool::Stats pool_stats = pool.stats();
    pool_stats_.tasks_submitted += pool_stats.tasks_submitted;
    pool_stats_.tasks_executed += pool_stats.tasks_executed;
    pool_stats_.tasks_stolen += pool_stats.tasks_stolen;
    pool_stats_.max_queue_depth =
        std::max(pool_stats_.max_queue_depth, pool_stats.max_queue_depth);
  }
  return results;
}

GroupResult Runner::run_group(const GroupSpec& group) {
  auto results = run(std::vector<GroupSpec>{group});
  return std::move(results.front());
}

obs::MetricsSnapshot Runner::metrics() const {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_.snapshot();
}

ThreadPool::Stats Runner::pool_stats() const {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  return pool_stats_;
}

}  // namespace rsls::harness
