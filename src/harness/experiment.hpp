#pragma once
// Experiment runner: one (matrix × scheme × fault plan × process count)
// resilient solve with its fault-free baseline and normalized metrics.
// All benches are thin layers over these functions.

#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/dist_matrix.hpp"
#include "harness/scheme_factory.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/run_report.hpp"
#include "obs/time_series.hpp"
#include "resilience/fault.hpp"
#include "resilience/resilient_solve.hpp"
#include "simrt/cluster.hpp"
#include "simrt/machine.hpp"
#include "sparse/csr.hpp"

namespace rsls::harness {

struct ExperimentConfig {
  Index processes = 192;
  /// Faults injected evenly over the fault-free iterations (§5.2).
  Index faults = 10;
  Real tolerance = 1e-12;
  Index max_iterations = 500000;
  std::uint64_t fault_seed = 2024;
  /// Scheme-construction knobs (CR cadence, LI/LSI construction
  /// tolerance, ABFT parity width). The embedded struct is the single
  /// source of truth — run_scheme passes it to make_scheme verbatim
  /// (after the Young-interval overlay below).
  SchemeFactoryConfig scheme;
  /// When set the CR cadence is derived from Young's formula with t_C
  /// from the machine model and an effective MTBF of T_FF / (faults + 1)
  /// — the §5.2 fault density — overriding
  /// scheme.cr_interval_iterations.
  bool use_young_interval = false;
  bool record_residuals = false;
  /// Solver variant by registry name ("cg" | "pipelined-cg") and
  /// preconditioner by registry name ("identity" | "jacobi" |
  /// "block-jacobi" | "ic0"). Schemes work unchanged under any
  /// combination; the defaults reproduce the seed solver bit-for-bit.
  /// The environment overlays these (RSLS_SOLVER, RSLS_PRECONDITIONER)
  /// when still at defaults and env_overlay is on; unknown names throw
  /// rsls::Error naming the valid roster.
  std::string solver = "cg";
  std::string preconditioner = "identity";
  /// SpMV kernel by registry name ("csr-scalar" | "csr-simd" |
  /// "sell-c-sigma") for every product the harness issues — the solver's
  /// global SpMV, preconditioner blocks, detection residuals, and
  /// forward-recovery local systems. The default reproduces the seed
  /// bit-for-bit; the environment overlays it (RSLS_SPMV_KERNEL) when
  /// still at the default and env_overlay is on; unknown explicit names
  /// throw rsls::Error naming the valid roster.
  std::string spmv_kernel = "csr-scalar";
  /// Reclassify every injected fault as *silent* data corruption: the
  /// harness is not told which rank was hit, so only the detector suite
  /// (when `detection` is on) can notice and localize it. Off keeps the
  /// paper's announced process-loss faults.
  bool sdc_faults = false;
  resilience::SdcMode sdc_mode = resilience::SdcMode::kGarbage;
  resilience::SdcTarget sdc_target = resilience::SdcTarget::kIterate;
  /// Run the online detector suite (charged under PhaseTag::kDetect).
  bool detection = false;
  resilience::DetectionOptions detection_options;
  resilience::HardeningOptions hardening;
  /// Correlated-fault and recovery-runtime knobs. All defaults reproduce
  /// the seed's behavior bit-for-bit. The environment overlays fields
  /// still at their defaults (RSLS_FAULT_DOMAINS, RSLS_SPARE_RANKS,
  /// RSLS_RECOVERY_RETRIES, RSLS_WEIBULL_SHAPE) inside run_scheme, so
  /// explicit bench settings always win.
  /// Failure-domain size: > 0 makes every fault event kill a whole
  /// domain. On a flat network the domains are synthetic contiguous
  /// groups of this size; on fat-tree/torus they come from the topology
  /// (leaf switches / x-lines) and this value just switches them on.
  Index fault_domains = 0;
  /// Weibull shape for fault inter-arrivals; > 0 replaces the §5.2
  /// evenly-spaced plan with Weibull arrivals at the same effective MTBF
  /// (T_FF / (faults + 1)).
  double weibull_shape = 0.0;
  /// Probability that a fired fault compresses the next inter-arrival
  /// gap (failure storms); only meaningful with weibull_shape > 0.
  double fault_burstiness = 0.0;
  double burst_compression = 0.05;
  /// Machine-level recovery policy (spare promotion / shrinking) and
  /// fallible-recovery retry/backoff budget.
  resilience::RecoveryOptions recovery;
  /// Tracing / RunReport emission. The environment overlays this
  /// (RSLS_TRACE_DIR, RSLS_RUN_REPORT, RSLS_OBS_POWER_BIN) inside
  /// run_scheme, so observability can be switched on for any binary
  /// without touching its flags.
  obs::ObservabilityOptions observability;
  /// Interconnect override for every cluster this config builds. Unset
  /// uses machine_for's default (which itself honors RSLS_NET_TOPOLOGY /
  /// RSLS_NET_COLLECTIVE); an explicit value here beats the environment
  /// — that's how bench sweeps pin a topology per cell.
  std::optional<simrt::net::NetworkConfig> network;
  /// Overlay RSLS_* resilience env vars onto fields still at defaults
  /// inside run_scheme (the historical behavior). The serve layer turns
  /// this off after resolving the environment once at job-parse time, so
  /// explicit job fields always beat the daemon's environment.
  bool env_overlay = true;
};

/// Machine sized for the process count: the paper's 8-node cluster, with
/// 2-way hyperthreading enabled when more ranks than physical cores are
/// requested (as the paper does for resilience-only evaluation) and node
/// count scaled as a last resort.
simrt::MachineConfig machine_for(Index processes);

/// A matrix bound to its partition, right-hand side (b = A·1) and initial
/// guess (x₀ = 0).
struct Workload {
  dist::DistMatrix a;
  RealVec b;
  RealVec x0;
  /// Matrix name for artifacts (trace file names, RunReport.matrix).
  std::string label;

  static Workload create(sparse::Csr matrix, Index processes,
                         std::string label = {});
};

struct FfBaseline {
  Index iterations = 0;
  Seconds time = 0.0;
  Joules energy = 0.0;
  Watts power = 0.0;
  /// Mean virtual time of one CG iteration (for Young's formula).
  Seconds iteration_seconds = 0.0;
};

/// Fault-free run (the normalization base of every figure).
FfBaseline run_fault_free(const Workload& workload,
                          const ExperimentConfig& config);

struct SchemeRun {
  std::string scheme;
  resilience::ResilientSolveReport report;
  // Ratios to the fault-free baseline.
  double iteration_ratio = 1.0;
  double time_ratio = 1.0;
  double energy_ratio = 1.0;
  double power_ratio = 1.0;
  // Measured model parameters (0 when not applicable).
  Seconds t_const_mean = 0.0;   // FW per-reconstruction cost
  Seconds t_c_mean = 0.0;       // CR per-checkpoint cost
  Index checkpoints = 0;
  Index cr_interval_used = 0;
  /// Per-run observability metrics (empty when observability is off).
  /// Each run records into its own registry, so concurrent cells never
  /// share instrument state; harness::Runner merges these on join.
  obs::MetricsSnapshot metrics;
  /// Flight-recorder series for this run (disabled/empty unless the
  /// observability options — or RSLS_SERIES — switched it on).
  obs::SeriesSnapshot series;
  /// The standardized RunReport, populated when observability requested
  /// a report file or set keep_report (the serve layer returns it over
  /// the wire without touching disk). Null otherwise.
  std::shared_ptr<const obs::RunReport> run_report;
};

/// Caller-supplied overrides for run_scheme. Any member left null is
/// built internally from the config: the scheme via make_scheme (with
/// the Young-interval cadence overlay), the injector as the §5.2
/// evenly-spaced plan (SDC-reclassified when configured), the cluster
/// sized by machine_for with the scheme's replica factor. Benches that
/// need a custom governor, fault plan, or scheme instance set just the
/// members they care about; the pointed-to objects must outlive the
/// call.
struct RunHooks {
  resilience::RecoveryScheme* scheme = nullptr;
  resilience::FaultInjector* injector = nullptr;
  simrt::VirtualCluster* cluster = nullptr;
  /// Called at every residual-history record site (each CG iteration,
  /// plus recovery re-entries, with `amended` set on the latter). Runs
  /// on the solving thread; the serve engine uses it to stream live
  /// progress and to abort cancelled jobs by throwing. Composes with
  /// the flight recorder's own sampling.
  solver::IterationCallback observer = nullptr;
};

/// Run one named scheme against the baseline. The single entry point
/// for scheme runs: pass hooks to customize cluster, injector, or the
/// scheme object itself.
SchemeRun run_scheme(const Workload& workload, const std::string& scheme_name,
                     const ExperimentConfig& config, const FfBaseline& ff,
                     const RunHooks& hooks = {});

/// CR per-checkpoint cost predicted by the machine model (no run needed).
Seconds estimate_checkpoint_seconds(const Workload& workload,
                                    const simrt::MachineConfig& machine,
                                    bool to_disk);

}  // namespace rsls::harness
