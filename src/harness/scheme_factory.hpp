#pragma once
// Recovery scheme construction by paper name, plus the standard scheme
// sets each experiment section uses.

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/detector.hpp"
#include "resilience/scheme.hpp"

namespace rsls::harness {

/// Scheme-construction knobs. This is the single source of truth:
/// ExperimentConfig embeds one of these (`ExperimentConfig::scheme`),
/// and every path that builds a scheme — harness, benches, tests —
/// reads the same fields with the same defaults.
struct SchemeFactoryConfig {
  /// CR checkpoint cadence in iterations.
  Index cr_interval_iterations = 100;
  /// Local CG construction tolerance for LI/LSI. Tight enough that the
  /// reconstruction accuracy — not the inner solve — limits recovery
  /// quality even for large lost blocks (small process counts); Fig. 4
  /// sweeps this explicitly.
  Real fw_cg_tolerance = 1e-10;
  /// Parity blocks m for the ABFT schemes (ESR, ABFT-CR): the number of
  /// simultaneous rank losses survived without rollback / snapshot loss.
  Index abft_parity_blocks = 2;
};

/// Names: "RD", "TMR", "F0", "FI", "LI", "LSI", "LI-DVFS",
/// "LSI-DVFS", "LI(LU)", "LSI(QR)", "CR-D", "CR-M", "CR-2L", "ESR",
/// "ABFT-CR". Throws on unknown names.
/// `initial_guess` seeds FI and CR's pre-checkpoint rollback target.
std::unique_ptr<resilience::RecoveryScheme> make_scheme(
    const std::string& name, const SchemeFactoryConfig& config,
    const RealVec& initial_guess);

/// §5.2 resilience-by-iterations set (Fig. 5, Table 4, Fig. 6).
std::vector<std::string> iteration_scheme_names();

/// §5.3 time/power/energy set (Table 5, Fig. 8).
std::vector<std::string> cost_scheme_names();

/// Every implemented scheme.
std::vector<std::string> all_scheme_names();

/// One SDC detector by name: "checksum", "norm-bound", "residual-gap".
/// Throws on unknown names.
std::unique_ptr<resilience::SdcDetector> make_detector(
    const std::string& name, const resilience::DetectionOptions& options);

/// Every implemented detector, cheapest first.
std::vector<std::string> detector_names();

}  // namespace rsls::harness
