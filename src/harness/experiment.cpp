#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "harness/scheme_factory.hpp"
#include "model/young_daly.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/forward.hpp"
#include "sparse/roster.hpp"

namespace rsls::harness {

namespace {

/// Fault-free "scheme": recover() must never be reached.
class NoRecovery final : public resilience::RecoveryScheme {
 public:
  std::string name() const override { return "FF"; }
  solver::HookAction recover(resilience::RecoveryContext&, Index, Index,
                             std::span<Real>) override {
    throw Error("fault injected into a fault-free run");
  }
};

solver::CgOptions cg_options_for(const ExperimentConfig& config,
                                 Index ff_iterations) {
  solver::CgOptions options;
  options.tolerance = config.tolerance;
  options.max_iterations = config.max_iterations;
  options.record_residual_history = config.record_residuals;
  options.ff_iterations = ff_iterations;
  options.kind = config.solver_kind;
  return options;
}

}  // namespace

simrt::MachineConfig machine_for(Index processes) {
  RSLS_CHECK(processes >= 1);
  simrt::MachineConfig machine = simrt::paper_cluster();
  if (processes > machine.total_cores()) {
    // 2-way hyperthreading, as the paper enables for resilience runs.
    machine.cores_per_socket *= 2;
  }
  while (processes > machine.total_cores()) {
    machine.nodes *= 2;
  }
  return machine;
}

Workload Workload::create(sparse::Csr matrix, Index processes) {
  RealVec b = sparse::make_rhs(matrix);
  const auto n = static_cast<std::size_t>(matrix.rows);
  return Workload{dist::DistMatrix(std::move(matrix), processes), std::move(b),
                  RealVec(n, 0.0)};
}

FfBaseline run_fault_free(const Workload& workload,
                          const ExperimentConfig& config) {
  simrt::VirtualCluster cluster(machine_for(config.processes),
                                config.processes);
  NoRecovery scheme;
  auto injector = resilience::FaultInjector::none();
  RealVec x = workload.x0;
  const auto report = resilience::resilient_solve(
      workload.a, cluster, workload.b, x, scheme, injector,
      cg_options_for(config, 0));
  RSLS_CHECK_MSG(report.cg.converged, "fault-free CG did not converge");
  FfBaseline ff;
  ff.iterations = report.cg.iterations;
  ff.time = report.time;
  ff.energy = report.energy;
  ff.power = report.average_power;
  ff.iteration_seconds =
      report.time / static_cast<double>(std::max<Index>(ff.iterations, 1));
  return ff;
}

Seconds estimate_checkpoint_seconds(const Workload& workload,
                                    const simrt::MachineConfig& machine,
                                    bool to_disk) {
  const Bytes bytes = workload.a.vector_bytes();
  if (to_disk) {
    return machine.disk_latency + bytes / machine.disk_bandwidth;
  }
  const Index nodes_used =
      std::min<Index>(machine.nodes, (workload.a.parts() +
                                      machine.cores_per_node() - 1) /
                                         machine.cores_per_node());
  return machine.mem_latency +
         bytes / static_cast<double>(std::max<Index>(nodes_used, 1)) /
             machine.mem_bandwidth;
}

SchemeRun run_scheme(const Workload& workload, const std::string& scheme_name,
                     const ExperimentConfig& config, const FfBaseline& ff) {
  SchemeFactoryConfig factory;
  factory.fw_cg_tolerance = config.fw_cg_tolerance;
  factory.cr_interval_iterations = config.cr_interval_iterations;
  if (config.use_young_interval &&
      (scheme_name == "CR-D" || scheme_name == "CR-M")) {
    // Effective MTBF under the §5.2 fault density; Young's I_C converted
    // from virtual seconds to an iteration cadence.
    const Seconds mtbf =
        ff.time / static_cast<double>(std::max<Index>(config.faults, 1) + 1);
    const Seconds t_c = estimate_checkpoint_seconds(
        workload, machine_for(config.processes), scheme_name == "CR-D");
    const Seconds interval = model::young_interval(t_c, mtbf);
    factory.cr_interval_iterations = std::max<Index>(
        1, static_cast<Index>(std::llround(interval / ff.iteration_seconds)));
  }
  const auto scheme = make_scheme(scheme_name, factory, workload.x0);

  simrt::VirtualCluster cluster(machine_for(config.processes),
                                config.processes, scheme->replica_factor());
  auto injector = resilience::FaultInjector::evenly_spaced(
      config.faults, ff.iterations, config.processes, config.fault_seed);
  if (config.sdc_faults) {
    injector.as_sdc(config.sdc_mode, config.sdc_target);
  }
  SchemeRun run = run_scheme_on_cluster(workload, scheme_name, *scheme,
                                        injector, cluster, config, ff);
  run.cr_interval_used = factory.cr_interval_iterations;
  return run;
}

SchemeRun run_scheme_on_cluster(const Workload& workload,
                                const std::string& scheme_name,
                                resilience::RecoveryScheme& scheme,
                                resilience::FaultInjector& injector,
                                simrt::VirtualCluster& cluster,
                                const ExperimentConfig& config,
                                const FfBaseline& ff) {
  RealVec x = workload.x0;
  SchemeRun run;
  run.scheme = scheme_name;
  resilience::DetectorSuite detectors =
      config.detection ? resilience::make_detector_suite(config.detection_options)
                       : resilience::DetectorSuite{};
  run.report = resilience::resilient_solve(
      workload.a, cluster, workload.b, x, scheme, injector,
      cg_options_for(config, ff.iterations), detectors, config.hardening);
  // An undetected silent corruption is *allowed* to leave the solver
  // non-converged (or converged on a wrong answer — see
  // report.true_relative_residual); every announced or detected
  // configuration must still converge.
  if (!(config.sdc_faults && !config.detection)) {
    RSLS_CHECK_MSG(run.report.cg.converged,
                   "resilient CG did not converge for scheme " + scheme_name);
  }

  run.iteration_ratio = static_cast<double>(run.report.cg.iterations) /
                        static_cast<double>(std::max<Index>(ff.iterations, 1));
  run.time_ratio = run.report.time / ff.time;
  run.energy_ratio = run.report.energy / ff.energy;
  run.power_ratio = run.report.average_power / ff.power;

  if (const auto* fw =
          dynamic_cast<const resilience::ForwardRecovery*>(&scheme)) {
    run.t_const_mean = fw->mean_construction_seconds();
  }
  if (const auto* cr =
          dynamic_cast<const resilience::CheckpointRestart*>(&scheme)) {
    run.t_c_mean = cr->mean_checkpoint_seconds();
    run.checkpoints = cr->checkpoints_taken();
  }
  return run;
}

}  // namespace rsls::harness
