#include "harness/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "harness/scheme_factory.hpp"
#include "model/young_daly.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "obs/run_report.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/forward.hpp"
#include "sparse/roster.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::harness {

namespace {

/// Fault-free "scheme": recover() must never be reached.
class NoRecovery final : public resilience::RecoveryScheme {
 public:
  std::string name() const override { return "FF"; }
  solver::HookAction recover(resilience::RecoveryContext&, Index, Index,
                             std::span<Real>) override {
    throw Error("fault injected into a fault-free run");
  }
};

solver::CgOptions cg_options_for(const ExperimentConfig& config,
                                 Index ff_iterations) {
  solver::CgOptions options;
  options.tolerance = config.tolerance;
  options.max_iterations = config.max_iterations;
  options.record_residual_history = config.record_residuals;
  options.ff_iterations = ff_iterations;
  options.variant = solver::solver_variant_or_throw(config.solver);
  return options;
}

/// Derived trace file name: trace_<matrix>_<scheme>_<seq>.json. The
/// sequence number keeps sweeps from clobbering each other's traces
/// within one process.
std::string derive_trace_path(const obs::ObservabilityOptions& opts,
                              const std::string& matrix,
                              const std::string& scheme) {
  if (!opts.trace_path.empty()) {
    return opts.trace_path;
  }
  static std::atomic<int> sequence{0};
  const int seq = sequence.fetch_add(1);
  return opts.trace_dir + "/trace_" + obs::sanitize_label(matrix) + "_" +
         obs::sanitize_label(scheme) + "_" + std::to_string(seq) + ".json";
}

/// Assemble the standardized RunReport for one finished scheme run.
obs::RunReport make_run_report(const obs::ObservabilityOptions& opts,
                               const std::string& matrix,
                               const SchemeRun& run,
                               const simrt::VirtualCluster& cluster,
                               const ExperimentConfig& config,
                               const obs::Recorder& recorder) {
  obs::RunReport report;
  report.source = opts.source;
  report.matrix = matrix;
  report.scheme = run.scheme;

  const auto& r = run.report;
  report.config = {
      {"processes", std::to_string(config.processes)},
      {"faults", std::to_string(config.faults)},
      {"tolerance", obs::JsonWriter::number(config.tolerance)},
      {"max_iterations", std::to_string(config.max_iterations)},
      {"fault_seed", std::to_string(config.fault_seed)},
      {"fw_cg_tolerance",
       obs::JsonWriter::number(config.scheme.fw_cg_tolerance)},
      {"cr_interval_iterations",
       std::to_string(config.scheme.cr_interval_iterations)},
      {"solver", config.solver},
      {"preconditioner", config.preconditioner},
      {"spmv_kernel", config.spmv_kernel},
      {"sdc_faults", config.sdc_faults ? "true" : "false"},
      {"detection", config.detection ? "true" : "false"},
      {"replica_factor", std::to_string(cluster.replica_factor())},
      {"net_topology", simrt::net::to_string(cluster.config().net.topology)},
      {"net_collective",
       simrt::net::to_string(cluster.config().net.collective)},
      {"fault_domains", std::to_string(config.fault_domains)},
      {"weibull_shape", obs::JsonWriter::number(config.weibull_shape)},
      {"recovery_policy", resilience::to_string(config.recovery.policy)},
      {"spare_ranks", std::to_string(config.recovery.spare_ranks)},
      {"recovery_retries", std::to_string(config.recovery.max_retries)},
      {"status", resilience::to_string(r.status)},
  };
  report.results = {
      {"iterations", static_cast<double>(r.cg.iterations)},
      {"converged", r.cg.converged ? 1.0 : 0.0},
      {"relative_residual", r.cg.relative_residual},
      {"true_relative_residual", r.true_relative_residual},
      {"time_s", r.time},
      {"energy_j", r.energy},
      {"average_power_w", r.average_power},
      {"faults", static_cast<double>(r.faults)},
      {"recoveries", static_cast<double>(r.recoveries)},
      {"detections", static_cast<double>(r.detections)},
      {"nested_faults", static_cast<double>(r.nested_faults)},
      {"escalations", static_cast<double>(r.escalations)},
      {"declared_failure",
       r.status == resilience::SolveStatus::kDeclaredFailure ? 1.0 : 0.0},
      {"recovery_attempts", static_cast<double>(r.recovery_attempts)},
      {"recovery_retries", static_cast<double>(r.recovery_retries)},
      {"recovery_timeouts", static_cast<double>(r.recovery_timeouts)},
      {"recoveries_struck", static_cast<double>(r.recoveries_struck)},
      {"spares_consumed", static_cast<double>(r.spares_consumed)},
      {"spare_pool_dry", static_cast<double>(r.spare_pool_dry)},
      {"shrink_events", static_cast<double>(r.shrink_events)},
      {"domain_faults", static_cast<double>(r.domain_faults)},
      {"iteration_ratio", run.iteration_ratio},
      {"time_ratio", run.time_ratio},
      {"energy_ratio", run.energy_ratio},
      {"power_ratio", run.power_ratio},
      {"t_const_mean_s", run.t_const_mean},
      {"t_c_mean_s", run.t_c_mean},
      {"checkpoints", static_cast<double>(run.checkpoints)},
  };
  for (std::size_t i = 0; i < power::kPhaseTagCount; ++i) {
    const auto tag = static_cast<power::PhaseTag>(i);
    report.phase_core_energy.emplace_back(power::to_string(tag),
                                          r.account.core_energy(tag));
  }
  report.node_constant_energy = cluster.node_constant_energy();
  report.sleep_energy = cluster.sleep_energy();
  report.total_energy = r.energy;
  report.metrics = recorder.metrics().snapshot();
  // Realized fault schedule, flattened to the obs-neutral entry type.
  // Replayable via FaultInjector::from_schedule.
  report.fault_schedule.reserve(r.fault_schedule.size());
  for (const resilience::FaultRecord& record : r.fault_schedule) {
    obs::FaultScheduleEntry entry;
    entry.time_s = record.time;
    entry.iteration = static_cast<double>(record.iteration);
    entry.ranks = record.ranks;
    entry.fault_class =
        record.cls == resilience::FaultClass::kProcessLoss ? "process-loss"
                                                           : "sdc";
    entry.corruption_seed = record.corruption_seed;
    entry.domain_event = record.domain_event;
    report.fault_schedule.push_back(std::move(entry));
  }
  // schema_version 2 blocks (each omitted when the feature is off).
  report.series = recorder.series_snapshot();
  if (recorder.per_rank_enabled()) {
    for (const auto& [rank, phases] : recorder.per_rank_core_energy()) {
      obs::RankEnergy entry;
      entry.rank = rank;
      for (std::size_t i = 0; i < power::kPhaseTagCount; ++i) {
        if (phases[i] != 0.0) {
          entry.phase_core_energy.emplace_back(
              power::to_string(static_cast<power::PhaseTag>(i)), phases[i]);
        }
        entry.total += phases[i];
      }
      report.per_rank.push_back(std::move(entry));
    }
  }
  return report;
}

}  // namespace

namespace {

/// Environment overlay for the interconnect: RSLS_NET_TOPOLOGY /
/// RSLS_NET_COLLECTIVE retarget every harness-built cluster without
/// touching bench flags. Unparsable values warn once and keep the
/// default (matching the env registry's fallback-on-garbage contract).
void apply_net_env(simrt::net::NetworkConfig& net) {
  if (const auto name = env::net_topology()) {
    if (const auto kind = simrt::net::topology_from_name(*name)) {
      net.topology = *kind;
    } else {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        RSLS_WARN << "RSLS_NET_TOPOLOGY=" << *name
                  << " is not flat|fat-tree|torus3d; keeping "
                  << simrt::net::to_string(net.topology);
      }
    }
  }
  if (const auto name = env::net_collective()) {
    if (const auto kind = simrt::net::collective_from_name(*name)) {
      net.collective = *kind;
    } else {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        RSLS_WARN << "RSLS_NET_COLLECTIVE=" << *name
                  << " is not recursive-doubling|ring|binomial-tree; keeping "
                  << simrt::net::to_string(net.collective);
      }
    }
  }
}

/// Environment overlay for the resilience knobs, applied only to fields
/// still at their defaults so explicit bench settings always win. A
/// spare pool with no explicit policy implies spare substitution.
ExperimentConfig with_resilience_env(const ExperimentConfig& in) {
  ExperimentConfig config = in;
  if (!config.env_overlay) {
    return config;  // caller resolved the environment already
  }
  // Solver knobs overlay onto fields still at their registry defaults;
  // unparsable values warn once and keep the default (the apply_net_env
  // contract — env garbage must never abort a run that did not opt in).
  if (config.solver == "cg") {
    if (const auto name = env::solver_name()) {
      if (solver::solver_variant_from_name(*name).has_value()) {
        config.solver = *name;
      } else {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          RSLS_WARN << "RSLS_SOLVER=" << *name
                    << " is not cg|pipelined-cg; keeping cg";
        }
      }
    }
  }
  if (config.preconditioner == "identity") {
    if (const auto name = env::preconditioner_name()) {
      const auto& roster = solver::preconditioner_names();
      if (std::find(roster.begin(), roster.end(), *name) != roster.end()) {
        config.preconditioner = *name;
      } else {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          RSLS_WARN << "RSLS_PRECONDITIONER=" << *name
                    << " is not identity|jacobi|block-jacobi|ic0; "
                       "keeping identity";
        }
      }
    }
  }
  if (config.spmv_kernel == "csr-scalar") {
    if (const auto name = env::spmv_kernel_name()) {
      if (sparse::spmv_kernel_from_name(*name) != nullptr) {
        config.spmv_kernel = *name;
      } else {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          RSLS_WARN << "RSLS_SPMV_KERNEL=" << *name
                    << " is not csr-scalar|csr-simd|sell-c-sigma; keeping "
                       "csr-scalar";
        }
      }
    }
  }
  if (config.fault_domains == 0) {
    config.fault_domains = env::fault_domains();
  }
  if (config.weibull_shape == 0.0) {
    config.weibull_shape = env::weibull_shape();
  }
  if (config.recovery.spare_ranks == 0) {
    config.recovery.spare_ranks = env::spare_ranks();
  }
  if (config.recovery.max_retries == 0) {
    config.recovery.max_retries = env::recovery_retries();
  }
  if (config.recovery.policy == resilience::RecoveryPolicy::kInPlace &&
      config.recovery.spare_ranks > 0) {
    config.recovery.policy = resilience::RecoveryPolicy::kSpare;
  }
  return config;
}

}  // namespace

simrt::MachineConfig machine_for(Index processes) {
  RSLS_CHECK(processes >= 1);
  simrt::MachineConfig machine = simrt::paper_cluster();
  if (processes > machine.total_cores()) {
    // 2-way hyperthreading, as the paper enables for resilience runs.
    machine.cores_per_socket *= 2;
  }
  while (processes > machine.total_cores()) {
    machine.nodes *= 2;
  }
  apply_net_env(machine.net);
  return machine;
}

Workload Workload::create(sparse::Csr matrix, Index processes,
                          std::string label) {
  RealVec b = sparse::make_rhs(matrix);
  const auto n = static_cast<std::size_t>(matrix.rows);
  return Workload{dist::DistMatrix(std::move(matrix), processes), std::move(b),
                  RealVec(n, 0.0), std::move(label)};
}

FfBaseline run_fault_free(const Workload& workload,
                          const ExperimentConfig& config_in) {
  // Resolve the environment exactly as run_scheme does, so the baseline
  // and every scheme run agree on solver variant and preconditioner.
  const ExperimentConfig config = with_resilience_env(config_in);
  simrt::MachineConfig machine = machine_for(config.processes);
  if (config.network.has_value()) {
    machine.net = *config.network;
  }
  simrt::VirtualCluster cluster(machine, config.processes);
  NoRecovery scheme;
  auto injector = resilience::FaultInjector::none();
  RealVec x = workload.x0;
  const auto preconditioner =
      solver::make_preconditioner(config.preconditioner);
  const sparse::SpmvKernel* spmv_kernel =
      &sparse::spmv_kernel_or_throw(config.spmv_kernel);
  const auto spmv_plan = spmv_kernel->prepare(workload.a.global());
  preconditioner->set_spmv_kernel(spmv_kernel);
  solver::CgOptions solve_options = cg_options_for(config, 0);
  solve_options.preconditioner = preconditioner.get();
  solve_options.spmv_plan = spmv_plan.get();
  solve_options.spmv_kernel = spmv_kernel;
  const auto report = resilience::resilient_solve(
      workload.a, cluster, workload.b, x, scheme, injector, solve_options);
  RSLS_CHECK_MSG(report.cg.converged, "fault-free CG did not converge");
  FfBaseline ff;
  ff.iterations = report.cg.iterations;
  ff.time = report.time;
  ff.energy = report.energy;
  ff.power = report.average_power;
  ff.iteration_seconds =
      report.time / static_cast<double>(std::max<Index>(ff.iterations, 1));
  return ff;
}

Seconds estimate_checkpoint_seconds(const Workload& workload,
                                    const simrt::MachineConfig& machine,
                                    bool to_disk) {
  const Bytes bytes = workload.a.vector_bytes();
  if (to_disk) {
    return machine.disk_latency + bytes / machine.disk_bandwidth;
  }
  const Index nodes_used =
      std::min<Index>(machine.nodes, (workload.a.parts() +
                                      machine.cores_per_node() - 1) /
                                         machine.cores_per_node());
  return machine.mem_latency +
         bytes / static_cast<double>(std::max<Index>(nodes_used, 1)) /
             machine.mem_bandwidth;
}

SchemeRun run_scheme(const Workload& workload, const std::string& scheme_name,
                     const ExperimentConfig& config_in, const FfBaseline& ff,
                     const RunHooks& hooks) {
  // Build whatever the caller did not hook in. Everything derived here
  // is a pure function of (workload, config, ff) and the environment
  // snapshot, so concurrent cells running the same inputs produce
  // bit-identical results in any schedule.
  const ExperimentConfig config = with_resilience_env(config_in);
  std::unique_ptr<resilience::RecoveryScheme> owned_scheme;
  Index cr_interval_used = 0;
  resilience::RecoveryScheme* scheme_ptr = hooks.scheme;
  if (scheme_ptr == nullptr) {
    SchemeFactoryConfig factory = config.scheme;
    if (config.use_young_interval &&
        (scheme_name == "CR-D" || scheme_name == "CR-M")) {
      // Effective MTBF under the §5.2 fault density; Young's I_C
      // converted from virtual seconds to an iteration cadence.
      const Seconds mtbf =
          ff.time / static_cast<double>(std::max<Index>(config.faults, 1) + 1);
      const Seconds t_c = estimate_checkpoint_seconds(
          workload, machine_for(config.processes), scheme_name == "CR-D");
      const Seconds interval = model::young_interval(t_c, mtbf);
      factory.cr_interval_iterations = std::max<Index>(
          1, static_cast<Index>(std::llround(interval / ff.iteration_seconds)));
    }
    owned_scheme = make_scheme(scheme_name, factory, workload.x0);
    scheme_ptr = owned_scheme.get();
    cr_interval_used = factory.cr_interval_iterations;
  }
  resilience::RecoveryScheme& scheme = *scheme_ptr;

  std::optional<simrt::VirtualCluster> owned_cluster;
  simrt::VirtualCluster* cluster_ptr = hooks.cluster;
  if (cluster_ptr == nullptr) {
    simrt::MachineConfig machine = machine_for(config.processes);
    if (config.network.has_value()) {
      machine.net = *config.network;
    }
    owned_cluster.emplace(machine, config.processes, scheme.replica_factor());
    cluster_ptr = &*owned_cluster;
  }
  simrt::VirtualCluster& cluster = *cluster_ptr;

  std::optional<resilience::FaultInjector> owned_injector;
  resilience::FaultInjector* injector_ptr = hooks.injector;
  if (injector_ptr == nullptr) {
    if (config.weibull_shape > 0.0) {
      // Weibull arrivals at the §5.2 effective MTBF, so shape sweeps
      // hold the mean fault density fixed.
      const Seconds mtbf =
          ff.time / static_cast<double>(std::max<Index>(config.faults, 1) + 1);
      owned_injector.emplace(resilience::FaultInjector::weibull(
          mtbf, config.weibull_shape, config.processes, config.fault_seed));
    } else {
      owned_injector.emplace(resilience::FaultInjector::evenly_spaced(
          config.faults, ff.iterations, config.processes, config.fault_seed));
    }
    if (config.fault_burstiness > 0.0) {
      owned_injector->with_burstiness(config.fault_burstiness,
                                      config.burst_compression);
    }
    if (config.fault_domains > 0) {
      // The cluster is built above, so the live topology is available:
      // structured networks supply their own domains, the flat network
      // gets synthetic contiguous groups of the requested size.
      const auto& topo = cluster.interconnect().topology();
      owned_injector->with_domains(
          topo.uniform() ? resilience::FailureDomains::synthetic(
                               config.processes, config.fault_domains)
                         : resilience::FailureDomains::from_topology(topo));
    }
    if (config.sdc_faults) {
      owned_injector->as_sdc(config.sdc_mode, config.sdc_target);
    }
    injector_ptr = &*owned_injector;
  }
  resilience::FaultInjector& injector = *injector_ptr;

  RealVec x = workload.x0;
  SchemeRun run;
  run.scheme = scheme_name;
  run.cr_interval_used = cr_interval_used;
  // Comm totals at entry: a hooked cluster outlives this run, so every
  // comm.* metric below reports the delta over this run only.
  const simrt::net::CommStats comm_begin = cluster.comm_stats();
  resilience::DetectorSuite detectors =
      config.detection ? resilience::make_detector_suite(config.detection_options)
                       : resilience::DetectorSuite{};

  // Observability session: flag- or environment-driven. The recorder
  // rides the cluster's charge path; resilient_solve opens the spans.
  // keep_report implies a live recorder even without artifact paths: the
  // report is assembled for the caller instead of (or on top of) disk.
  obs::ObservabilityOptions obs_opts =
      obs::resolve_from_env(config.observability);
  if (obs_opts.keep_report) {
    obs_opts.enabled = true;
  }
  obs::Recorder recorder;
  obs::Recorder* rec = nullptr;
  if (obs_opts.enabled) {
    rec = &recorder;
    recorder.set_scheme(scheme_name);
    recorder.set_record_charges(obs_opts.include_charges);
    if (obs_opts.series) {
      obs::SeriesOptions series_options;
      series_options.stride = obs_opts.series_stride;
      series_options.max_points = obs_opts.series_max_points;
      recorder.enable_series(series_options);
    }
    if (obs_opts.per_rank) {
      recorder.enable_per_rank_energy();
    }
    if (obs_opts.wants_trace() && obs_opts.power_bin > 0.0 &&
        !cluster.power_trace_enabled()) {
      cluster.enable_power_trace(obs_opts.power_bin);
    }
    recorder.attach(cluster);
  }

  // The preconditioner instance is owned here and borrowed by the
  // solver; it must outlive resilient_solve (which also calls its
  // rebuild_local after process losses).
  const auto preconditioner =
      solver::make_preconditioner(config.preconditioner);
  const sparse::SpmvKernel* spmv_kernel =
      &sparse::spmv_kernel_or_throw(config.spmv_kernel);
  const auto spmv_plan = spmv_kernel->prepare(workload.a.global());
  preconditioner->set_spmv_kernel(spmv_kernel);
  solver::CgOptions solve_options = cg_options_for(config, ff.iterations);
  solve_options.preconditioner = preconditioner.get();
  solve_options.spmv_plan = spmv_plan.get();
  solve_options.spmv_kernel = spmv_kernel;
  solve_options.observer = hooks.observer;
  run.report = resilience::resilient_solve(
      workload.a, cluster, workload.b, x, scheme, injector, solve_options,
      detectors, config.hardening, rec, config.recovery);
  // An undetected silent corruption is *allowed* to leave the solver
  // non-converged (or converged on a wrong answer — see
  // report.true_relative_residual); likewise a fallible recovery path,
  // correlated domain faults, or stochastic Weibull arrivals can
  // legitimately end in a declared failure or overwhelm a scheme's
  // protection capability. Every announced infallible configuration must
  // still converge.
  const bool failure_allowed =
      (config.sdc_faults && !config.detection) || config.recovery.enabled() ||
      config.fault_domains > 0 || config.weibull_shape > 0.0;
  if (!failure_allowed) {
    RSLS_CHECK_MSG(run.report.cg.converged,
                   "resilient CG did not converge for scheme " + scheme_name);
  }

  run.iteration_ratio = static_cast<double>(run.report.cg.iterations) /
                        static_cast<double>(std::max<Index>(ff.iterations, 1));
  run.time_ratio = run.report.time / ff.time;
  run.energy_ratio = run.report.energy / ff.energy;
  run.power_ratio = run.report.average_power / ff.power;

  if (const auto* fw =
          dynamic_cast<const resilience::ForwardRecovery*>(&scheme)) {
    run.t_const_mean = fw->mean_construction_seconds();
  }
  if (const auto* cr =
          dynamic_cast<const resilience::CheckpointRestart*>(&scheme)) {
    run.t_c_mean = cr->mean_checkpoint_seconds();
    run.checkpoints = cr->checkpoints_taken();
  }

  if (rec != nullptr) {
    // Interconnect accounting rides along with the instrument metrics,
    // as this run's delta over the entry snapshot (a hooked cluster's
    // running totals would otherwise accumulate across a sweep).
    const simrt::net::CommStats comm =
        simrt::net::diff(cluster.comm_stats(), comm_begin);
    recorder.metrics().counter("comm.messages").add(comm.messages);
    recorder.metrics().counter("comm.wire_bytes").add(comm.wire_bytes);
    recorder.metrics().counter("comm.allreduces").add(comm.allreduces);
    recorder.metrics().counter("comm.p2p_messages").add(comm.p2p_messages);
    recorder.metrics().counter("comm.halo_messages").add(comm.halo_messages);
    recorder.metrics()
        .counter("comm.gather_messages")
        .add(comm.gather_messages);
    recorder.metrics()
        .counter("comm.replica_fetches")
        .add(comm.replica_fetches);
    recorder.metrics()
        .counter("comm.allreduce_exposed_s")
        .add(comm.allreduce_exposed_seconds);
    recorder.metrics()
        .counter("comm.allreduce_hidden_s")
        .add(comm.allreduce_hidden_seconds);
    recorder.metrics().gauge("comm.max_contention").set(comm.max_contention);
    if (cluster.event_log_enabled()) {
      // Silent ring-buffer eviction made visible: a nonzero counter says
      // the event log no longer holds the whole run.
      recorder.metrics()
          .counter("simrt.events_dropped")
          .add(static_cast<double>(cluster.event_log().dropped()));
    }
    run.metrics = recorder.metrics().snapshot();
    run.series = recorder.series_snapshot();
    const std::string matrix =
        workload.label.empty() ? std::string("matrix") : workload.label;
    if (obs_opts.wants_trace()) {
      obs::ChromeTraceOptions trace_options;
      trace_options.include_charges = obs_opts.include_charges;
      obs::write_chrome_trace_file(
          derive_trace_path(obs_opts, matrix, scheme_name), recorder,
          trace_options);
    }
    if (obs_opts.wants_report() || obs_opts.keep_report) {
      auto report = std::make_shared<obs::RunReport>(
          make_run_report(obs_opts, matrix, run, cluster, config, recorder));
      if (obs_opts.wants_report()) {
        obs::append_run_report(obs_opts.report_path, *report);
      }
      if (obs_opts.keep_report) {
        run.run_report = std::move(report);
      }
    }
    recorder.detach();
  }
  return run;
}

}  // namespace rsls::harness
