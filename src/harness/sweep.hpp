#pragma once
// Roster-wide sweeps: run a scheme set over the 14-matrix roster sharing
// one fault-free baseline per matrix, plus aggregation helpers for the
// "averaged over all matrices" rows of Table 5 and Fig. 7b.

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace rsls::harness {

struct MatrixResult {
  std::string matrix;
  FfBaseline ff;
  std::vector<SchemeRun> runs;
};

/// Run `schemes` over every roster matrix. `quick` selects the shrunken
/// generator variants (RSLS_QUICK).
std::vector<MatrixResult> sweep_roster(const std::vector<std::string>& schemes,
                                       const ExperimentConfig& config,
                                       bool quick);

/// Run `schemes` over the named roster matrices only.
std::vector<MatrixResult> sweep_matrices(
    const std::vector<std::string>& names,
    const std::vector<std::string>& schemes, const ExperimentConfig& config,
    bool quick);

struct SchemeAverages {
  std::string scheme;
  double iteration_ratio = 0.0;
  double time_ratio = 0.0;
  double energy_ratio = 0.0;
  double power_ratio = 0.0;
  /// Mean E_res/E_solve across matrices (Fig. 7b's right axis).
  double e_res_over_e_solve = 0.0;
};

/// Geometric-mean ratios per scheme across all matrices in `results`.
std::vector<SchemeAverages> average_over_matrices(
    const std::vector<MatrixResult>& results);

}  // namespace rsls::harness
