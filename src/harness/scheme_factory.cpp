#include "harness/scheme_factory.hpp"

#include "abft/encoded_checkpoint.hpp"
#include "abft/esr.hpp"
#include "core/error.hpp"
#include "resilience/dmr.hpp"
#include "resilience/multilevel.hpp"
#include "resilience/tmr.hpp"
#include "resilience/forward.hpp"

namespace rsls::harness {

using resilience::CheckpointOptions;
using resilience::CheckpointRestart;
using resilience::CheckpointTarget;
using resilience::Dmr;
using resilience::ForwardRecovery;

std::unique_ptr<resilience::RecoveryScheme> make_scheme(
    const std::string& name, const SchemeFactoryConfig& config,
    const RealVec& initial_guess) {
  if (name == "RD") {
    return std::make_unique<Dmr>();
  }
  if (name == "TMR") {
    return std::make_unique<resilience::Tmr>();
  }
  if (name == "CR-2L") {
    resilience::MultiLevelOptions options;
    options.l1_interval_iterations =
        std::max<Index>(1, config.cr_interval_iterations / 4);
    options.l2_interval_iterations = options.l1_interval_iterations * 8;
    return std::make_unique<resilience::MultiLevelCheckpoint>(options,
                                                              initial_guess);
  }
  if (name == "F0") {
    return ForwardRecovery::f0();
  }
  if (name == "FI") {
    return ForwardRecovery::fi(initial_guess);
  }
  if (name == "LI") {
    return ForwardRecovery::li_cg(config.fw_cg_tolerance, /*dvfs=*/false);
  }
  if (name == "LI-DVFS") {
    return ForwardRecovery::li_cg(config.fw_cg_tolerance, /*dvfs=*/true);
  }
  if (name == "LI(LU)") {
    return ForwardRecovery::li_lu();
  }
  if (name == "LSI") {
    return ForwardRecovery::lsi_cg(config.fw_cg_tolerance, /*dvfs=*/false);
  }
  if (name == "LSI-DVFS") {
    return ForwardRecovery::lsi_cg(config.fw_cg_tolerance, /*dvfs=*/true);
  }
  if (name == "LSI(QR)") {
    return ForwardRecovery::lsi_qr();
  }
  if (name == "ESR") {
    abft::EsrOptions options;
    options.parity_blocks = config.abft_parity_blocks;
    return std::make_unique<abft::EsrScheme>(options);
  }
  if (name == "ABFT-CR") {
    abft::EncodedCheckpointOptions options;
    options.interval_iterations = config.cr_interval_iterations;
    options.parity_blocks = config.abft_parity_blocks;
    return std::make_unique<abft::EncodedCheckpoint>(options, initial_guess);
  }
  if (name == "CR-D" || name == "CR-M") {
    CheckpointOptions options;
    options.target =
        name == "CR-D" ? CheckpointTarget::kDisk : CheckpointTarget::kMemory;
    options.interval_iterations = config.cr_interval_iterations;
    return std::make_unique<CheckpointRestart>(options, initial_guess);
  }
  throw Error("unknown recovery scheme: " + name);
}

std::vector<std::string> iteration_scheme_names() {
  return {"RD", "F0", "FI", "LI", "LSI", "CR-D"};
}

std::vector<std::string> cost_scheme_names() {
  return {"RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"};
}

std::vector<std::string> all_scheme_names() {
  return {"RD",      "TMR",      "F0",       "FI",      "LI",   "LI-DVFS",
          "LI(LU)",  "LSI",      "LSI-DVFS", "LSI(QR)", "CR-D", "CR-M",
          "CR-2L",   "ESR",      "ABFT-CR"};
}

std::unique_ptr<resilience::SdcDetector> make_detector(
    const std::string& name, const resilience::DetectionOptions& options) {
  if (name == "checksum") {
    return std::make_unique<resilience::BlockChecksumDetector>();
  }
  if (name == "norm-bound") {
    return std::make_unique<resilience::NormBoundDetector>(
        options.norm_growth_factor);
  }
  if (name == "residual-gap") {
    return std::make_unique<resilience::ResidualGapDetector>(
        options.residual_gap_cadence, options.residual_gap_factor,
        options.residual_gap_floor);
  }
  throw Error("unknown SDC detector: " + name);
}

std::vector<std::string> detector_names() {
  return {"checksum", "norm-bound", "residual-gap"};
}

}  // namespace rsls::harness
