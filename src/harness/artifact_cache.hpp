#pragma once
// Keyed cache of immutable solve artifacts: a workload (partitioned
// matrix + rhs + guess), the ordering permutation applied to it, and
// its fault-free baseline. This is the generalization of the Runner's
// per-group baseline sharing — instead of "one baseline per GroupSpec",
// any consumer (Runner sweeps, the serve daemon's job engine) asks the
// cache by content key and the expensive derivation runs at most once
// per distinct key, process-wide if the cache is shared.
//
// The split matters for serving: the cached value is strictly immutable
// matrix-side state (safe to share across concurrent jobs), while all
// per-job solver state (iterate, fault plan, recorder) stays outside.
//
// Keys are content hashes: FNV-1a over the matrix structure and values
// plus every baseline-relevant config field (partition count, ordering,
// tolerance, iteration cap, solver kind, resolved interconnect), so two
// jobs naming the same problem hit the same entry and bitwise-identical
// baselines — and two jobs differing in any relevant knob never alias.
//
// Concurrency: get_or_build is thread-safe with in-flight deduplication
// — the first caller of a key builds, later callers of the same key
// block on the same shared_future and count as hits (so hit/miss totals
// are schedule-independent: misses == distinct keys built). Completed
// entries are evicted LRU beyond the capacity; in-flight entries are
// never evicted.

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/types.hpp"
#include "harness/experiment.hpp"
#include "sparse/csr.hpp"

namespace rsls::harness {

/// Immutable per-problem state shared by every job that names the same
/// (matrix, partition, ordering, baseline config).
struct SolveArtifacts {
  std::shared_ptr<const Workload> workload;
  /// Symmetric permutation applied to the matrix (empty = natural
  /// ordering). new_index = permutation[old_index].
  IndexVec permutation;
  FfBaseline ff;
};

class ArtifactCache {
 public:
  /// Retain at most `max_entries` completed entries (LRU eviction);
  /// values < 1 are clamped to 1.
  explicit ArtifactCache(std::size_t max_entries = 32);

  using Builder = std::function<SolveArtifacts()>;

  /// Return the artifacts for `key`, invoking `build` exactly once per
  /// distinct key (across all threads). Throws whatever `build` throws;
  /// a failed build is not cached, so the next caller retries.
  std::shared_ptr<const SolveArtifacts> get_or_build(const std::string& key,
                                                     const Builder& build);

  /// Monotone counters + current size; hits include joins on an
  /// in-flight build.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };
  Stats stats() const;

  std::size_t max_entries() const { return max_entries_; }

  /// FNV-1a over dimensions, structure, and values of a CSR matrix.
  static std::uint64_t fingerprint(const sparse::Csr& matrix);

  /// Content key for a prepared workload under `config`: matrix/rhs/x0
  /// fingerprints × partition count × `ordering` label × tolerance ×
  /// iteration cap × solver kind × the resolved interconnect (explicit
  /// config.network, else the machine_for default including env).
  static std::string key_for(const Workload& workload,
                             const ExperimentConfig& config,
                             const std::string& ordering = "natural");

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const SolveArtifacts>> future;
    bool ready = false;
    /// Position in lru_ (most-recent at front); valid when ready.
    std::list<std::string>::iterator lru_pos;
  };

  void touch(Entry& entry, const std::string& key);
  void evict_excess();

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // completed keys, most-recent first
  Stats stats_;
};

}  // namespace rsls::harness
