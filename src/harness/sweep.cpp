#include "harness/sweep.hpp"

#include <map>
#include <utility>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "harness/runner.hpp"
#include "sparse/roster.hpp"

namespace rsls::harness {

std::vector<MatrixResult> sweep_matrices(
    const std::vector<std::string>& names,
    const std::vector<std::string>& schemes, const ExperimentConfig& config,
    bool quick) {
  // One group per matrix (workload + fault-free baseline shared by its
  // scheme cells), fanned across RSLS_JOBS workers. Cell results are
  // bit-identical to the old serial loop at any worker count.
  std::vector<GroupSpec> groups;
  groups.reserve(names.size());
  for (const auto& name : names) {
    const auto& entry = sparse::roster_entry(name);
    GroupSpec group;
    group.label = entry.name;
    group.config = config;
    group.make_workload = [&entry, processes = config.processes, quick] {
      return Workload::create(entry.make(quick), processes, entry.name);
    };
    for (const auto& scheme : schemes) {
      group.cells.push_back(CellSpec{scheme, std::nullopt, nullptr});
    }
    groups.push_back(std::move(group));
  }

  Runner runner;
  auto group_results = runner.run(groups);

  std::vector<MatrixResult> results;
  results.reserve(group_results.size());
  for (auto& group : group_results) {
    results.push_back(MatrixResult{std::move(group.label), group.ff,
                                   std::move(group.runs)});
  }
  return results;
}

std::vector<MatrixResult> sweep_roster(const std::vector<std::string>& schemes,
                                       const ExperimentConfig& config,
                                       bool quick) {
  std::vector<std::string> names;
  for (const auto& entry : sparse::roster()) {
    names.push_back(entry.name);
  }
  return sweep_matrices(names, schemes, config, quick);
}

std::vector<SchemeAverages> average_over_matrices(
    const std::vector<MatrixResult>& results) {
  RSLS_CHECK(!results.empty());
  // scheme → per-matrix ratio samples, in first-seen scheme order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> iters, times, energies, powers,
      res_ratios;
  for (const auto& result : results) {
    const Joules e_solve = result.ff.energy;
    for (const auto& run : result.runs) {
      if (iters.find(run.scheme) == iters.end()) {
        order.push_back(run.scheme);
      }
      iters[run.scheme].push_back(run.iteration_ratio);
      times[run.scheme].push_back(run.time_ratio);
      energies[run.scheme].push_back(run.energy_ratio);
      powers[run.scheme].push_back(run.power_ratio);
      res_ratios[run.scheme].push_back(
          (run.report.energy - e_solve) / e_solve);
    }
  }
  std::vector<SchemeAverages> averages;
  for (const auto& scheme : order) {
    SchemeAverages avg;
    avg.scheme = scheme;
    avg.iteration_ratio = geometric_mean(iters[scheme]);
    avg.time_ratio = geometric_mean(times[scheme]);
    avg.energy_ratio = geometric_mean(energies[scheme]);
    avg.power_ratio = geometric_mean(powers[scheme]);
    avg.e_res_over_e_solve = mean(res_ratios[scheme]);
    averages.push_back(avg);
  }
  return averages;
}

}  // namespace rsls::harness
