#pragma once
// Umbrella header: the public API of RSLS in one include.
//
//   #include "rsls.hpp"
//
// Layering (bottom-up): core → sparse/la → power → simrt → obs → dist →
// solver → resilience → abft → model → harness. Include individual
// headers instead when compile time matters.

// Core utilities
#include "core/csv.hpp"      // IWYU pragma: export
#include "core/env.hpp"      // IWYU pragma: export
#include "core/error.hpp"    // IWYU pragma: export
#include "core/log.hpp"      // IWYU pragma: export
#include "core/options.hpp"  // IWYU pragma: export
#include "core/rng.hpp"      // IWYU pragma: export
#include "core/stats.hpp"    // IWYU pragma: export
#include "core/table.hpp"    // IWYU pragma: export
#include "core/types.hpp"    // IWYU pragma: export
#include "core/units.hpp"    // IWYU pragma: export

// Sparse matrices and generators
#include "sparse/coo.hpp"           // IWYU pragma: export
#include "sparse/csr.hpp"           // IWYU pragma: export
#include "sparse/dense.hpp"         // IWYU pragma: export
#include "sparse/generators.hpp"    // IWYU pragma: export
#include "sparse/matrix_stats.hpp"  // IWYU pragma: export
#include "sparse/mmio.hpp"          // IWYU pragma: export
#include "sparse/ordering.hpp"      // IWYU pragma: export
#include "sparse/roster.hpp"        // IWYU pragma: export
#include "sparse/vector_ops.hpp"    // IWYU pragma: export

// Dense and local iterative linear algebra
#include "la/condition.hpp"  // IWYU pragma: export
#include "la/factor.hpp"     // IWYU pragma: export
#include "la/flops.hpp"      // IWYU pragma: export
#include "la/local_cg.hpp"   // IWYU pragma: export
#include "la/qr.hpp"         // IWYU pragma: export

// Power model and governors
#include "power/governor.hpp"     // IWYU pragma: export
#include "power/power_model.hpp"  // IWYU pragma: export
#include "power/rapl.hpp"         // IWYU pragma: export

// Virtual cluster
#include "simrt/cluster.hpp"    // IWYU pragma: export
#include "simrt/event_log.hpp"  // IWYU pragma: export
#include "simrt/machine.hpp"    // IWYU pragma: export
#include "simrt/trace.hpp"      // IWYU pragma: export

// Observability: metrics, virtual-time spans, exporters
#include "obs/chrome_trace.hpp"    // IWYU pragma: export
#include "obs/json.hpp"            // IWYU pragma: export
#include "obs/metrics.hpp"         // IWYU pragma: export
#include "obs/observability.hpp"   // IWYU pragma: export
#include "obs/recorder.hpp"        // IWYU pragma: export
#include "obs/run_report.hpp"      // IWYU pragma: export

// Distributed data structures and kernels
#include "dist/dist_matrix.hpp"  // IWYU pragma: export
#include "dist/dist_ops.hpp"     // IWYU pragma: export
#include "dist/partition.hpp"    // IWYU pragma: export

// Solvers
#include "solver/cg.hpp"            // IWYU pragma: export
#include "solver/reference_cg.hpp"  // IWYU pragma: export

// Resilience
#include "resilience/checkpoint.hpp"       // IWYU pragma: export
#include "resilience/dmr.hpp"              // IWYU pragma: export
#include "resilience/fault.hpp"            // IWYU pragma: export
#include "resilience/forward.hpp"          // IWYU pragma: export
#include "resilience/multilevel.hpp"       // IWYU pragma: export
#include "resilience/resilient_solve.hpp"  // IWYU pragma: export
#include "resilience/scheme.hpp"           // IWYU pragma: export
#include "resilience/tmr.hpp"              // IWYU pragma: export

// Algorithm-based fault tolerance (erasure-coded redundancy)
#include "abft/encoded_checkpoint.hpp"  // IWYU pragma: export
#include "abft/encoding.hpp"            // IWYU pragma: export
#include "abft/esr.hpp"                 // IWYU pragma: export

// Analytical models and projection
#include "model/comm_scaling.hpp"  // IWYU pragma: export
#include "model/cost_models.hpp"   // IWYU pragma: export
#include "model/mtbf.hpp"          // IWYU pragma: export
#include "model/projection.hpp"    // IWYU pragma: export
#include "model/young_daly.hpp"    // IWYU pragma: export

// Experiment harness
#include "harness/experiment.hpp"      // IWYU pragma: export
#include "harness/scheme_factory.hpp"  // IWYU pragma: export
#include "harness/sweep.hpp"           // IWYU pragma: export
