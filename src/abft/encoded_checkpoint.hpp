#pragma once
// ABFT-CR — encoded in-memory checkpointing.
//
// CR-M's node-local checkpoint dies with the node that holds it: a
// multi-rank loss takes both the live state *and* the failed ranks'
// snapshot shares, forcing a fall-through to older/remote state. ABFT-CR
// closes that hole with erasure coding instead of remote copies: every
// `interval_iterations` the iterate is snapshotted to node-local memory
// and m Vandermonde parity blocks of the snapshot are built (charged
// under PhaseTag::kEncode). When up to m ranks die at once, the dead
// ranks' snapshot shares are reconstructed from the surviving shares and
// the parity, and the solve rolls back to the decoded snapshot — the
// classical CR rollback cost, but with no snapshot ever lost to ≤ m
// concurrent failures. Beyond m losses the snapshot is genuinely gone
// and the scheme restarts from the initial guess.

#include <optional>

#include "abft/encoding.hpp"
#include "resilience/scheme.hpp"

namespace rsls::abft {

struct EncodedCheckpointOptions {
  /// Snapshot cadence in iterations.
  Index interval_iterations = 100;
  /// Parity blocks m protecting each snapshot.
  Index parity_blocks = 2;
};

class EncodedCheckpoint final : public resilience::RecoveryScheme {
 public:
  EncodedCheckpoint(EncodedCheckpointOptions options, RealVec initial_guess);

  std::string name() const override { return "ABFT-CR"; }

  void on_iteration(resilience::RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(resilience::RecoveryContext& ctx,
                             Index iteration, Index failed_rank,
                             std::span<Real> x) override;

  /// One decode + one global rollback regardless of how many ranks
  /// (≤ m) died at once.
  solver::HookAction recover_multi(resilience::RecoveryContext& ctx,
                                   Index iteration,
                                   const IndexVec& failed_ranks,
                                   std::span<Real> x) override;

  /// Escalation: the snapshot shares on surviving nodes are intact, so
  /// restore them (no decode needed when no rank died).
  bool rollback(resilience::RecoveryContext& ctx, Index iteration,
                std::span<Real> x) override;

  Index checkpoints_taken() const { return checkpoints_taken_; }
  Index iterations_rolled_back() const { return iterations_rolled_back_; }
  /// Snapshot shares reconstructed from parity across all recoveries.
  Index shares_decoded() const { return shares_decoded_; }
  /// Loss events beyond the code (f > m): snapshot unrecoverable,
  /// restarted from the initial guess.
  Index snapshot_losses() const { return snapshot_losses_; }

  const EncodedCheckpointOptions& options() const { return options_; }

 private:
  /// Roll x back to the snapshot, reconstructing the `lost` ranks'
  /// shares from parity first. Charges reads + decode.
  void restore_snapshot(resilience::RecoveryContext& ctx, Index iteration,
                        const IndexVec& lost, std::span<Real> x);

  EncodedCheckpointOptions options_;
  RealVec initial_guess_;
  std::optional<Encoding> encoding_;
  RealVec snapshot_;
  Parity snapshot_parity_;
  Index snapshot_iteration_ = 0;
  bool have_snapshot_ = false;
  Index checkpoints_taken_ = 0;
  Index iterations_rolled_back_ = 0;
  Index shares_decoded_ = 0;
  Index snapshot_losses_ = 0;
};

}  // namespace rsls::abft
