#include "abft/esr.hpp"

#include "core/error.hpp"
#include "obs/recorder.hpp"

namespace rsls::abft {

using power::PhaseTag;
using resilience::RecoveryContext;
using solver::HookAction;

EsrScheme::EsrScheme(EsrOptions options) : options_(options) {
  RSLS_CHECK_MSG(options_.parity_blocks >= 1,
                 "ESR needs at least one parity block");
}

void EsrScheme::on_iteration(RecoveryContext& ctx, Index iteration,
                             std::span<const Real> x) {
  if (!encoding_.has_value()) {
    encoding_.emplace(ctx.a.partition(), options_.parity_blocks);
  }
  obs::ScopedSpan span(ctx.recorder, "encode", PhaseTag::kEncode,
                       obs::kClusterTrack, name());
  const Seconds start = ctx.cluster.elapsed();
  // Numerically a fresh encode; cost-wise the incremental axpy-time
  // parity update (the two coincide: parity is linear in the state).
  parity_x_ = encoding_->encode(x);
  Index vectors = 1;
  if (!ctx.r.empty()) {
    parity_r_ = encoding_->encode(ctx.r);
    ++vectors;
  }
  if (!ctx.p.empty()) {
    parity_p_ = encoding_->encode(ctx.p);
    ++vectors;
  }
  parity_extra_.resize(ctx.extra.size());
  for (std::size_t v = 0; v < ctx.extra.size(); ++v) {
    if (ctx.extra[v].empty()) {
      continue;
    }
    parity_extra_[v] = encoding_->encode(ctx.extra[v]);
    ++vectors;
  }
  encoding_->charge_encode(ctx.cluster, vectors, PhaseTag::kEncode);
  encode_seconds_ += ctx.cluster.elapsed() - start;
  encoded_iteration_ = iteration;
  ++encodes_;
  obs::count(ctx.recorder, "abft_encodes");
}

HookAction EsrScheme::recover(RecoveryContext& ctx, Index iteration,
                              Index failed_rank, std::span<Real> x) {
  return recover_multi(ctx, iteration, IndexVec{failed_rank}, x);
}

HookAction EsrScheme::recover_multi(RecoveryContext& ctx, Index iteration,
                                    const IndexVec& failed_ranks,
                                    std::span<Real> x) {
  count_recovery();
  const bool parity_fresh =
      encoding_.has_value() && encoded_iteration_ == iteration;
  if (!parity_fresh || !encoding_->can_decode(failed_ranks.size())) {
    // The code cannot cover this event (f > m, or a fault before the
    // first encode): zero-fill the lost blocks and restart the
    // recurrence from the surviving iterate (F0-style escalation).
    ++fallbacks_;
    obs::count(ctx.recorder, "abft_fallbacks");
    const auto& part = ctx.a.partition();
    for (const Index rank : failed_ranks) {
      const Index begin = part.begin(rank);
      const Index end = part.end(rank);
      for (Index i = begin; i < end; ++i) {
        x[static_cast<std::size_t>(i)] = 0.0;
      }
    }
    ctx.cluster.sync(PhaseTag::kIdleWait);
    return HookAction::kRestart;
  }
  obs::ScopedSpan span(ctx.recorder, "decode", PhaseTag::kReconstruct,
                       obs::kClusterTrack, name());
  const Seconds start = ctx.cluster.elapsed();
  encoding_->decode(x, failed_ranks, parity_x_);
  Index vectors = 1;
  // Exact continuation needs the failed blocks of *every* live
  // recurrence vector back — x, r, p, and the pipelined extras — not
  // just the iterate. Count how many the solver exposed vs how many we
  // could decode.
  Index exposed = 1 + (ctx.r.empty() ? 0 : 1) + (ctx.p.empty() ? 0 : 1);
  if (!ctx.r.empty() && !parity_r_.empty()) {
    encoding_->decode(ctx.r, failed_ranks, parity_r_);
    ++vectors;
  }
  if (!ctx.p.empty() && !parity_p_.empty()) {
    encoding_->decode(ctx.p, failed_ranks, parity_p_);
    ++vectors;
  }
  for (std::size_t v = 0; v < ctx.extra.size(); ++v) {
    if (ctx.extra[v].empty()) {
      continue;
    }
    ++exposed;
    if (v < parity_extra_.size() && !parity_extra_[v].empty()) {
      encoding_->decode(ctx.extra[v], failed_ranks, parity_extra_[v]);
      ++vectors;
    }
  }
  encoding_->charge_decode(ctx.cluster, failed_ranks, vectors,
                           PhaseTag::kReconstruct);
  decode_seconds_ += ctx.cluster.elapsed() - start;
  ++decodes_;
  obs::count(ctx.recorder, "abft_decodes");
  // With every exposed vector reconstructed the solver continues on the
  // fault-free trajectory. If the recurrence state was not exposed at
  // all (direct unit-test calls) or some vector lacked parity, the
  // caller must rebuild from x.
  const bool exact = !ctx.r.empty() && !ctx.p.empty() && vectors == exposed;
  return exact ? HookAction::kContinue : HookAction::kRestart;
}

}  // namespace rsls::abft
