#include "abft/encoding.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "dist/rank_executor.hpp"

namespace rsls::abft {

using power::PhaseTag;

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Solve the f×f system M·y = rhs for all `width` right-hand sides by
/// Gaussian elimination with partial pivoting. `rhs` is f rows of
/// `width` entries; the solution overwrites it. f is tiny (≤ m ≈ 3).
void solve_vandermonde(std::vector<RealVec>& matrix, std::vector<RealVec>& rhs,
                       std::size_t f, std::size_t width) {
  for (std::size_t col = 0; col < f; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < f; ++row) {
      if (std::abs(matrix[row][col]) > std::abs(matrix[pivot][col])) {
        pivot = row;
      }
    }
    std::swap(matrix[col], matrix[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    RSLS_CHECK_MSG(matrix[col][col] != 0.0,
                   "singular ABFT decode system (duplicate lost ranks?)");
    for (std::size_t row = col + 1; row < f; ++row) {
      const Real factor = matrix[row][col] / matrix[col][col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < f; ++c) {
        matrix[row][c] -= factor * matrix[col][c];
      }
      for (std::size_t t = 0; t < width; ++t) {
        rhs[row][t] -= factor * rhs[col][t];
      }
    }
  }
  for (std::size_t col = f; col-- > 0;) {
    for (std::size_t t = 0; t < width; ++t) {
      rhs[col][t] /= matrix[col][col];
    }
    for (std::size_t row = 0; row < col; ++row) {
      const Real factor = matrix[row][col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t t = 0; t < width; ++t) {
        rhs[row][t] -= factor * rhs[col][t];
      }
    }
  }
}

}  // namespace

Encoding::Encoding(const dist::Partition& part, Index parity_blocks)
    : part_(part), m_(parity_blocks), width_(0) {
  RSLS_CHECK_MSG(m_ >= 1, "ABFT needs at least one parity block");
  const Index k = part_.parts();
  for (Index i = 0; i < k; ++i) {
    width_ = std::max(width_, part_.block_rows(i));
  }
  // Distinct Chebyshev nodes keep the Vandermonde decode systems well
  // conditioned for any lost-block combination.
  nodes_.resize(static_cast<std::size_t>(k));
  for (Index i = 0; i < k; ++i) {
    nodes_[static_cast<std::size_t>(i)] =
        std::cos(kPi * (2.0 * static_cast<double>(i) + 1.0) /
                 (2.0 * static_cast<double>(k)));
  }
}

Real Encoding::coefficient(Index j, Index i) const {
  RSLS_CHECK(j >= 0 && j < m_);
  RSLS_CHECK(i >= 0 && i < part_.parts());
  Real c = 1.0;
  const Real node = nodes_[static_cast<std::size_t>(i)];
  for (Index power = 0; power < j; ++power) {
    c *= node;
  }
  return c;
}

Parity Encoding::encode(std::span<const Real> v) const {
  RSLS_CHECK(static_cast<Index>(v.size()) == part_.size());
  Parity parity(static_cast<std::size_t>(m_),
                RealVec(static_cast<std::size_t>(width_), 0.0));
  // Loop interchange over the rank-outer serial accumulation: each chunk
  // of parity slots folds in rank contributions in ascending rank order,
  // which is the exact per-element addition chain of the serial loop —
  // chunks write disjoint slots, so the fan-out is bitwise identical to
  // serial at any RSLS_JOBS.
  dist::RankExecutor::instance().for_each_chunk(
      width_,
      [&](Index t_begin, Index t_end) {
        for (Index i = 0; i < part_.parts(); ++i) {
          const Index begin = part_.begin(i);
          const Index rows = part_.block_rows(i);
          const Index t_stop = std::min(t_end, rows);
          for (Index j = 0; j < m_; ++j) {
            const Real c = coefficient(j, i);
            RealVec& row = parity[static_cast<std::size_t>(j)];
            for (Index t = t_begin; t < t_stop; ++t) {
              row[static_cast<std::size_t>(t)] +=
                  c * v[static_cast<std::size_t>(begin + t)];
            }
          }
        }
      },
      /*work=*/width_ * m_);
  return parity;
}

void Encoding::decode(std::span<Real> v, const IndexVec& lost,
                      const Parity& parity) const {
  RSLS_CHECK(static_cast<Index>(v.size()) == part_.size());
  RSLS_CHECK(static_cast<Index>(parity.size()) == m_);
  IndexVec failed = lost;
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  RSLS_CHECK_MSG(can_decode(failed.size()),
                 "more simultaneous losses than parity blocks");
  const std::size_t f = failed.size();
  if (f == 0) {
    return;
  }
  for (const Index rank : failed) {
    RSLS_CHECK(rank >= 0 && rank < part_.parts());
  }
  const std::size_t w = static_cast<std::size_t>(width_);
  // RHS row j = parity_j − Σ_{surviving i} c_{j,i} · v_i (padded).
  std::vector<RealVec> rhs;
  rhs.reserve(f);
  for (std::size_t j = 0; j < f; ++j) {
    rhs.push_back(parity[j]);
  }
  for (Index i = 0; i < part_.parts(); ++i) {
    if (std::binary_search(failed.begin(), failed.end(), i)) {
      continue;
    }
    const Index begin = part_.begin(i);
    const Index rows = part_.block_rows(i);
    for (std::size_t j = 0; j < f; ++j) {
      const Real c = coefficient(static_cast<Index>(j), i);
      for (Index t = 0; t < rows; ++t) {
        rhs[j][static_cast<std::size_t>(t)] -=
            c * v[static_cast<std::size_t>(begin + t)];
      }
    }
  }
  // The f×f Vandermonde system over the lost blocks' nodes.
  std::vector<RealVec> matrix(f, RealVec(f, 0.0));
  for (std::size_t j = 0; j < f; ++j) {
    for (std::size_t a = 0; a < f; ++a) {
      matrix[j][a] = coefficient(static_cast<Index>(j), failed[a]);
    }
  }
  solve_vandermonde(matrix, rhs, f, w);
  for (std::size_t a = 0; a < f; ++a) {
    const Index begin = part_.begin(failed[a]);
    const Index rows = part_.block_rows(failed[a]);
    for (Index t = 0; t < rows; ++t) {
      v[static_cast<std::size_t>(begin + t)] = rhs[a][static_cast<std::size_t>(t)];
    }
  }
}

Bytes Encoding::parity_bytes() const {
  return static_cast<Bytes>(m_) * static_cast<Bytes>(width_) *
         static_cast<Bytes>(sizeof(Real));
}

void Encoding::charge_encode(simrt::VirtualCluster& cluster, Index vectors,
                             power::PhaseTag tag) const {
  RSLS_CHECK(vectors >= 1);
  // Axpy-time update: each rank folds its own block into the m parity
  // rows of every protected vector.
  for (Index rank = 0; rank < part_.parts(); ++rank) {
    const double flops = 2.0 * static_cast<double>(m_) *
                         static_cast<double>(part_.block_rows(rank)) *
                         static_cast<double>(vectors);
    cluster.charge_compute(rank, flops, tag);
  }
  // Parity rows are the sum of per-rank contributions, but only ONE of
  // the protected vectors needs a fresh reduction per refresh: the CG
  // recurrences are linear with globally-known scalars, so parity(x),
  // parity(r) and parity(p) propagate algebraically from the previous
  // parities once the SpMV product's parity is reduced (the
  // Huang–Abraham piggyback). One m·w-real allreduce per refresh.
  cluster.allreduce(parity_bytes(), tag);
}

void Encoding::charge_decode(simrt::VirtualCluster& cluster,
                             const IndexVec& lost, Index vectors,
                             power::PhaseTag tag) const {
  RSLS_CHECK(vectors >= 1);
  const auto f = static_cast<double>(lost.size());
  if (lost.empty()) {
    return;
  }
  const double w = static_cast<double>(width_);
  // Survivors re-contribute partial sums for the first f parity rows.
  for (Index rank = 0; rank < part_.parts(); ++rank) {
    if (std::find(lost.begin(), lost.end(), rank) != lost.end()) {
      continue;
    }
    const double flops = 2.0 * f * static_cast<double>(part_.block_rows(rank)) *
                         static_cast<double>(vectors);
    cluster.charge_compute(rank, flops, tag);
  }
  // Gather the f right-hand-side rows to the decode leader.
  cluster.allreduce(static_cast<Bytes>(f * w * sizeof(Real)) *
                        static_cast<Bytes>(vectors),
                    tag);
  // Factor the f×f Vandermonde system once, then back-substitute every
  // element slot of every vector, on the leader rank.
  const Index leader = lost.front();
  const double solve_flops =
      (2.0 / 3.0) * f * f * f +
      2.0 * f * f * w * static_cast<double>(vectors);
  cluster.charge_compute(leader, solve_flops, tag);
  // Scatter each reconstructed block to its replacement rank.
  for (const Index rank : lost) {
    if (rank == leader) {
      continue;
    }
    cluster.point_to_point(
        leader, rank,
        static_cast<Bytes>(part_.block_rows(rank)) *
            static_cast<Bytes>(sizeof(Real)) * static_cast<Bytes>(vectors),
        tag);
  }
  cluster.sync(power::PhaseTag::kIdleWait);
}

}  // namespace rsls::abft
