#pragma once
// ESR — exact state reconstruction via erasure-coded redundancy.
//
// The ABFT recovery family (Pachajoa et al.'s algorithm-based
// checkpoint-recovery for CG; Gleich et al.'s erasure coding for fault
// oblivious solvers): every iteration the solver state (x, r, p) is
// re-encoded into m Vandermonde parity blocks (abft/encoding.hpp),
// charged as an axpy-time update plus a parity reduction under
// PhaseTag::kEncode. When up to m ranks die *simultaneously* (the
// paper's LNF class), their blocks of x, r and p are reconstructed
// exactly from the surviving blocks and the parity — zero rollback,
// zero extra iterations, only the charged decode time. The CG scalars
// (α, β, ρ) are replicated on every rank by the allreduces that compute
// them, so nothing else is lost.
//
// Beyond m simultaneous losses the code is insufficient: ESR escalates
// by zero-filling the lost blocks (F0-style) and requesting a restart of
// the recurrence from the surviving iterate. ESR holds no trusted state
// that is independent of the running solve — parity is re-encoded from
// the (possibly corrupted) state each boundary — so rollback() declines
// and the detection ladder escalates to the initial-guess restart.

#include <memory>
#include <optional>
#include <vector>

#include "abft/encoding.hpp"
#include "resilience/scheme.hpp"

namespace rsls::abft {

struct EsrOptions {
  /// Parity blocks m: the number of simultaneous rank losses survived.
  Index parity_blocks = 2;
};

class EsrScheme final : public resilience::RecoveryScheme {
 public:
  explicit EsrScheme(EsrOptions options = {});

  std::string name() const override { return "ESR"; }

  /// Refresh the parity of x, r and p (charged under kEncode).
  void on_iteration(resilience::RecoveryContext& ctx, Index iteration,
                    std::span<const Real> x) override;

  solver::HookAction recover(resilience::RecoveryContext& ctx,
                             Index iteration, Index failed_rank,
                             std::span<Real> x) override;

  /// Up to m concurrent losses: decode x/r/p exactly and continue on
  /// the fault-free trajectory. Beyond m: zero-fill and restart.
  solver::HookAction recover_multi(resilience::RecoveryContext& ctx,
                                   Index iteration,
                                   const IndexVec& failed_ranks,
                                   std::span<Real> x) override;

  const EsrOptions& options() const { return options_; }

  Index encodes() const { return encodes_; }
  Index decodes() const { return decodes_; }
  /// Loss events that exceeded the code (f > m) and fell back to a
  /// zero-fill restart.
  Index fallbacks() const { return fallbacks_; }
  /// Virtual seconds spent maintaining parity / decoding, inputs for the
  /// model::abft cost model.
  Seconds encode_seconds_total() const { return encode_seconds_; }
  Seconds decode_seconds_total() const { return decode_seconds_; }

 private:
  EsrOptions options_;
  std::optional<Encoding> encoding_;
  Parity parity_x_;
  Parity parity_r_;
  Parity parity_p_;
  /// Parity of the solver's extra recurrence vectors (pipelined CG's
  /// u, w, s, q, z), index-aligned with RecoveryContext::extra.
  std::vector<Parity> parity_extra_;
  Index encoded_iteration_ = -1;
  Index encodes_ = 0;
  Index decodes_ = 0;
  Index fallbacks_ = 0;
  Seconds encode_seconds_ = 0.0;
  Seconds decode_seconds_ = 0.0;
};

}  // namespace rsls::abft
