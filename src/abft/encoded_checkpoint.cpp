#include "abft/encoded_checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "obs/recorder.hpp"

namespace rsls::abft {

using power::PhaseTag;
using resilience::RecoveryContext;
using solver::HookAction;

EncodedCheckpoint::EncodedCheckpoint(EncodedCheckpointOptions options,
                                     RealVec initial_guess)
    : options_(options), initial_guess_(std::move(initial_guess)) {
  RSLS_CHECK(options_.interval_iterations >= 1);
  RSLS_CHECK_MSG(options_.parity_blocks >= 1,
                 "ABFT-CR needs at least one parity block");
}

void EncodedCheckpoint::on_iteration(RecoveryContext& ctx, Index iteration,
                                     std::span<const Real> x) {
  if (iteration % options_.interval_iterations != 0) {
    return;
  }
  if (!encoding_.has_value()) {
    encoding_.emplace(ctx.a.partition(), options_.parity_blocks);
  }
  obs::ScopedSpan span(ctx.recorder, "checkpoint", PhaseTag::kCheckpoint,
                       obs::kClusterTrack, name());
  obs::count(ctx.recorder, "checkpoints_taken");
  // Each node copies its share of the snapshot to local memory…
  ctx.cluster.write_memory(ctx.a.vector_bytes(), PhaseTag::kCheckpoint);
  snapshot_.assign(x.begin(), x.end());
  snapshot_iteration_ = iteration;
  have_snapshot_ = true;
  // …and the parity blocks of the snapshot are built so the shares of
  // up to m dead nodes can be reconstructed later.
  snapshot_parity_ = encoding_->encode(snapshot_);
  encoding_->charge_encode(ctx.cluster, /*vectors=*/1, PhaseTag::kEncode);
  obs::count(ctx.recorder, "abft_encodes");
  ++checkpoints_taken_;
}

void EncodedCheckpoint::restore_snapshot(RecoveryContext& ctx,
                                         Index iteration,
                                         const IndexVec& lost,
                                         std::span<Real> x) {
  obs::ScopedSpan span(ctx.recorder, "rollback", PhaseTag::kRollback,
                       obs::kClusterTrack, name());
  ctx.cluster.read_memory(ctx.a.vector_bytes(), PhaseTag::kRollback);
  if (!have_snapshot_) {
    // Fault before the first snapshot: restart from the initial guess.
    RSLS_CHECK(initial_guess_.size() == x.size());
    std::copy(initial_guess_.begin(), initial_guess_.end(), x.begin());
    iterations_rolled_back_ += iteration;
    return;
  }
  RSLS_CHECK(snapshot_.size() == x.size());
  if (!lost.empty()) {
    // The dead ranks' snapshot shares died with their nodes: poison
    // them, then reconstruct from the surviving shares and the parity.
    const auto& part = ctx.a.partition();
    for (const Index rank : lost) {
      const Index begin = part.begin(rank);
      const Index end = part.end(rank);
      for (Index i = begin; i < end; ++i) {
        snapshot_[static_cast<std::size_t>(i)] =
            std::numeric_limits<Real>::quiet_NaN();
      }
    }
    encoding_->decode(snapshot_, lost, snapshot_parity_);
    encoding_->charge_decode(ctx.cluster, lost, /*vectors=*/1,
                             PhaseTag::kRollback);
    shares_decoded_ += static_cast<Index>(lost.size());
    obs::count(ctx.recorder, "abft_decodes");
  }
  std::copy(snapshot_.begin(), snapshot_.end(), x.begin());
  iterations_rolled_back_ += iteration - snapshot_iteration_;
}

HookAction EncodedCheckpoint::recover(RecoveryContext& ctx, Index iteration,
                                      Index failed_rank, std::span<Real> x) {
  return recover_multi(ctx, iteration, IndexVec{failed_rank}, x);
}

HookAction EncodedCheckpoint::recover_multi(RecoveryContext& ctx,
                                            Index iteration,
                                            const IndexVec& failed_ranks,
                                            std::span<Real> x) {
  count_recovery();
  if (encoding_.has_value() && !encoding_->can_decode(failed_ranks.size())) {
    // More concurrent losses than parity blocks: the snapshot is
    // genuinely unrecoverable. Restart from the initial guess.
    ++snapshot_losses_;
    obs::count(ctx.recorder, "abft_snapshot_losses");
    obs::ScopedSpan span(ctx.recorder, "rollback", PhaseTag::kRollback,
                         obs::kClusterTrack, name());
    ctx.cluster.read_memory(ctx.a.vector_bytes(), PhaseTag::kRollback);
    RSLS_CHECK(initial_guess_.size() == x.size());
    std::copy(initial_guess_.begin(), initial_guess_.end(), x.begin());
    iterations_rolled_back_ += iteration;
    have_snapshot_ = false;
    return HookAction::kRestart;
  }
  restore_snapshot(ctx, iteration, failed_ranks, x);
  return HookAction::kRestart;
}

bool EncodedCheckpoint::rollback(RecoveryContext& ctx, Index iteration,
                                 std::span<Real> x) {
  count_recovery();
  // Escalation from the detection ladder: no rank died, so every
  // snapshot share is intact and no decode is needed.
  restore_snapshot(ctx, iteration, IndexVec{}, x);
  return true;
}

}  // namespace rsls::abft
