#pragma once
// Erasure-coded redundancy over the block-row partition (the ABFT
// subsystem's codeword layer).
//
// The k data blocks of a distributed vector v (one per rank, Figure 2
// layout) are extended with m parity blocks
//
//   parity_j = Σ_i c_{j,i} · v_i,   j = 0..m-1,   c_{j,i} = node_i^j,
//
// a Vandermonde code over distinct Chebyshev nodes node_i ∈ (-1, 1)
// (row j = 0 is the plain checksum Σ v_i). Any f ≤ m simultaneously
// lost blocks are reconstructed exactly: for each element slot the lost
// values solve the f×f Vandermonde system formed by the first f parity
// rows restricted to the lost columns — nonsingular because the nodes
// are distinct. Blocks whose widths differ (the partition spreads the
// remainder) are padded with zeros to the widest block.
//
// Numerics are exact (up to roundoff); costs are charged separately to
// the VirtualCluster via the α–β model: parity maintenance is an
// axpy-time update per rank plus an m·w-real reduction (charged under
// PhaseTag::kEncode by callers), decoding is survivor partial sums, a
// small Vandermonde solve on a leader rank, and a scatter of the
// reconstructed blocks.

#include <span>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/partition.hpp"
#include "power/rapl.hpp"
#include "simrt/cluster.hpp"

namespace rsls::abft {

/// Parity blocks protecting one distributed vector: m rows, each padded
/// to the widest data block.
using Parity = std::vector<RealVec>;

class Encoding {
 public:
  /// `parity_blocks` = m ≥ 1: the number of simultaneous block losses
  /// the code tolerates.
  Encoding(const dist::Partition& part, Index parity_blocks);

  Index data_blocks() const { return part_.parts(); }
  Index parity_blocks() const { return m_; }
  /// Padded block width w = max_i block_rows(i).
  Index width() const { return width_; }

  /// Code coefficient c_{j,i} = node_i^j for parity row j, data block i.
  Real coefficient(Index j, Index i) const;

  /// Recompute all m parity rows of v from scratch. Numerically this
  /// equals the incremental (axpy-time) update a real deployment would
  /// perform — parity of a linear combination is the same linear
  /// combination of parities — so callers charge encode costs via
  /// charge_encode() either way.
  Parity encode(std::span<const Real> v) const;

  /// Reconstruct the blocks listed in `lost` (f = lost.size() ≤ m,
  /// distinct ranks) of v in place from the surviving blocks and parity.
  /// The lost blocks' current contents are ignored (they are NaN after a
  /// process loss).
  void decode(std::span<Real> v, const IndexVec& lost,
              const Parity& parity) const;

  bool can_decode(std::size_t losses) const {
    return static_cast<Index>(losses) <= m_;
  }

  /// Bytes of one parity row set (m rows × w reals) — the reduction
  /// volume of a parity refresh.
  Bytes parity_bytes() const;

  /// Charge one parity refresh of `vectors` distributed vectors: every
  /// rank folds its own block into the m parity rows (2·m·rows flops),
  /// then the rows are combined by a recursive-doubling allreduce.
  void charge_encode(simrt::VirtualCluster& cluster, Index vectors,
                     power::PhaseTag tag) const;

  /// Charge the reconstruction of `lost.size()` blocks of `vectors`
  /// distributed vectors: surviving ranks re-contribute partial sums for
  /// the first f parity rows, the f×f Vandermonde system is factored and
  /// back-substituted on a leader rank, and each reconstructed block is
  /// scattered to its (replacement) rank.
  void charge_decode(simrt::VirtualCluster& cluster, const IndexVec& lost,
                     Index vectors, power::PhaseTag tag) const;

 private:
  dist::Partition part_;
  Index m_;
  Index width_;
  RealVec nodes_;  // one distinct Chebyshev node per data block
};

}  // namespace rsls::abft
