#pragma once
// Preconditioner interface for the CG solver family.
//
// A Preconditioner owns the local operators M_p⁻¹ each rank applies to
// its block of the residual. All four implementations are block-local
// (z_p depends only on r_p), so one apply costs each rank its own flops
// and no communication — the structure the paper's per-process recovery
// model assumes. Setup (factoring/inverting the local operator) is
// charged once under PhaseTag::kPrecond; applies are charged to the
// calling iteration's own phase tag.
//
// Roster (make_preconditioner):
//   identity     z = r. No state, no charges — the seed solver exactly.
//   jacobi       z = diag(A)⁻¹ r (the former SolverKind::kJacobiPcg).
//   block-jacobi z_p = A_{p,p}⁻¹ r_p, solved inexactly per rank with
//                la/local_cg to a fixed inner tolerance.
//   ic0          z_p = (L_p L_pᵀ)⁻¹ r_p with L_p the zero-fill
//                incomplete Cholesky factor of A_{p,p} (la/factor).
//
// After a process loss the failed rank's operator state (inverse
// diagonal, diagonal block, IC(0) factor) is rebuilt locally from A —
// A itself is never lost in the paper's fault model — via
// rebuild_local(), charged under kPrecond like setup.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "simrt/cluster.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// SpMV kernel for the per-rank diagonal blocks (the block-Jacobi
  /// inner solves); null means csr-scalar. Set before setup() — blocks
  /// prepare their plans during setup/rebuild.
  void set_spmv_kernel(const sparse::SpmvKernel* kernel) {
    spmv_kernel_ = kernel;
  }

  /// Registry name ("identity", "jacobi", "block-jacobi", "ic0").
  virtual std::string name() const = 0;

  /// Build the per-rank operator state from A. Charged once under
  /// PhaseTag::kPrecond before the first iteration. Must be called
  /// before apply(); idempotent.
  virtual void setup(const dist::DistMatrix& a,
                     simrt::VirtualCluster& cluster) = 0;

  /// z = M⁻¹ r on the global vectors; each rank is charged its local
  /// apply flops under `tag` (no communication — M is block-diagonal).
  virtual void apply(const dist::DistMatrix& a,
                     simrt::VirtualCluster& cluster, std::span<const Real> r,
                     std::span<Real> z, power::PhaseTag tag) = 0;

  /// Rebuild one rank's operator state after a process loss (recovery
  /// schemes call this; the matrix survives, so the rebuild is local).
  /// Charged under PhaseTag::kPrecond. Default: nothing to rebuild.
  virtual void rebuild_local(const dist::DistMatrix& /*a*/,
                             simrt::VirtualCluster& /*cluster*/,
                             Index /*rank*/) {}

  /// Per-rank flops of one apply (0 before setup). Input for the
  /// model::preconditioned cost term and for rebuild charging.
  virtual double apply_flops(Index rank) const {
    (void)rank;
    return 0.0;
  }

  /// The identity applies as an uncharged copy; the solver also skips
  /// the separate true-residual reduction for it, which is what keeps
  /// the default configuration bit-identical to the seed solver.
  virtual bool is_identity() const { return false; }

 protected:
  const sparse::SpmvKernel* spmv_kernel_ = nullptr;
};

/// Valid roster for make_preconditioner, in registry order.
std::vector<std::string> preconditioner_names();

/// Construct a preconditioner by registry name. Throws rsls::Error
/// naming the valid roster on an unknown name (mirroring the scheme
/// factory's unknown-name contract).
std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name);

}  // namespace rsls::solver
