#include "solver/cg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_ops.hpp"
#include "dist/rank_executor.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::solver {

using dist::dist_axpy;
using dist::dist_dot;
using dist::dist_spmv;
using dist::dist_xpby;
using power::PhaseTag;

const char* to_string(SolverVariant variant) {
  switch (variant) {
    case SolverVariant::kClassic:
      return "cg";
    case SolverVariant::kPipelined:
      return "pipelined-cg";
  }
  return "?";
}

std::optional<SolverVariant> solver_variant_from_name(
    const std::string& name) {
  if (name == "cg") {
    return SolverVariant::kClassic;
  }
  if (name == "pipelined-cg") {
    return SolverVariant::kPipelined;
  }
  return std::nullopt;
}

std::vector<std::string> solver_variant_names() {
  return {"cg", "pipelined-cg"};
}

SolverVariant solver_variant_or_throw(const std::string& name) {
  if (const auto variant = solver_variant_from_name(name)) {
    return *variant;
  }
  std::string roster;
  for (const std::string& valid : solver_variant_names()) {
    if (!roster.empty()) {
      roster += '|';
    }
    roster += valid;
  }
  throw Error("unknown solver variant: " + name + " (valid: " + roster + ")");
}

namespace {

/// Arithmetic-only global dot product. Charging is the caller's job so
/// the pipelined variant can fuse several reductions into one message.
Real raw_dot(std::span<const Real> x, std::span<const Real> y) {
  Real sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

IterationEvent make_event(Index iteration, Real rel, bool amended) {
  IterationEvent event;
  event.iteration = iteration;
  event.relative_residual = rel;
  event.amended = amended;
  return event;
}

/// The seed's textbook loop, generalized from the hardwired Jacobi
/// branch to any Preconditioner. With the identity (or no)
/// preconditioner the charge stream is bit-identical to the seed
/// solver: the apply is an uncharged copy, there is no setup phase, and
/// convergence reads sqrt(rᵀz) without an extra reduction.
CgResult classic_solve(const dist::DistMatrix& a,
                       simrt::VirtualCluster& cluster, std::span<const Real> b,
                       RealVec& x, const CgOptions& options,
                       const IterationHook& hook) {
  const auto n = static_cast<std::size_t>(a.rows());
  const auto& part = a.partition();
  Preconditioner* const precond = options.preconditioner;
  const bool preconditioned = precond != nullptr && !precond->is_identity();
  if (preconditioned) {
    precond->setup(a, cluster);
  }

  CgResult result;
  RealVec r(n), z(n), p(n), ap(n);

  const auto tag_for = [&options](Index iteration) {
    return (options.ff_iterations > 0 && iteration >= options.ff_iterations)
               ? PhaseTag::kExtraIter
               : PhaseTag::kSolve;
  };

  // z = M⁻¹ r; the identity is the seed's uncharged alias copy.
  const auto apply_preconditioner = [&](PhaseTag tag) {
    if (!preconditioned) {
      sparse::copy(r, z);
      return;
    }
    precond->apply(a, cluster, r, z, tag);
  };

  // r = b - A x ; z = M⁻¹ r ; p = z ; returns (r, z).
  const auto rebuild_from_x = [&](Index iteration) {
    const PhaseTag tag = tag_for(iteration);
    dist_spmv(a, cluster, x, ap, tag, options.spmv_plan);
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto lo = static_cast<std::size_t>(part.begin(rank));
          const auto hi = static_cast<std::size_t>(part.end(rank));
          for (std::size_t i = lo; i < hi; ++i) {
            r[i] = b[i] - ap[i];
          }
        },
        /*work=*/part.size());
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)), tag);
    }
    apply_preconditioner(tag);
    sparse::copy(z, p);
    return dist_dot(part, cluster, r, z, tag);
  };

  const Real b_norm = dist::dist_norm2(part, cluster, b, PhaseTag::kSolve);
  const Real threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  // The PCG recurrence tracks rᵀz; convergence is judged on the true
  // residual norm, which costs one extra reduction per iteration.
  const auto true_residual_norm = [&](PhaseTag tag) {
    return std::sqrt(dist_dot(part, cluster, r, r, tag));
  };

  // One relative residual per observation point, shared by the retained
  // history and the streaming observer so both see identical values.
  const auto report_residual = [&](Index iteration, Real norm, bool amend) {
    const Real rel = b_norm > 0.0 ? norm / b_norm : norm;
    if (options.record_residual_history) {
      if (amend) {
        result.residual_history.back() = rel;
      } else {
        result.residual_history.push_back(rel);
      }
    }
    if (options.observer) {
      options.observer(make_event(iteration, rel, amend));
    }
  };

  Real rz = rebuild_from_x(0);
  Real r_norm =
      preconditioned ? true_residual_norm(PhaseTag::kSolve) : std::sqrt(rz);
  report_residual(0, r_norm, /*amend=*/false);

  while (result.iterations < options.max_iterations) {
    if (r_norm <= threshold) {
      result.converged = true;
      break;
    }
    const Index k = result.iterations;
    const PhaseTag tag = tag_for(k);

    dist_spmv(a, cluster, p, ap, tag, options.spmv_plan);
    const Real p_ap = dist_dot(part, cluster, p, ap, tag);
    RSLS_CHECK_MSG(p_ap > 0.0, "matrix is not positive definite in CG");
    const Real alpha = rz / p_ap;
    dist_axpy(part, cluster, alpha, p, x, tag);
    dist_axpy(part, cluster, -alpha, ap, r, tag);
    apply_preconditioner(tag);
    const Real rz_next = dist_dot(part, cluster, r, z, tag);
    const Real beta = rz_next / rz;
    rz = rz_next;
    // Convergence is still judged on the true residual norm.
    r_norm = preconditioned ? true_residual_norm(tag) : std::sqrt(rz);
    dist_xpby(part, cluster, z, beta, p, tag);

    ++result.iterations;
    report_residual(result.iterations, r_norm, /*amend=*/false);

    if (hook) {
      CgIterationView view;
      view.iteration = result.iterations;
      view.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
      view.x = std::span<Real>(x);
      view.r = std::span<Real>(r);
      view.p = std::span<Real>(p);
      const HookAction action = hook(view);
      if (action == HookAction::kAbort) {
        break;  // declared failure: x already holds the fallback iterate
      }
      if (action == HookAction::kRestart) {
        rz = rebuild_from_x(result.iterations);
        r_norm = preconditioned
                     ? true_residual_norm(tag_for(result.iterations))
                     : std::sqrt(rz);
        // Re-report the post-recovery residual so Fig. 6's jumps are
        // visible at the fault iteration.
        report_residual(result.iterations, r_norm, /*amend=*/true);
      }
    }
  }
  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

/// Chronopoulos/Gear-style pipelined PCG (Ghysels & Vanroose). The two
/// recurrence dot products γ = (r, u) and δ = (w, u) ride ONE fused
/// non-blocking allreduce posted before the iteration's preconditioner
/// apply m = M⁻¹w and SpMV n = A m, and completed after them — each rank
/// only waits for the remainder of the collective that its local work
/// did not hide (VirtualCluster::allreduce_finish charges exactly that).
/// The price is extra recurrence state (u, w, s, q, z) and ~2x the
/// vector updates per iteration; the payoff, measured by
/// bench/ablation_pcg, is that the synchronizing reduction mostly
/// disappears from the critical path on high-diameter topologies.
///
/// Convergence keeps one explicit blocking reduction per iteration
/// (‖r‖₂ of the true residual recurrence) so the residual trajectory,
/// observer events, and restart-amendment semantics line up one-to-one
/// with the classic variant.
CgResult pipelined_solve(const dist::DistMatrix& a,
                         simrt::VirtualCluster& cluster,
                         std::span<const Real> b, RealVec& x,
                         const CgOptions& options, const IterationHook& hook) {
  const auto n = static_cast<std::size_t>(a.rows());
  const auto& part = a.partition();
  Preconditioner* const precond = options.preconditioner;
  const bool preconditioned = precond != nullptr && !precond->is_identity();
  if (preconditioned) {
    precond->setup(a, cluster);
  }

  CgResult result;
  // Recurrence state: r residual, u = M⁻¹r, w = A u, and the direction
  // bundle p (search), s = A p, q = M⁻¹ s, z = A q.
  RealVec r(n), u(n), w(n), m(n), nn(n), p(n), s(n), q(n), z(n), ap(n);

  const auto tag_for = [&options](Index iteration) {
    return (options.ff_iterations > 0 && iteration >= options.ff_iterations)
               ? PhaseTag::kExtraIter
               : PhaseTag::kSolve;
  };

  const auto apply_preconditioner = [&](std::span<const Real> in,
                                        std::span<Real> out, PhaseTag tag) {
    if (!preconditioned) {
      sparse::copy(in, out);
      return;
    }
    precond->apply(a, cluster, in, out, tag);
  };

  // r = b - A x ; u = M⁻¹ r ; w = A u ; returns ‖r‖₂. The direction
  // bundle restarts from scratch — the caller flags the next iteration
  // `fresh` so the recurrences re-seed by assignment instead of mixing
  // in stale (possibly corrupted) state.
  const auto rebuild_from_x = [&](Index iteration) {
    const PhaseTag tag = tag_for(iteration);
    dist_spmv(a, cluster, x, ap, tag, options.spmv_plan);
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto lo = static_cast<std::size_t>(part.begin(rank));
          const auto hi = static_cast<std::size_t>(part.end(rank));
          for (std::size_t i = lo; i < hi; ++i) {
            r[i] = b[i] - ap[i];
          }
        },
        /*work=*/part.size());
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)), tag);
    }
    apply_preconditioner(r, u, tag);
    dist_spmv(a, cluster, u, w, tag, options.spmv_plan);
    return dist::dist_norm2(part, cluster, r, tag);
  };

  const Real b_norm = dist::dist_norm2(part, cluster, b, PhaseTag::kSolve);
  const Real threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  const auto report_residual = [&](Index iteration, Real norm, bool amend) {
    const Real rel = b_norm > 0.0 ? norm / b_norm : norm;
    if (options.record_residual_history) {
      if (amend) {
        result.residual_history.back() = rel;
      } else {
        result.residual_history.push_back(rel);
      }
    }
    if (options.observer) {
      options.observer(make_event(iteration, rel, amend));
    }
  };

  bool fresh = true;
  Real gamma_prev = 0.0;
  Real alpha_prev = 0.0;
  Real r_norm = rebuild_from_x(0);
  report_residual(0, r_norm, /*amend=*/false);

  while (result.iterations < options.max_iterations) {
    if (r_norm <= threshold) {
      result.converged = true;
      break;
    }
    const Index k = result.iterations;
    const PhaseTag tag = tag_for(k);

    // Fused reductions, posted non-blocking: γ and δ are globally
    // consistent sums hidden behind this iteration's apply + SpMV.
    const Real gamma = raw_dot(r, u);
    const Real delta = raw_dot(w, u);
    for (Index rank = 0; rank < part.parts(); ++rank) {
      // Two partial dots, 2 flops per element each.
      cluster.charge_compute(
          rank, 4.0 * static_cast<double>(part.block_rows(rank)), tag);
    }
    auto pending =
        cluster.allreduce_start(2 * sizeof(Real), PhaseTag::kComm);
    apply_preconditioner(w, m, tag);  // m = M⁻¹ w
    dist_spmv(a, cluster, m, nn, tag, options.spmv_plan);  // n = A m
    cluster.allreduce_finish(pending, PhaseTag::kComm);

    Real alpha = 0.0;
    Real beta = 0.0;
    if (fresh) {
      RSLS_CHECK_MSG(delta > 0.0, "matrix is not positive definite in CG");
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      // In exact arithmetic the denominator equals (p, A p).
      const Real denom = delta - beta * gamma / alpha_prev;
      if (!(denom > 0.0)) {
        // Rounding — or an inexact (block-solve) preconditioner apply —
        // broke the fused-recurrence invariant. The standard safeguard
        // is a pipeline restart: recompute the true residual bundle from
        // x and re-seed. A genuinely indefinite matrix still fails the
        // fresh-step δ > 0 check right after, so breakdown cannot loop.
        r_norm = rebuild_from_x(k);
        fresh = true;
        continue;
      }
      alpha = gamma / denom;
    }
    gamma_prev = gamma;
    alpha_prev = alpha;

    if (fresh) {
      // Re-seed the direction bundle by assignment: after a rebuild the
      // old z/q/s/p are stale and must not leak through β-weighted
      // recurrences.
      sparse::copy(nn, z);
      sparse::copy(m, q);
      sparse::copy(w, s);
      sparse::copy(u, p);
    } else {
      dist::RankExecutor::instance().for_each_rank(
          part.parts(), [&](Index rank) {
            const auto lo = static_cast<std::size_t>(part.begin(rank));
            const auto hi = static_cast<std::size_t>(part.end(rank));
            for (std::size_t i = lo; i < hi; ++i) {
              z[i] = nn[i] + beta * z[i];
              q[i] = m[i] + beta * q[i];
              s[i] = w[i] + beta * s[i];
              p[i] = u[i] + beta * p[i];
            }
          },
          /*work=*/part.size());
    }
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto lo = static_cast<std::size_t>(part.begin(rank));
          const auto hi = static_cast<std::size_t>(part.end(rank));
          for (std::size_t i = lo; i < hi; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * s[i];
            u[i] -= alpha * q[i];
            w[i] -= alpha * z[i];
          }
        },
        /*work=*/part.size());
    for (Index rank = 0; rank < part.parts(); ++rank) {
      // Eight fused vector updates, 2 flops per element each.
      cluster.charge_compute(
          rank, 16.0 * static_cast<double>(part.block_rows(rank)), tag);
    }
    fresh = false;

    // The explicit convergence reduction (see the function comment).
    r_norm = dist::dist_norm2(part, cluster, r, tag);
    ++result.iterations;
    report_residual(result.iterations, r_norm, /*amend=*/false);

    if (hook) {
      CgIterationView view;
      view.iteration = result.iterations;
      view.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
      view.x = std::span<Real>(x);
      view.r = std::span<Real>(r);
      view.p = std::span<Real>(p);
      view.extra = {std::span<Real>(u), std::span<Real>(w),
                    std::span<Real>(s), std::span<Real>(q),
                    std::span<Real>(z)};
      const HookAction action = hook(view);
      if (action == HookAction::kAbort) {
        break;  // declared failure: x already holds the fallback iterate
      }
      if (action == HookAction::kRestart) {
        r_norm = rebuild_from_x(result.iterations);
        fresh = true;
        report_residual(result.iterations, r_norm, /*amend=*/true);
      }
    }
  }
  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

}  // namespace

CgResult cg_solve(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
                  std::span<const Real> b, RealVec& x,
                  const CgOptions& options, const IterationHook& hook) {
  RSLS_CHECK(options.tolerance > 0.0);
  RSLS_CHECK(options.max_iterations > 0);
  const auto n = static_cast<std::size_t>(a.rows());
  RSLS_CHECK(b.size() == n && x.size() == n);
  switch (options.variant) {
    case SolverVariant::kClassic:
      return classic_solve(a, cluster, b, x, options, hook);
    case SolverVariant::kPipelined:
      return pipelined_solve(a, cluster, b, x, options, hook);
  }
  throw Error("invalid solver variant");
}

}  // namespace rsls::solver
