#include "solver/cg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "dist/dist_ops.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::solver {

using dist::dist_axpy;
using dist::dist_dot;
using dist::dist_spmv;
using dist::dist_xpby;
using power::PhaseTag;

namespace {

/// 1/diag(A); throws if any diagonal entry is non-positive (A must be
/// SPD, so positive diagonals are an invariant worth checking).
RealVec inverse_diagonal(const sparse::Csr& a) {
  RealVec inv = sparse::diagonal(a);
  for (Real& v : inv) {
    RSLS_CHECK_MSG(v > 0.0, "Jacobi PCG requires a positive diagonal");
    v = 1.0 / v;
  }
  return inv;
}

}  // namespace

CgResult cg_solve(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
                  std::span<const Real> b, RealVec& x,
                  const CgOptions& options, const IterationHook& hook) {
  RSLS_CHECK(options.tolerance > 0.0);
  RSLS_CHECK(options.max_iterations > 0);
  const auto n = static_cast<std::size_t>(a.rows());
  RSLS_CHECK(b.size() == n && x.size() == n);
  const auto& part = a.partition();
  const bool jacobi = options.kind == SolverKind::kJacobiPcg;
  const RealVec inv_diag = jacobi ? inverse_diagonal(a.global()) : RealVec{};

  CgResult result;
  RealVec r(n), z(n), p(n), ap(n);

  const auto tag_for = [&options](Index iteration) {
    return (options.ff_iterations > 0 && iteration >= options.ff_iterations)
               ? PhaseTag::kExtraIter
               : PhaseTag::kSolve;
  };

  // z = M⁻¹ r (Jacobi) or an alias of r (plain CG). Charged as one local
  // pass per rank.
  const auto apply_preconditioner = [&](PhaseTag tag) {
    if (!jacobi) {
      sparse::copy(r, z);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = inv_diag[i] * r[i];
    }
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)), tag);
    }
  };

  // r = b - A x ; z = M⁻¹ r ; p = z ; returns (r, z).
  const auto rebuild_from_x = [&](Index iteration) {
    const PhaseTag tag = tag_for(iteration);
    dist_spmv(a, cluster, x, ap, tag);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - ap[i];
    }
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)), tag);
    }
    apply_preconditioner(tag);
    sparse::copy(z, p);
    return dist_dot(part, cluster, r, z, tag);
  };

  const Real b_norm = dist::dist_norm2(part, cluster, b, PhaseTag::kSolve);
  const Real threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  // The PCG recurrence tracks rᵀz; convergence is judged on the true
  // residual norm, which costs one extra reduction per iteration.
  const auto true_residual_norm = [&](PhaseTag tag) {
    return std::sqrt(dist_dot(part, cluster, r, r, tag));
  };

  // One relative residual per observation point, shared by the retained
  // history and the streaming observer so both see identical values.
  const auto report_residual = [&](Index iteration, Real norm, bool amend) {
    const Real rel = b_norm > 0.0 ? norm / b_norm : norm;
    if (options.record_residual_history) {
      if (amend) {
        result.residual_history.back() = rel;
      } else {
        result.residual_history.push_back(rel);
      }
    }
    if (options.residual_observer) {
      options.residual_observer(iteration, rel);
    }
  };

  Real rz = rebuild_from_x(0);
  Real r_norm = jacobi ? true_residual_norm(PhaseTag::kSolve) : std::sqrt(rz);
  report_residual(0, r_norm, /*amend=*/false);

  while (result.iterations < options.max_iterations) {
    if (r_norm <= threshold) {
      result.converged = true;
      break;
    }
    const Index k = result.iterations;
    const PhaseTag tag = tag_for(k);

    dist_spmv(a, cluster, p, ap, tag);
    const Real p_ap = dist_dot(part, cluster, p, ap, tag);
    RSLS_CHECK_MSG(p_ap > 0.0, "matrix is not positive definite in CG");
    const Real alpha = rz / p_ap;
    dist_axpy(part, cluster, alpha, p, x, tag);
    dist_axpy(part, cluster, -alpha, ap, r, tag);
    apply_preconditioner(tag);
    const Real rz_next = dist_dot(part, cluster, r, z, tag);
    const Real beta = rz_next / rz;
    rz = rz_next;
    // Convergence is still judged on the true residual norm.
    r_norm = jacobi ? true_residual_norm(tag) : std::sqrt(rz);
    dist_xpby(part, cluster, z, beta, p, tag);

    ++result.iterations;
    report_residual(result.iterations, r_norm, /*amend=*/false);

    if (hook) {
      CgIterationView view;
      view.iteration = result.iterations;
      view.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
      view.x = std::span<Real>(x);
      view.r = std::span<Real>(r);
      view.p = std::span<Real>(p);
      const HookAction action = hook(view);
      if (action == HookAction::kAbort) {
        break;  // declared failure: x already holds the fallback iterate
      }
      if (action == HookAction::kRestart) {
        rz = rebuild_from_x(result.iterations);
        r_norm = jacobi ? true_residual_norm(tag_for(result.iterations))
                        : std::sqrt(rz);
        // Re-report the post-recovery residual so Fig. 6's jumps are
        // visible at the fault iteration.
        report_residual(result.iterations, r_norm, /*amend=*/true);
      }
    }
  }
  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

}  // namespace rsls::solver
