#pragma once
// Sequential reference CG (no cluster, no cost model). Used by tests as a
// numerical oracle for the distributed driver and by the Table 3 bench to
// report fault-free iteration counts cheaply.

#include <span>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace rsls::solver {

struct ReferenceCgResult {
  Index iterations = 0;
  bool converged = false;
  Real relative_residual = 0.0;
};

ReferenceCgResult reference_cg(const sparse::Csr& a, std::span<const Real> b,
                               RealVec& x, Real tolerance = 1e-12,
                               Index max_iterations = 500000);

}  // namespace rsls::solver
