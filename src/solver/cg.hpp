#pragma once
// Distributed conjugate gradient with resilience hooks.
//
// This is the paper's benchmark solver: CG over a block-row distributed
// SPD system, executed with exact arithmetic while every rank's costs are
// charged to the virtual cluster. A per-iteration hook lets the resilience
// layer inject faults, take checkpoints, and perform recoveries; a hook
// that modified x requests a restart, after which CG rebuilds its internal
// vectors (r, p) from the recovered iterate — the "reconstructing x forces
// renewal of other variables" behaviour the paper describes in §5.2.

#include <functional>
#include <span>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "simrt/cluster.hpp"

namespace rsls::solver {

/// Solver variant. The paper evaluates plain CG; Jacobi-preconditioned
/// CG is provided to substantiate its claim that "our results are
/// applicable to other iterative solvers" — every recovery scheme and
/// hook works unchanged (see bench/ablation_solver).
enum class SolverKind { kCg, kJacobiPcg };

/// Streaming observer of the residual trajectory: called with
/// (iteration, ‖r‖/‖b‖) at exactly the points residual_history records —
/// the initial residual (iteration 0), each completed iteration, and
/// *again* with the same iteration number when a restart rebuilt the
/// solver state (the post-recovery residual that overwrites the history
/// entry). Works with record_residual_history off, so long runs can
/// stream without the solver retaining the full history.
using ResidualObserver = std::function<void(Index, Real)>;

struct CgOptions {
  /// Convergence: ‖r‖₂ / ‖b‖₂ ≤ tolerance (paper uses 1e-12).
  Real tolerance = 1e-12;
  Index max_iterations = 500000;
  bool record_residual_history = false;
  /// Iterations the fault-free run needs, if known. Iterations beyond
  /// this count are charged to the kExtraIter phase so E_res splits out
  /// directly; 0 means unknown (everything is kSolve).
  Index ff_iterations = 0;
  SolverKind kind = SolverKind::kCg;
  /// Optional residual stream (see ResidualObserver). Purely
  /// observational: never charged, never consulted.
  ResidualObserver residual_observer;
};

struct CgResult {
  Index iterations = 0;
  bool converged = false;
  Real relative_residual = 0.0;
  /// ‖r‖/‖b‖ after each iteration (only when recording is enabled).
  RealVec residual_history;
};

/// What a hook did at an iteration boundary.
enum class HookAction {
  kContinue,  // nothing that invalidates CG state
  kRestart,   // x was modified: rebuild r and p from the current x
  kAbort      // unrecoverable: stop iterating and return non-converged.
              // The resilience layer issues this when its escalation
              // ladder is exhausted (declared failure), after placing a
              // structured fallback iterate in x.
};

struct CgIterationView {
  Index iteration = 0;
  Real relative_residual = 0.0;
  /// The global iterate; hooks may overwrite any block.
  std::span<Real> x;
  /// The solver's recurrence state (residual and search direction). A
  /// hook that modifies these without returning kRestart leaves CG
  /// running on corrupted internal state — exactly the silent-data-
  /// corruption scenario the detection layer must catch. kRestart
  /// rebuilds both from x.
  std::span<Real> r;
  std::span<Real> p;
};

using IterationHook = std::function<HookAction(const CgIterationView&)>;

/// Solve A x = b from the provided initial guess (x is updated in place).
/// The hook (optional) runs after every completed iteration.
CgResult cg_solve(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
                  std::span<const Real> b, RealVec& x,
                  const CgOptions& options, const IterationHook& hook = {});

}  // namespace rsls::solver
