#pragma once
// Distributed conjugate gradient with resilience hooks.
//
// This is the paper's benchmark solver family: CG over a block-row
// distributed SPD system, executed with exact arithmetic while every
// rank's costs are charged to the virtual cluster. Two registry-selected
// variants share one hook and observer seam:
//
//   classic    the seed's textbook (P)CG loop — two synchronizing
//              reductions per iteration.
//   pipelined  Chronopoulos/Gear-style communication-hiding PCG
//              (Ghysels & Vanroose): the recurrence dot products ride
//              one fused non-blocking allreduce that overlaps the
//              preconditioner apply and the SpMV of the same iteration
//              (VirtualCluster::allreduce_start/finish), at the price of
//              more vector work and extra recurrence state.
//
// A per-iteration hook lets the resilience layer inject faults, take
// checkpoints, and perform recoveries; a hook that modified x requests a
// restart, after which the solver rebuilds its internal vectors (r, p —
// and u, w, s, q, z for the pipelined variant) from the recovered
// iterate — the "reconstructing x forces renewal of other variables"
// behaviour the paper describes in §5.2.

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "simrt/cluster.hpp"
#include "solver/preconditioner.hpp"

namespace rsls::solver {

/// Solver variant, selected by registry name ("cg" | "pipelined-cg").
/// Every recovery scheme and hook works unchanged under either (see
/// bench/ablation_pcg).
enum class SolverVariant { kClassic, kPipelined };

const char* to_string(SolverVariant variant);

/// Registry lookup; nullopt on unknown names (callers produce the
/// structured error so HTTP and CLI surfaces can word it their way).
std::optional<SolverVariant> solver_variant_from_name(
    const std::string& name);

/// Valid roster for solver_variant_from_name, in registry order.
std::vector<std::string> solver_variant_names();

/// As solver_variant_from_name, but throws rsls::Error naming the valid
/// roster on an unknown name (mirroring the scheme factory's contract).
SolverVariant solver_variant_or_throw(const std::string& name);

/// One residual observation, streamed at exactly the points
/// residual_history records — the initial residual (iteration 0), each
/// completed iteration, and *again* with the same iteration number and
/// `amended` set when a restart rebuilt the solver state (the
/// post-recovery residual that overwrites the history entry). Works with
/// record_residual_history off, so long runs can stream without the
/// solver retaining the full history. This is the single per-iteration
/// callback seam: the flight recorder's series sampling and the serve
/// engine's progress/cancellation both ride it.
struct IterationEvent {
  Index iteration = 0;
  /// ‖r‖ / ‖b‖ at this observation point.
  Real relative_residual = 0.0;
  /// True when this event re-reports `iteration` after a restart; the
  /// value amends (replaces) the previous record for that iteration.
  bool amended = false;
};

/// Purely observational: never charged, never consulted by the solver.
using IterationCallback = std::function<void(const IterationEvent&)>;

struct CgOptions {
  /// Convergence: ‖r‖₂ / ‖b‖₂ ≤ tolerance (paper uses 1e-12).
  Real tolerance = 1e-12;
  Index max_iterations = 500000;
  bool record_residual_history = false;
  /// Iterations the fault-free run needs, if known. Iterations beyond
  /// this count are charged to the kExtraIter phase so E_res splits out
  /// directly; 0 means unknown (everything is kSolve).
  Index ff_iterations = 0;
  SolverVariant variant = SolverVariant::kClassic;
  /// Borrowed preconditioner instance; null means identity (plain CG,
  /// uncharged). Setup is charged under PhaseTag::kPrecond on first use;
  /// the instance must outlive the solve.
  Preconditioner* preconditioner = nullptr;
  /// Borrowed SpMV plan over a.global() (sparse::SpmvKernel::prepare);
  /// null runs the seed's csr-scalar free functions. Must outlive the
  /// solve. Flop charges are format-invariant.
  const sparse::SpmvPlan* spmv_plan = nullptr;
  /// Kernel used for auxiliary local matrices the resilience layer
  /// builds mid-solve (recovery blocks, preconditioner blocks); null
  /// means csr-scalar.
  const sparse::SpmvKernel* spmv_kernel = nullptr;
  /// Optional observer of the residual trajectory (see IterationEvent).
  IterationCallback observer;
};

struct CgResult {
  Index iterations = 0;
  bool converged = false;
  Real relative_residual = 0.0;
  /// ‖r‖/‖b‖ after each iteration (only when recording is enabled).
  RealVec residual_history;
};

/// What a hook did at an iteration boundary.
enum class HookAction {
  kContinue,  // nothing that invalidates CG state
  kRestart,   // x was modified: rebuild r and p from the current x
  kAbort      // unrecoverable: stop iterating and return non-converged.
              // The resilience layer issues this when its escalation
              // ladder is exhausted (declared failure), after placing a
              // structured fallback iterate in x.
};

struct CgIterationView {
  Index iteration = 0;
  Real relative_residual = 0.0;
  /// The global iterate; hooks may overwrite any block.
  std::span<Real> x;
  /// The solver's recurrence state (residual and search direction). A
  /// hook that modifies these without returning kRestart leaves CG
  /// running on corrupted internal state — exactly the silent-data-
  /// corruption scenario the detection layer must catch. kRestart
  /// rebuilds both from x.
  std::span<Real> r;
  std::span<Real> p;
  /// Additional live recurrence vectors beyond r and p, in solver-defined
  /// order — the pipelined variant exposes {u = M⁻¹r, w = Au, s, q, z};
  /// empty for the classic variant. A process loss destroys the failed
  /// rank's block of *all* of these; exact-recovery schemes (kContinue)
  /// must protect and restore every one, and kRestart rebuilds them all
  /// from x.
  std::vector<std::span<Real>> extra;
};

using IterationHook = std::function<HookAction(const CgIterationView&)>;

/// Solve A x = b from the provided initial guess (x is updated in place).
/// The hook (optional) runs after every completed iteration.
CgResult cg_solve(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
                  std::span<const Real> b, RealVec& x,
                  const CgOptions& options, const IterationHook& hook = {});

}  // namespace rsls::solver
