#include "solver/preconditioner.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "dist/rank_executor.hpp"
#include "la/factor.hpp"
#include "la/flops.hpp"
#include "la/local_cg.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::solver {

using power::PhaseTag;

namespace {

/// Inner-solve tolerance of the block-Jacobi apply: tight enough that
/// the inexact block solve behaves as a fixed linear operator for the
/// outer CG (flexible-CG drift stays below the outer tolerance).
constexpr Real kBlockJacobiInnerTolerance = 1e-10;

class IdentityPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "identity"; }
  bool is_identity() const override { return true; }

  void setup(const dist::DistMatrix&, simrt::VirtualCluster&) override {}

  void apply(const dist::DistMatrix&, simrt::VirtualCluster&,
             std::span<const Real> r, std::span<Real> z,
             PhaseTag) override {
    // The seed solver's uncharged alias copy.
    sparse::copy(r, z);
  }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "jacobi"; }

  void setup(const dist::DistMatrix& a,
             simrt::VirtualCluster& cluster) override {
    if (!inv_diag_.empty()) {
      return;
    }
    inv_diag_ = sparse::diagonal(a.global());
    for (Real& v : inv_diag_) {
      RSLS_CHECK_MSG(v > 0.0, "Jacobi PCG requires a positive diagonal");
      v = 1.0 / v;
    }
    const auto& part = a.partition();
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)),
          PhaseTag::kPrecond);
    }
  }

  void apply(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
             std::span<const Real> r, std::span<Real> z,
             PhaseTag tag) override {
    RSLS_CHECK_MSG(!inv_diag_.empty(), "preconditioner applied before setup");
    const auto& part = a.partition();
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto lo = static_cast<std::size_t>(part.begin(rank));
          const auto hi = static_cast<std::size_t>(part.end(rank));
          for (std::size_t i = lo; i < hi; ++i) {
            z[i] = inv_diag_[i] * r[i];
          }
        },
        /*work=*/part.size());
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, static_cast<double>(part.block_rows(rank)), tag);
    }
  }

  void rebuild_local(const dist::DistMatrix& a,
                     simrt::VirtualCluster& cluster, Index rank) override {
    if (inv_diag_.empty()) {
      return;
    }
    const auto& part = a.partition();
    const RealVec diag = sparse::diagonal(a.global());
    for (Index i = part.begin(rank); i < part.end(rank); ++i) {
      inv_diag_[static_cast<std::size_t>(i)] =
          1.0 / diag[static_cast<std::size_t>(i)];
    }
    cluster.charge_compute(rank,
                           static_cast<double>(part.block_rows(rank)),
                           PhaseTag::kPrecond);
  }

  double apply_flops(Index) const override {
    return inv_diag_.empty() ? 0.0 : 1.0;
  }

 private:
  RealVec inv_diag_;
};

/// z_p = A_{p,p}⁻¹ r_p solved inexactly per rank with la/local_cg (the
/// §4.1 LI machinery reused as a preconditioner).
class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "block-jacobi"; }

  void setup(const dist::DistMatrix& a,
             simrt::VirtualCluster& cluster) override {
    if (!blocks_.empty()) {
      return;
    }
    const auto& part = a.partition();
    blocks_.resize(static_cast<std::size_t>(part.parts()));
    plans_.resize(static_cast<std::size_t>(part.parts()));
    inner_diag_.resize(static_cast<std::size_t>(part.parts()));
    apply_flops_.assign(static_cast<std::size_t>(part.parts()), 0.0);
    for (Index rank = 0; rank < part.parts(); ++rank) {
      build_block(a, rank);
      // Extraction + diagonal pass: one sweep over the block's entries.
      cluster.charge_compute(
          rank,
          la::spmv_flops(blocks_[static_cast<std::size_t>(rank)].nnz()),
          PhaseTag::kPrecond);
    }
  }

  void apply(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
             std::span<const Real> r, std::span<Real> z,
             PhaseTag tag) override {
    RSLS_CHECK_MSG(!blocks_.empty(), "preconditioner applied before setup");
    const auto& part = a.partition();
    // The charge of each rank's apply depends on its inner-solve
    // iteration count, so the bodies run first — in parallel, writing
    // only their own z block and apply_flops_ slot — and the cluster
    // charges are issued afterwards, serially, in ascending rank order
    // (the ordered charge-merge contract from DESIGN.md §17).
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto& block = blocks_[static_cast<std::size_t>(rank)];
          const sparse::SpmvPlan* plan =
              plans_[static_cast<std::size_t>(rank)].get();
          const Index begin = part.begin(rank);
          const Index rows = part.block_rows(rank);
          const la::SpdOperator op = [&block, plan](std::span<const Real> in,
                                                    std::span<Real> out) {
            if (plan != nullptr) {
              plan->spmv(in, out);
            } else {
              sparse::spmv(block, in, out);
            }
          };
          la::LocalCgOptions inner;
          inner.tolerance = kBlockJacobiInnerTolerance;
          inner.max_iterations = std::max<Index>(64, 4 * rows);
          RealVec z_local(static_cast<std::size_t>(rows), 0.0);
          const auto result = la::local_pcg(
              op, inner_diag_[static_cast<std::size_t>(rank)],
              r.subspan(static_cast<std::size_t>(begin),
                        static_cast<std::size_t>(rows)),
              z_local, inner);
          for (Index i = 0; i < rows; ++i) {
            z[static_cast<std::size_t>(begin + i)] =
                z_local[static_cast<std::size_t>(i)];
          }
          apply_flops_[static_cast<std::size_t>(rank)] =
              static_cast<double>(result.operator_applications) *
                  la::spmv_flops(block.nnz()) +
              static_cast<double>(result.iterations) * 10.0 *
                  static_cast<double>(rows);
        });
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(rank,
                             apply_flops_[static_cast<std::size_t>(rank)],
                             tag);
    }
  }

  void rebuild_local(const dist::DistMatrix& a,
                     simrt::VirtualCluster& cluster, Index rank) override {
    if (blocks_.empty()) {
      return;
    }
    build_block(a, rank);
    cluster.charge_compute(
        rank, la::spmv_flops(blocks_[static_cast<std::size_t>(rank)].nnz()),
        PhaseTag::kPrecond);
  }

  double apply_flops(Index rank) const override {
    return apply_flops_.empty()
               ? 0.0
               : apply_flops_[static_cast<std::size_t>(rank)];
  }

 private:
  void build_block(const dist::DistMatrix& a, Index rank) {
    auto& block = blocks_[static_cast<std::size_t>(rank)];
    block = a.diagonal_block(rank);
    RealVec diag = sparse::diagonal(block);
    for (Real& v : diag) {
      RSLS_CHECK_MSG(v > 0.0,
                     "block-Jacobi requires positive diagonal blocks");
      v = 1.0 / v;
    }
    inner_diag_[static_cast<std::size_t>(rank)] = std::move(diag);
    plans_[static_cast<std::size_t>(rank)] =
        spmv_kernel_ != nullptr ? spmv_kernel_->prepare(block) : nullptr;
  }

  std::vector<sparse::Csr> blocks_;
  /// Per-block kernel plans (null = csr-scalar free function). Rebuilt
  /// with the block: a plan references its block's storage.
  std::vector<std::unique_ptr<sparse::SpmvPlan>> plans_;
  std::vector<RealVec> inner_diag_;
  std::vector<double> apply_flops_;
};

class Ic0Preconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "ic0"; }

  void setup(const dist::DistMatrix& a,
             simrt::VirtualCluster& cluster) override {
    if (!factors_.empty()) {
      return;
    }
    const auto& part = a.partition();
    factors_.reserve(static_cast<std::size_t>(part.parts()));
    for (Index rank = 0; rank < part.parts(); ++rank) {
      factors_.emplace_back(a.diagonal_block(rank));
      cluster.charge_compute(rank, factors_.back().factor_flops(),
                             PhaseTag::kPrecond);
    }
  }

  void apply(const dist::DistMatrix& a, simrt::VirtualCluster& cluster,
             std::span<const Real> r, std::span<Real> z,
             PhaseTag tag) override {
    RSLS_CHECK_MSG(!factors_.empty(), "preconditioner applied before setup");
    const auto& part = a.partition();
    dist::RankExecutor::instance().for_each_rank(
        part.parts(), [&](Index rank) {
          const auto& factor = factors_[static_cast<std::size_t>(rank)];
          const Index begin = part.begin(rank);
          const Index rows = part.block_rows(rank);
          factor.solve(r.subspan(static_cast<std::size_t>(begin),
                                 static_cast<std::size_t>(rows)),
                       z.subspan(static_cast<std::size_t>(begin),
                                 static_cast<std::size_t>(rows)));
        });
    for (Index rank = 0; rank < part.parts(); ++rank) {
      cluster.charge_compute(
          rank, factors_[static_cast<std::size_t>(rank)].solve_flops(), tag);
    }
  }

  void rebuild_local(const dist::DistMatrix& a,
                     simrt::VirtualCluster& cluster, Index rank) override {
    if (factors_.empty()) {
      return;
    }
    factors_[static_cast<std::size_t>(rank)] =
        la::IncompleteCholesky0(a.diagonal_block(rank));
    cluster.charge_compute(
        rank, factors_[static_cast<std::size_t>(rank)].factor_flops(),
        PhaseTag::kPrecond);
  }

  double apply_flops(Index rank) const override {
    return factors_.empty()
               ? 0.0
               : factors_[static_cast<std::size_t>(rank)].solve_flops();
  }

 private:
  std::vector<la::IncompleteCholesky0> factors_;
};

}  // namespace

std::vector<std::string> preconditioner_names() {
  return {"identity", "jacobi", "block-jacobi", "ic0"};
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name) {
  if (name == "identity") {
    return std::make_unique<IdentityPreconditioner>();
  }
  if (name == "jacobi") {
    return std::make_unique<JacobiPreconditioner>();
  }
  if (name == "block-jacobi") {
    return std::make_unique<BlockJacobiPreconditioner>();
  }
  if (name == "ic0") {
    return std::make_unique<Ic0Preconditioner>();
  }
  std::string roster;
  for (const std::string& valid : preconditioner_names()) {
    if (!roster.empty()) {
      roster += '|';
    }
    roster += valid;
  }
  throw Error("unknown preconditioner: " + name + " (valid: " + roster + ")");
}

}  // namespace rsls::solver
