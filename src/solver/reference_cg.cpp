#include "solver/reference_cg.hpp"

#include "core/error.hpp"
#include "la/local_cg.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::solver {

ReferenceCgResult reference_cg(const sparse::Csr& a, std::span<const Real> b,
                               RealVec& x, Real tolerance,
                               Index max_iterations) {
  RSLS_CHECK(a.rows == a.cols);
  la::LocalCgOptions options;
  options.tolerance = tolerance;
  options.max_iterations = max_iterations;
  const la::LocalCgResult inner = la::local_cg(
      [&a](std::span<const Real> in, std::span<Real> out) {
        sparse::spmv(a, in, out);
      },
      b, x, options);
  ReferenceCgResult result;
  result.iterations = inner.iterations;
  result.converged = inner.converged;
  result.relative_residual = inner.relative_residual;
  return result;
}

}  // namespace rsls::solver
