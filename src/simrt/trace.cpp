#include "simrt/trace.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::simrt {

PowerTrace::PowerTrace(Index nodes, Seconds bin_width)
    : nodes_(nodes),
      bin_width_(bin_width),
      bins_(static_cast<std::size_t>(nodes)) {
  RSLS_CHECK(nodes >= 1);
  RSLS_CHECK(bin_width > 0.0);
}

void PowerTrace::ensure_bins(std::size_t count) {
  for (auto& node_bins : bins_) {
    if (node_bins.size() < count) {
      node_bins.resize(count, 0.0);
    }
  }
}

void PowerTrace::add(Index node, Seconds start, Seconds duration,
                     Joules joules) {
  RSLS_CHECK(node >= 0 && node < nodes_);
  RSLS_CHECK(start >= 0.0 && duration >= 0.0 && joules >= 0.0);
  if (duration <= 0.0 || joules <= 0.0) {
    return;
  }
  const auto first_bin = static_cast<std::size_t>(start / bin_width_);
  const auto last_bin =
      static_cast<std::size_t>((start + duration) / bin_width_);
  ensure_bins(last_bin + 1);
  auto& node_bins = bins_[static_cast<std::size_t>(node)];
  const Watts mean_power = joules / duration;
  for (std::size_t b = first_bin; b <= last_bin; ++b) {
    const Seconds bin_start = static_cast<double>(b) * bin_width_;
    const Seconds overlap_start = std::max(start, bin_start);
    const Seconds overlap_end = std::min(start + duration, bin_start + bin_width_);
    const Seconds overlap = std::max(0.0, overlap_end - overlap_start);
    node_bins[b] += mean_power * overlap;
  }
}

std::vector<PowerSample> PowerTrace::render(Index node, Seconds end_time,
                                            Watts constant_power) const {
  RSLS_CHECK(node >= 0 && node < nodes_);
  RSLS_CHECK(end_time >= 0.0);
  const auto bin_count =
      static_cast<std::size_t>(std::ceil(end_time / bin_width_));
  std::vector<PowerSample> samples;
  samples.reserve(bin_count);
  const auto& node_bins = bins_[static_cast<std::size_t>(node)];
  for (std::size_t b = 0; b < bin_count; ++b) {
    PowerSample sample;
    sample.time = static_cast<double>(b) * bin_width_;
    const Joules binned = b < node_bins.size() ? node_bins[b] : 0.0;
    sample.power = binned / bin_width_ + constant_power;
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace rsls::simrt
