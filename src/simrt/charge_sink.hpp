#pragma once
// Observer interface on VirtualCluster's charge path.
//
// Every interval the cluster charges — compute, waiting, I/O — is
// published to the registered sinks as one ChargeRecord. The EventLog is
// one such sink; the observability recorder (src/obs) is another. Sinks
// are non-owning observers: whoever registers one must keep it alive
// until the cluster is done charging (or remove it).
//
// DVFS retargets (explicit set_frequency calls and governor decisions
// applied mid-interval) are published separately so sinks can count
// transitions or mark them on a timeline without parsing charge records.

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/power_model.hpp"
#include "power/rapl.hpp"

namespace rsls::simrt {

/// One charged interval on one rank, as seen by the cluster.
struct ChargeRecord {
  Index rank = 0;
  Index node = 0;
  Seconds begin = 0.0;
  Seconds end = 0.0;
  power::Activity activity = power::Activity::kActive;
  power::PhaseTag tag = power::PhaseTag::kSolve;
  /// Core energy of the interval, replica-scaled (what EnergyAccount saw).
  Joules core_joules = 0.0;
};

class ChargeSink {
 public:
  virtual ~ChargeSink() = default;

  virtual void on_charge(const ChargeRecord& record) = 0;

  /// A core changed operating frequency at virtual time `time`.
  virtual void on_dvfs_transition(Index /*rank*/, Seconds /*time*/,
                                  Hertz /*from*/, Hertz /*to*/) {}
};

}  // namespace rsls::simrt
