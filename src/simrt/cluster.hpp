#pragma once
// VirtualCluster: the deterministic substrate that replaces the paper's
// MPI cluster (DESIGN.md §2).
//
// The model is bulk-synchronous virtual time. Each simulated MPI rank is
// pinned to one core (the paper's process-core binding) and owns a virtual
// clock. Numerics execute exactly in the caller; this class charges the
// *costs*: compute time (flops / (flops-per-cycle × frequency)),
// communication (α–β), storage, DVFS transitions, and the energy of every
// charged interval through the RAPL-calibrated power model. Barriers
// advance waiting ranks' clocks to the maximum at busy-poll power.
//
// Dual modular redundancy is expressed by replica_factor = 2: the replica
// executes the same schedule, so time is unchanged while core and node
// energy double (paper Eq. 12).

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/governor.hpp"
#include "power/power_model.hpp"
#include "power/rapl.hpp"
#include "simrt/charge_sink.hpp"
#include "simrt/event_log.hpp"
#include "simrt/machine.hpp"
#include "simrt/net/interconnect.hpp"
#include "simrt/trace.hpp"

namespace rsls::simrt {

class VirtualCluster {
 public:
  /// num_ranks ≤ config.total_cores(); ranks fill nodes in order.
  VirtualCluster(const MachineConfig& config, Index num_ranks,
                 Index replica_factor = 1);

  Index num_ranks() const { return num_ranks_; }
  Index replica_factor() const { return replica_factor_; }
  const MachineConfig& config() const { return config_; }
  const power::PowerModel& power_model() const { return power_model_; }

  /// Node hosting a rank.
  Index node_of(Index rank) const;
  /// Nodes with at least one rank.
  Index nodes_used() const;

  // --- DVFS -----------------------------------------------------------
  /// Governor policy consulted before every charged interval; defaults to
  /// "performance". Explicit set_frequency calls model the userspace
  /// governor's interface.
  void set_governor(std::unique_ptr<power::Governor> governor);
  const power::Governor& governor() const { return *governor_; }

  /// Pin a core's frequency (snapped to the table). Charges the DVFS
  /// transition latency when the frequency actually changes.
  void set_frequency(Index rank, Hertz hz);
  void set_frequency_all(Hertz hz);
  void set_frequency_all_except(Index rank, Hertz hz);
  Hertz frequency(Index rank) const;

  // --- time & energy charging -----------------------------------------
  /// Seconds to execute `flops` on `rank` at its current frequency.
  Seconds compute_seconds(Index rank, double flops) const;

  /// Run `flops` of computation on one rank.
  void charge_compute(Index rank, double flops, power::PhaseTag tag);

  /// Advance one rank by `duration` in the given activity state.
  void charge_duration(Index rank, Seconds duration, power::Activity activity,
                       power::PhaseTag tag);

  /// Advance every rank by the same duration/activity.
  void advance_all(Seconds duration, power::Activity activity,
                   power::PhaseTag tag);

  /// Barrier: every rank busy-waits up to the max clock.
  void sync(power::PhaseTag tag = power::PhaseTag::kComm);

  // --- communication (simrt/net interconnect) ---------------------------
  /// Every transfer below is priced by the interconnect: topology hop
  /// counts and bisection contention on top of the machine's α–β link.
  /// The default FlatNetwork + recursive doubling reproduces the
  /// original flat α–β charges bit-for-bit.
  const net::Interconnect& interconnect() const { return *net_; }

  /// Running message/byte/contention totals of every charge above the
  /// interconnect (surfaced as comm.* obs counters by the harness).
  const net::CommStats& comm_stats() const { return comm_stats_; }

  /// One-link transfer cost (endpoint-agnostic α + bytes/β).
  Seconds p2p_seconds(Bytes bytes) const;
  /// Hop-aware transfer cost between two ranks.
  Seconds transfer_seconds(Index from, Index to, Bytes bytes) const;
  /// Slowest rank's cost of one allreduce under the configured
  /// collective algorithm (default: recursive doubling).
  Seconds allreduce_seconds(Bytes bytes) const;

  /// Collective allreduce: synchronizes, then charges each rank its own
  /// per-stage finish time (uniform on the default flat network).
  void allreduce(Bytes bytes, power::PhaseTag tag);

  /// In-flight non-blocking allreduce issued by allreduce_start: the
  /// per-rank algorithmic costs plus the virtual time at which the
  /// exchange could begin (when the last rank posted its contribution).
  struct PendingAllreduce {
    Seconds posted = 0.0;
    std::vector<Seconds> costs;
    bool active = false;
  };

  /// Non-blocking allreduce seam (MPI_Iallreduce + MPI_Wait): start
  /// posts the collective at each rank's current clock without charging
  /// anything; compute charged between start and finish overlaps the
  /// exchange. finish charges every rank only the *exposed* remainder —
  /// max(0, posted_max + cost_r − now_r) — as waiting time, so a
  /// communication-hiding solver genuinely pays less than the blocking
  /// call. The hidden/exposed split is accumulated in comm_stats().
  PendingAllreduce allreduce_start(Bytes bytes, power::PhaseTag tag);
  void allreduce_finish(PendingAllreduce& pending, power::PhaseTag tag);

  /// Collective broadcast from / reduction onto `root`; asymmetric
  /// per-rank charges from the collective strategy.
  void broadcast(Index root, Bytes bytes, power::PhaseTag tag);
  void reduce(Index root, Bytes bytes, power::PhaseTag tag);

  /// Point-to-point transfer; both endpoints end at the common finish time.
  void point_to_point(Index from, Index to, Bytes bytes, power::PhaseTag tag);

  /// Per-rank neighbour exchange (SpMV halo): rank r spends
  /// msgs[r]·α + bytes[r]/β (hop/contention-aware off the flat
  /// network). No global synchronization.
  void halo_exchange(const std::vector<Bytes>& bytes_per_rank,
                     const IndexVec& msgs_per_rank, power::PhaseTag tag);

  /// One-sided neighbour gather: only `rank` blocks for msgs messages
  /// and `bytes` payload (FW reconstruction pulls).
  void neighbor_gather(Index rank, double msgs, Bytes bytes,
                       power::PhaseTag tag);

  /// One-sided fetch of `copies` × `bytes` from `rank`'s replica
  /// partner (DMR restore pulls one copy, the TMR vote two); only
  /// `rank` blocks. Replica sets live across the machine, so the
  /// transfer runs at topology-diameter distance.
  void replica_fetch(Index rank, Bytes bytes, Index copies,
                     power::PhaseTag tag);

  // --- spare ranks ------------------------------------------------------
  /// Provision `count` warm spare cores. Spares draw sleep power from
  /// t = 0 whether or not they are ever promoted (the standby cost of
  /// the pool, folded into sleep_energy()); count 0 restores the seed's
  /// no-spares model exactly.
  void set_spare_ranks(Index count);
  /// Spares still available for promotion.
  Index spare_ranks() const { return spare_pool_; }
  /// Spares promoted so far.
  Index spares_consumed() const { return spares_consumed_; }

  /// Substitute a spare for `failed_rank`: streams `state_bytes` of
  /// solver state to the spare at topology-diameter distance (the spare
  /// lives wherever the machine had room, not next door), then
  /// broadcasts the membership change. Only the failed slot's timeline
  /// blocks for the transfer. Returns false (charging nothing) when the
  /// pool is dry — the caller must fall back to shrinking recovery.
  bool promote_spare(Index failed_rank, Bytes state_bytes,
                     power::PhaseTag tag);

  // --- storage ----------------------------------------------------------
  /// Synchronous collective checkpoint of `total_bytes` to the shared
  /// disk; all ranks block for latency + total/bandwidth.
  void write_disk(Bytes total_bytes, power::PhaseTag tag);
  void read_disk(Bytes total_bytes, power::PhaseTag tag);

  /// Synchronous collective checkpoint to node-local memory: each node
  /// copies its share in parallel.
  void write_memory(Bytes total_bytes, power::PhaseTag tag);
  void read_memory(Bytes total_bytes, power::PhaseTag tag);

  // --- queries ----------------------------------------------------------
  Seconds now(Index rank) const;
  /// Makespan: max over rank clocks.
  Seconds elapsed() const;

  /// Core-attributed energy per phase (replica-scaled).
  const power::EnergyAccount& energy() const { return energy_; }

  /// Uncore/DRAM energy accrued with wall time on every used node,
  /// replica-scaled.
  Joules node_constant_energy() const;

  /// Energy of sleeping unused cores on used nodes, replica-scaled.
  Joules sleep_energy() const;

  /// Cores + uncore/DRAM + sleeping unused cores, replica-scaled:
  /// energy().core_energy_total() + node_constant_energy() +
  /// sleep_energy().
  Joules total_energy() const;

  /// total_energy() / elapsed().
  Watts average_power() const;

  // --- charge sinks ------------------------------------------------------
  /// Register an observer of the charge path (non-owning; the caller
  /// keeps it alive until removed or the cluster is destroyed). Every
  /// charged interval and DVFS transition is published to all sinks.
  void add_charge_sink(ChargeSink* sink);
  void remove_charge_sink(ChargeSink* sink);

  // --- event log ---------------------------------------------------------
  /// Opt-in per-interval phase logging (see EventLog's memory caveat);
  /// registers a cluster-owned EventLog as one charge sink. capacity 0
  /// keeps everything; otherwise the newest `capacity` events are kept
  /// (oldest-first eviction, dropped-event counter).
  void enable_event_log(std::size_t capacity = 0);
  bool event_log_enabled() const { return event_log_ != nullptr; }
  /// Requires enable_event_log() to have been called.
  const EventLog& event_log() const;

  // --- power trace -------------------------------------------------------
  void enable_power_trace(Seconds bin_width);
  bool power_trace_enabled() const { return trace_ != nullptr; }

  /// Rendered per-node power profile (single replica, i.e. what a RAPL
  /// sampler on that node would see).
  std::vector<PowerSample> node_power_profile(Index node) const;

 private:
  /// Core of the interval charger: applies the governor (with sampling
  /// lag), advances the clock, accrues energy and the trace.
  void charge_interval(Index rank, Seconds duration, power::Activity activity,
                       power::PhaseTag tag);

  MachineConfig config_;
  power::PowerModel power_model_;
  Index num_ranks_;
  Index replica_factor_;
  std::unique_ptr<net::Interconnect> net_;
  net::CommStats comm_stats_;
  std::unique_ptr<power::Governor> governor_;
  std::vector<Seconds> clock_;
  std::vector<Hertz> freq_;
  Index spare_pool_ = 0;
  Index initial_spares_ = 0;
  Index spares_consumed_ = 0;
  power::EnergyAccount energy_;
  std::unique_ptr<PowerTrace> trace_;
  std::unique_ptr<EventLog> event_log_;
  std::vector<ChargeSink*> sinks_;
};

}  // namespace rsls::simrt
