#pragma once
// Time-binned power trace, the simulated analogue of sampling RAPL at a
// fixed rate while the application runs (Fig. 7a).

#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/rapl.hpp"

namespace rsls::simrt {

/// One rendered sample of the trace.
struct PowerSample {
  Seconds time = 0.0;   // bin start
  Watts power = 0.0;    // average power over the bin
};

/// Accumulates per-node core energy into fixed-width time bins. Node
/// constant power (uncore/DRAM) and sleeping unused cores are added at
/// render time since they accrue uniformly with wall time.
class PowerTrace {
 public:
  PowerTrace(Index nodes, Seconds bin_width);

  Seconds bin_width() const { return bin_width_; }

  /// Spread `joules` uniformly over [start, start + duration) for `node`.
  void add(Index node, Seconds start, Seconds duration, Joules joules);

  /// Render node `node`'s power profile up to `end_time`, adding
  /// `constant_power` to every bin.
  std::vector<PowerSample> render(Index node, Seconds end_time,
                                  Watts constant_power) const;

 private:
  void ensure_bins(std::size_t count);

  Index nodes_;
  Seconds bin_width_;
  // bins_[node][bin] = joules
  std::vector<std::vector<Joules>> bins_;
};

}  // namespace rsls::simrt
