#pragma once
// Interconnect configuration: which topology the virtual cluster's
// network has and which collective algorithm its runtime uses.
//
// The default (FlatNetwork + recursive doubling) reproduces the original
// single-link α–β model bit-for-bit (DESIGN.md §12's default-equivalence
// guarantee); the other combinations open topology scenarios the paper's
// §6 projection only approximates through the fitted comm table.

#include <optional>
#include <string>

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::simrt::net {

enum class TopologyKind {
  kFlat,     // every pair one hop, full bisection (the seed model)
  kFatTree,  // three-level folded Clos: leaf / pod / core
  kTorus3D,  // 3-D torus with per-axis wraparound links
};

enum class CollectiveKind {
  kRecursiveDoubling,  // log₂ p stages, full payload per stage
  kRing,               // 2(p−1) stages, payload/p per stage
  kBinomialTree,       // reduce + broadcast trees, asymmetric ranks
};

struct NetworkConfig {
  TopologyKind topology = TopologyKind::kFlat;
  CollectiveKind collective = CollectiveKind::kRecursiveDoubling;

  /// Extra switch-traversal latency per link beyond the first hop; the
  /// first hop is covered by MachineConfig::net_latency.
  Seconds per_hop_latency = 0.02e-6;

  /// Fat tree: ranks per leaf switch, and the up-link oversubscription
  /// ratio (1 = full bisection; >1 thins the core links, raising the
  /// contention multiplier when the whole machine communicates at once).
  Index fat_tree_radix = 24;
  double fat_tree_oversubscription = 2.0;

  /// Torus dimensions. All zero (the default) derives a near-cubic box
  /// from the rank count; otherwise all three must be ≥ 1 and the
  /// product must cover the ranks.
  Index torus_x = 0;
  Index torus_y = 0;
  Index torus_z = 0;
};

/// Parse "flat" | "fat-tree" | "torus3d" (case-sensitive, plus the
/// aliases "fattree" and "torus"); nullopt when unrecognized.
std::optional<TopologyKind> topology_from_name(const std::string& name);

/// Parse "recursive-doubling" | "ring" | "binomial-tree" (aliases "rd"
/// and "binomial"); nullopt when unrecognized.
std::optional<CollectiveKind> collective_from_name(const std::string& name);

const char* to_string(TopologyKind kind);
const char* to_string(CollectiveKind kind);

}  // namespace rsls::simrt::net
