#pragma once
// Collective algorithm strategies: allreduce / broadcast / reduce cost
// vectors over a Topology.
//
// Each strategy returns the *per-rank* cost of one collective — seconds
// past the synchronized start at which that rank finishes its stages.
// Stage costs are hop-aware α–β with the topology's contention
// multiplier on the serialization term, so non-flat networks charge
// ranks asymmetrically. On a uniform (flat) topology, recursive
// doubling collapses to the seed closed form stages·(α + bytes/β),
// bit-identical to the pre-net-layer model.

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "simrt/net/topology.hpp"

namespace rsls::simrt::net {

/// Per-link α–β parameters shared by every algorithm.
struct LinkParams {
  Seconds alpha = 0.0;    // first-hop injection latency
  double beta = 1.0;      // bytes/s per link
  Seconds per_hop = 0.0;  // extra latency per hop beyond the first
};

/// One message of `bytes` over `hops` links while `concurrent` messages
/// share the network: α + (hops−1)·per_hop + bytes·contention/β.
Seconds message_seconds(const Topology& topo, const LinkParams& link,
                        Index hops, Bytes bytes, Index concurrent);

class CollectiveAlgorithm {
 public:
  virtual ~CollectiveAlgorithm() = default;

  virtual const char* name() const = 0;
  virtual CollectiveKind kind() const = 0;

  /// Per-rank cost of an allreduce of `bytes` over all of topo's ranks.
  virtual std::vector<Seconds> allreduce_costs(const Topology& topo,
                                               const LinkParams& link,
                                               Bytes bytes) const = 0;

  /// Per-rank cost of a broadcast of `bytes` from `root`.
  virtual std::vector<Seconds> broadcast_costs(const Topology& topo,
                                               const LinkParams& link,
                                               Index root,
                                               Bytes bytes) const = 0;

  /// Per-rank cost of a reduction of `bytes` onto `root`.
  virtual std::vector<Seconds> reduce_costs(const Topology& topo,
                                            const LinkParams& link, Index root,
                                            Bytes bytes) const = 0;

  /// Total messages one allreduce puts on the wire (comm accounting).
  virtual double allreduce_messages(Index ranks) const = 0;

  /// Total payload bytes one allreduce moves across all links.
  virtual Bytes allreduce_wire_bytes(Index ranks, Bytes bytes) const = 0;
};

/// log₂ p stages of pairwise XOR exchanges, full payload per stage.
class RecursiveDoubling final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "recursive-doubling"; }
  CollectiveKind kind() const override {
    return CollectiveKind::kRecursiveDoubling;
  }
  std::vector<Seconds> allreduce_costs(const Topology& topo,
                                       const LinkParams& link,
                                       Bytes bytes) const override;
  std::vector<Seconds> broadcast_costs(const Topology& topo,
                                       const LinkParams& link, Index root,
                                       Bytes bytes) const override;
  std::vector<Seconds> reduce_costs(const Topology& topo,
                                    const LinkParams& link, Index root,
                                    Bytes bytes) const override;
  double allreduce_messages(Index ranks) const override;
  Bytes allreduce_wire_bytes(Index ranks, Bytes bytes) const override;
};

/// Reduce-scatter + allgather around the ring: 2(p−1) stages of
/// payload/p chunks to the next rank. Bandwidth-optimal, latency-heavy.
class Ring final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "ring"; }
  CollectiveKind kind() const override { return CollectiveKind::kRing; }
  std::vector<Seconds> allreduce_costs(const Topology& topo,
                                       const LinkParams& link,
                                       Bytes bytes) const override;
  std::vector<Seconds> broadcast_costs(const Topology& topo,
                                       const LinkParams& link, Index root,
                                       Bytes bytes) const override;
  std::vector<Seconds> reduce_costs(const Topology& topo,
                                    const LinkParams& link, Index root,
                                    Bytes bytes) const override;
  double allreduce_messages(Index ranks) const override;
  Bytes allreduce_wire_bytes(Index ranks, Bytes bytes) const override;
};

/// Binomial reduce onto the root followed by a binomial broadcast.
/// Leaves finish after one exchange each; the root is busy every stage —
/// the most asymmetric of the three.
class BinomialTree final : public CollectiveAlgorithm {
 public:
  const char* name() const override { return "binomial-tree"; }
  CollectiveKind kind() const override {
    return CollectiveKind::kBinomialTree;
  }
  std::vector<Seconds> allreduce_costs(const Topology& topo,
                                       const LinkParams& link,
                                       Bytes bytes) const override;
  std::vector<Seconds> broadcast_costs(const Topology& topo,
                                       const LinkParams& link, Index root,
                                       Bytes bytes) const override;
  std::vector<Seconds> reduce_costs(const Topology& topo,
                                    const LinkParams& link, Index root,
                                    Bytes bytes) const override;
  double allreduce_messages(Index ranks) const override;
  Bytes allreduce_wire_bytes(Index ranks, Bytes bytes) const override;
};

std::unique_ptr<CollectiveAlgorithm> make_collective(CollectiveKind kind);

/// ceil(log₂(max(p, 2))) as an integer — the stage count every
/// log-depth algorithm shares (matches the seed's std::ceil(std::log2)).
Index collective_stages(Index ranks);

}  // namespace rsls::simrt::net
