#pragma once
// Interconnect: the cluster-facing facade over one Topology + one
// CollectiveAlgorithm. VirtualCluster owns one and routes every
// communication charge through it; consumers (dist ops, resilience,
// ABFT) pass message *shapes* — bytes, message counts, endpoints — and
// the interconnect prices them.
//
// Default-equivalence guarantee: with NetworkConfig{} (FlatNetwork +
// recursive doubling) every cost below reproduces the pre-net-layer
// closed forms bit-for-bit:
//   p2p            α + bytes/β
//   allreduce      ceil(log₂ max(p,2)) · (α + bytes/β), uniform ranks
//   halo/gather    msgs·α + bytes/β, per rank
//   replica fetch  α + bytes/β

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "simrt/net/collectives.hpp"
#include "simrt/net/topology.hpp"

namespace rsls::simrt::net {

/// Running totals of everything the interconnect priced, kept by the
/// owning cluster and surfaced as obs counters (comm.messages,
/// comm.wire_bytes, comm.max_contention, …).
struct CommStats {
  double messages = 0.0;     // individual messages on the wire
  Bytes wire_bytes = 0.0;    // payload bytes across all links
  double allreduces = 0.0;   // collective invocations by kind
  double broadcasts = 0.0;
  double reductions = 0.0;
  double p2p_messages = 0.0;
  double halo_messages = 0.0;
  double gather_messages = 0.0;
  double replica_fetches = 0.0;
  double max_contention = 1.0;  // worst bisection multiplier observed
  /// Allreduce cost split by visibility: `exposed` is the part ranks
  /// actually waited out, `hidden` the part overlapped behind compute
  /// posted between allreduce_start and allreduce_finish. Blocking
  /// allreduces are fully exposed; the split is summed over ranks.
  Seconds allreduce_exposed_seconds = 0.0;
  Seconds allreduce_hidden_seconds = 0.0;
};

/// Per-run view of a long-lived cluster's running totals: `end` minus a
/// `begin` snapshot taken when the run started. The additive fields
/// subtract; max_contention is a running maximum, not additive, so the
/// end value carries over (the worst observed up to `end`).
inline CommStats diff(const CommStats& end, const CommStats& begin) {
  CommStats d;
  d.messages = end.messages - begin.messages;
  d.wire_bytes = end.wire_bytes - begin.wire_bytes;
  d.allreduces = end.allreduces - begin.allreduces;
  d.broadcasts = end.broadcasts - begin.broadcasts;
  d.reductions = end.reductions - begin.reductions;
  d.p2p_messages = end.p2p_messages - begin.p2p_messages;
  d.halo_messages = end.halo_messages - begin.halo_messages;
  d.gather_messages = end.gather_messages - begin.gather_messages;
  d.replica_fetches = end.replica_fetches - begin.replica_fetches;
  d.max_contention = end.max_contention;
  d.allreduce_exposed_seconds =
      end.allreduce_exposed_seconds - begin.allreduce_exposed_seconds;
  d.allreduce_hidden_seconds =
      end.allreduce_hidden_seconds - begin.allreduce_hidden_seconds;
  return d;
}

class Interconnect {
 public:
  Interconnect(const NetworkConfig& config, Seconds alpha, double beta,
               Index ranks);

  const NetworkConfig& config() const { return config_; }
  const Topology& topology() const { return *topology_; }
  const CollectiveAlgorithm& collective() const { return *collective_; }
  const LinkParams& link() const { return link_; }
  Index num_ranks() const { return ranks_; }

  /// One-link cost (the seed p2p closed form), endpoint-agnostic.
  Seconds uniform_p2p_seconds(Bytes bytes) const;

  /// Hop-aware point-to-point cost between two ranks.
  Seconds p2p_seconds(Index from, Index to, Bytes bytes) const;

  /// Per-rank allreduce costs from the configured algorithm.
  std::vector<Seconds> allreduce_costs(Bytes bytes) const;
  /// Slowest rank's allreduce cost (the synchronizing upper bound).
  Seconds allreduce_seconds(Bytes bytes) const;

  std::vector<Seconds> broadcast_costs(Index root, Bytes bytes) const;
  std::vector<Seconds> reduce_costs(Index root, Bytes bytes) const;

  /// One rank's neighbour-exchange cost: msgs messages and `bytes`
  /// payload to rank-space neighbours (halo pulls, FW gathers).
  Seconds halo_seconds(Index rank, double msgs, Bytes bytes) const;

  /// One full-diameter message: the replica sets live across the
  /// machine, so DMR/TMR state fetches traverse the worst-case path.
  Seconds replica_seconds(Bytes bytes) const;

  /// Contention multiplier when the whole machine communicates at once.
  double full_contention() const;

 private:
  NetworkConfig config_;
  LinkParams link_;
  Index ranks_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<CollectiveAlgorithm> collective_;
};

}  // namespace rsls::simrt::net
