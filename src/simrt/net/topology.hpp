#pragma once
// Topology: the static shape of the interconnect — how many links a
// message crosses between two ranks and how much the shared links
// contend when the whole machine communicates at once.
//
// Implementations are pure cost oracles: no state mutates after
// construction, so one Topology serves every rank and thread. The
// FlatNetwork's uniform() fast path lets the collective layer reproduce
// the seed closed form bit-for-bit (every pair one hop, no contention).

#include <memory>

#include "core/types.hpp"
#include "core/units.hpp"
#include "simrt/net/network_config.hpp"

namespace rsls::simrt::net {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual const char* name() const = 0;
  virtual Index num_ranks() const = 0;

  /// Links crossed between two ranks; 0 when from == to, ≥ 1 otherwise.
  virtual Index hops(Index from, Index to) const = 0;

  /// Maximum hops between any two ranks.
  virtual Index diameter() const = 0;

  /// Multiplier (≥ 1) on the serialization term when `concurrent`
  /// same-time messages share the bisection.
  virtual double contention(Index concurrent) const = 0;

  /// True when every distinct pair is one hop with no contention: the
  /// collective layer then uses the closed-form uniform cost, which is
  /// bit-identical to the pre-net-layer α–β model.
  virtual bool uniform() const { return false; }

  /// Failure-domain id of a rank: the group of ranks that share a
  /// single point of failure (leaf switch, torus neighborhood). Ranks
  /// with equal ids die together when the domain's shared hardware
  /// fails. The default is degenerate — every rank its own domain —
  /// which models independent single-rank failures (the seed protocol).
  virtual Index failure_domain(Index rank) const { return rank; }

  /// Mean hops from a rank to its rank-space neighbours (r−1, r+1) —
  /// the halo-exchange distance proxy (partitions assign adjacent row
  /// blocks to adjacent ranks).
  double neighbor_hops(Index rank) const;

  /// Mean hops from rank 0 to every other rank (reporting / shape
  /// checks; rank 0 is representative in all shipped topologies).
  double mean_hops() const;
};

/// One-hop full-bisection crossbar: the seed α–β network.
class FlatNetwork final : public Topology {
 public:
  explicit FlatNetwork(Index ranks);

  const char* name() const override { return "flat"; }
  Index num_ranks() const override { return ranks_; }
  Index hops(Index from, Index to) const override;
  Index diameter() const override { return 1; }
  double contention(Index concurrent) const override;
  bool uniform() const override { return true; }

 private:
  Index ranks_;
};

/// Three-level folded Clos. Ranks pack onto leaf switches of
/// `radix` ports; `radix` leaves form a pod; pods meet at the core.
/// Same leaf: 2 hops, same pod: 4, cross-pod: 6. Oversubscribed
/// up-links raise the contention multiplier toward the configured
/// ratio as the concurrent message count approaches the machine size.
class FatTree final : public Topology {
 public:
  FatTree(Index ranks, Index radix, double oversubscription);

  const char* name() const override { return "fat-tree"; }
  Index num_ranks() const override { return ranks_; }
  Index hops(Index from, Index to) const override;
  Index diameter() const override;
  double contention(Index concurrent) const override;
  /// All ranks under one leaf switch fail together when it dies.
  Index failure_domain(Index rank) const override;

 private:
  Index ranks_;
  Index radix_;
  double oversubscription_;
};

/// 3-D torus: ranks map to an x × y × z box in row-major order; the hop
/// count is the wraparound Manhattan distance. Bisection is the 2·y·z
/// wrap plane across the largest dimension, so contention grows once
/// the concurrent message count exceeds the plane's link budget.
class Torus3D final : public Topology {
 public:
  /// dims of 0 derive a near-cubic box covering `ranks`.
  Torus3D(Index ranks, Index x, Index y, Index z);

  const char* name() const override { return "torus3d"; }
  Index num_ranks() const override { return ranks_; }
  Index hops(Index from, Index to) const override;
  Index diameter() const override;
  double contention(Index concurrent) const override;
  /// An x-line of the torus (ranks sharing y and z, contiguous in the
  /// row-major rank order) shares power and cabling: one neighborhood.
  Index failure_domain(Index rank) const override;

  Index dim_x() const { return x_; }
  Index dim_y() const { return y_; }
  Index dim_z() const { return z_; }

 private:
  Index ranks_;
  Index x_;
  Index y_;
  Index z_;
};

/// Build the configured topology for a cluster of `ranks`.
std::unique_ptr<Topology> make_topology(const NetworkConfig& config,
                                        Index ranks);

}  // namespace rsls::simrt::net
