#include "simrt/net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::simrt::net {

std::optional<TopologyKind> topology_from_name(const std::string& name) {
  if (name == "flat") {
    return TopologyKind::kFlat;
  }
  if (name == "fat-tree" || name == "fattree") {
    return TopologyKind::kFatTree;
  }
  if (name == "torus3d" || name == "torus") {
    return TopologyKind::kTorus3D;
  }
  return std::nullopt;
}

std::optional<CollectiveKind> collective_from_name(const std::string& name) {
  if (name == "recursive-doubling" || name == "rd") {
    return CollectiveKind::kRecursiveDoubling;
  }
  if (name == "ring") {
    return CollectiveKind::kRing;
  }
  if (name == "binomial-tree" || name == "binomial") {
    return CollectiveKind::kBinomialTree;
  }
  return std::nullopt;
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat:
      return "flat";
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kTorus3D:
      return "torus3d";
  }
  return "?";
}

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kRecursiveDoubling:
      return "recursive-doubling";
    case CollectiveKind::kRing:
      return "ring";
    case CollectiveKind::kBinomialTree:
      return "binomial-tree";
  }
  return "?";
}

double Topology::neighbor_hops(Index rank) const {
  const Index p = num_ranks();
  RSLS_CHECK(rank >= 0 && rank < p);
  if (p < 2) {
    return 1.0;
  }
  double total = 0.0;
  Index neighbors = 0;
  if (rank > 0) {
    total += static_cast<double>(hops(rank, rank - 1));
    ++neighbors;
  }
  if (rank + 1 < p) {
    total += static_cast<double>(hops(rank, rank + 1));
    ++neighbors;
  }
  return total / static_cast<double>(neighbors);
}

double Topology::mean_hops() const {
  const Index p = num_ranks();
  if (p < 2) {
    return 0.0;
  }
  double total = 0.0;
  for (Index r = 1; r < p; ++r) {
    total += static_cast<double>(hops(0, r));
  }
  return total / static_cast<double>(p - 1);
}

// --- FlatNetwork -----------------------------------------------------------

FlatNetwork::FlatNetwork(Index ranks) : ranks_(ranks) {
  RSLS_CHECK(ranks >= 1);
}

Index FlatNetwork::hops(Index from, Index to) const {
  RSLS_CHECK(from >= 0 && from < ranks_);
  RSLS_CHECK(to >= 0 && to < ranks_);
  return from == to ? 0 : 1;
}

double FlatNetwork::contention(Index /*concurrent*/) const { return 1.0; }

// --- FatTree ---------------------------------------------------------------

FatTree::FatTree(Index ranks, Index radix, double oversubscription)
    : ranks_(ranks), radix_(radix), oversubscription_(oversubscription) {
  RSLS_CHECK(ranks >= 1);
  RSLS_CHECK_MSG(radix >= 2, "fat tree needs at least 2 ports per switch");
  RSLS_CHECK_MSG(oversubscription >= 1.0,
                 "oversubscription below 1 would add bisection from nowhere");
}

Index FatTree::hops(Index from, Index to) const {
  RSLS_CHECK(from >= 0 && from < ranks_);
  RSLS_CHECK(to >= 0 && to < ranks_);
  if (from == to) {
    return 0;
  }
  const Index leaf_from = from / radix_;
  const Index leaf_to = to / radix_;
  if (leaf_from == leaf_to) {
    return 2;  // rank → leaf switch → rank
  }
  if (leaf_from / radix_ == leaf_to / radix_) {
    return 4;  // up to the pod spine and back down
  }
  return 6;  // through the core layer
}

Index FatTree::diameter() const {
  const Index leaves = (ranks_ + radix_ - 1) / radix_;
  if (leaves <= 1) {
    return ranks_ > 1 ? 2 : 1;
  }
  const Index pods = (leaves + radix_ - 1) / radix_;
  return pods > 1 ? 6 : 4;
}

Index FatTree::failure_domain(Index rank) const {
  RSLS_CHECK(rank >= 0 && rank < ranks_);
  return rank / radix_;
}

double FatTree::contention(Index concurrent) const {
  // Each leaf's k down-links share k/o up-links, so a machine-wide
  // exchange serializes by the oversubscription ratio; lighter traffic
  // scales the multiplier down toward contention-free.
  const double load = static_cast<double>(concurrent) * oversubscription_ /
                      static_cast<double>(ranks_);
  return std::clamp(load, 1.0, oversubscription_);
}

// --- Torus3D ---------------------------------------------------------------

namespace {

Index ring_distance(Index a, Index b, Index dim) {
  const Index d = a > b ? a - b : b - a;
  return std::min(d, dim - d);
}

}  // namespace

Torus3D::Torus3D(Index ranks, Index x, Index y, Index z)
    : ranks_(ranks), x_(x), y_(y), z_(z) {
  RSLS_CHECK(ranks >= 1);
  if (x_ == 0 && y_ == 0 && z_ == 0) {
    // Near-cubic box: smallest x ≥ ∛p, then fill the remaining plane.
    x_ = static_cast<Index>(std::ceil(std::cbrt(static_cast<double>(ranks))));
    x_ = std::max<Index>(x_, 1);
    y_ = static_cast<Index>(std::ceil(
        std::sqrt(static_cast<double>(ranks) / static_cast<double>(x_))));
    y_ = std::max<Index>(y_, 1);
    z_ = (ranks + x_ * y_ - 1) / (x_ * y_);
  }
  RSLS_CHECK_MSG(x_ >= 1 && y_ >= 1 && z_ >= 1,
                 "torus dimensions must all be set (or all 0 to derive)");
  RSLS_CHECK_MSG(x_ * y_ * z_ >= ranks,
                 "torus dimensions do not cover the rank count");
}

Index Torus3D::hops(Index from, Index to) const {
  RSLS_CHECK(from >= 0 && from < ranks_);
  RSLS_CHECK(to >= 0 && to < ranks_);
  if (from == to) {
    return 0;
  }
  const Index dx = ring_distance(from % x_, to % x_, x_);
  const Index dy = ring_distance((from / x_) % y_, (to / x_) % y_, y_);
  const Index dz = ring_distance(from / (x_ * y_), to / (x_ * y_), z_);
  return std::max<Index>(dx + dy + dz, 1);
}

Index Torus3D::diameter() const {
  return std::max<Index>(x_ / 2 + y_ / 2 + z_ / 2, 1);
}

Index Torus3D::failure_domain(Index rank) const {
  RSLS_CHECK(rank >= 0 && rank < ranks_);
  return rank / x_;
}

double Torus3D::contention(Index concurrent) const {
  // Bisection across the largest axis: 2·(other-plane) wrap links.
  const Index a = std::max({x_, y_, z_});
  const Index plane = x_ * y_ * z_ / std::max<Index>(a, 1);
  const double links = 2.0 * static_cast<double>(std::max<Index>(plane, 1));
  return std::max(1.0, static_cast<double>(concurrent) / (2.0 * links));
}

// ---------------------------------------------------------------------------

std::unique_ptr<Topology> make_topology(const NetworkConfig& config,
                                        Index ranks) {
  switch (config.topology) {
    case TopologyKind::kFlat:
      return std::make_unique<FlatNetwork>(ranks);
    case TopologyKind::kFatTree:
      return std::make_unique<FatTree>(ranks, config.fat_tree_radix,
                                       config.fat_tree_oversubscription);
    case TopologyKind::kTorus3D:
      return std::make_unique<Torus3D>(ranks, config.torus_x, config.torus_y,
                                       config.torus_z);
  }
  throw Error("unknown topology kind");
}

}  // namespace rsls::simrt::net
