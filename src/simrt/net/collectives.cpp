#include "simrt/net/collectives.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsls::simrt::net {

Index collective_stages(Index ranks) {
  RSLS_CHECK(ranks >= 1);
  Index stages = 0;
  Index reach = 1;
  const Index target = std::max<Index>(ranks, 2);
  while (reach < target) {
    reach *= 2;
    ++stages;
  }
  return stages;
}

Seconds message_seconds(const Topology& topo, const LinkParams& link,
                        Index hops, Bytes bytes, Index concurrent) {
  RSLS_CHECK(hops >= 1);
  const Seconds latency =
      link.alpha + static_cast<double>(hops - 1) * link.per_hop;
  return latency + bytes * topo.contention(concurrent) / link.beta;
}

namespace {

/// Per-rank cost of one binomial tree rooted at `root` (reduce and
/// broadcast share the exchange set; only the direction differs, which
/// the per-stage cost aggregation does not observe). Stage s pairs
/// virtual rank vr (vr mod 2^(s+1) == 2^s) with vr − 2^s; both ends pay
/// the hop-aware message cost.
std::vector<Seconds> binomial_tree_costs(const Topology& topo,
                                         const LinkParams& link, Index root,
                                         Bytes bytes) {
  const Index p = topo.num_ranks();
  RSLS_CHECK(root >= 0 && root < p);
  std::vector<Seconds> costs(static_cast<std::size_t>(p), 0.0);
  const Index stages = collective_stages(p);
  for (Index s = 0; s < stages; ++s) {
    const Index step = Index{1} << s;
    const Index block = step * 2;
    const Index pairs = std::max<Index>((p + block - 1) / block, 1);
    for (Index vr = step; vr < p; vr += block) {
      const Index from = (vr + root) % p;
      const Index to = (vr - step + root) % p;
      const Seconds t =
          message_seconds(topo, link, topo.hops(from, to), bytes, pairs);
      costs[static_cast<std::size_t>(from)] += t;
      costs[static_cast<std::size_t>(to)] += t;
    }
  }
  return costs;
}

/// Store-and-forward chain cost around the ring: the rank at forward
/// ring-distance k from the chain's head finishes after k sequential
/// neighbour messages (the head after one).
std::vector<Seconds> ring_chain_costs(const Topology& topo,
                                      const LinkParams& link, Index root,
                                      Bytes bytes) {
  const Index p = topo.num_ranks();
  RSLS_CHECK(root >= 0 && root < p);
  std::vector<Seconds> costs(static_cast<std::size_t>(p), 0.0);
  if (p < 2) {
    return costs;
  }
  Seconds finish = 0.0;
  Index prev = root;
  for (Index k = 1; k < p; ++k) {
    const Index r = (root + k) % p;
    finish += message_seconds(topo, link, topo.hops(prev, r), bytes, 1);
    costs[static_cast<std::size_t>(r)] = finish;
    prev = r;
  }
  // The head is busy for its one send; the chain's tail time lands on
  // the final rank (broadcast) or is mirrored onto the root (reduce) by
  // the caller.
  costs[static_cast<std::size_t>(root)] =
      message_seconds(topo, link, topo.hops(root, (root + 1) % p), bytes, 1);
  return costs;
}

}  // namespace

// --- RecursiveDoubling -----------------------------------------------------

std::vector<Seconds> RecursiveDoubling::allreduce_costs(
    const Topology& topo, const LinkParams& link, Bytes bytes) const {
  const Index p = topo.num_ranks();
  const Index stages = collective_stages(p);
  std::vector<Seconds> costs(static_cast<std::size_t>(p), 0.0);
  if (topo.uniform()) {
    // Seed closed form: every rank pays stages·(α + bytes/β). Computed
    // as one multiplication so the default configuration reproduces the
    // pre-net-layer charge bit-for-bit.
    const Seconds uniform =
        static_cast<double>(stages) * (link.alpha + bytes / link.beta);
    std::fill(costs.begin(), costs.end(), uniform);
    return costs;
  }
  for (Index s = 0; s < stages; ++s) {
    const Index mask = Index{1} << s;
    for (Index r = 0; r < p; ++r) {
      const Index peer = r ^ mask;
      // Past the rank count the exchange degenerates to a protocol
      // round: the rank still burns the injection latency.
      const Seconds t =
          peer < p ? message_seconds(topo, link, topo.hops(r, peer), bytes, p)
                   : link.alpha;
      costs[static_cast<std::size_t>(r)] += t;
    }
  }
  return costs;
}

std::vector<Seconds> RecursiveDoubling::broadcast_costs(const Topology& topo,
                                                        const LinkParams& link,
                                                        Index root,
                                                        Bytes bytes) const {
  return binomial_tree_costs(topo, link, root, bytes);
}

std::vector<Seconds> RecursiveDoubling::reduce_costs(const Topology& topo,
                                                     const LinkParams& link,
                                                     Index root,
                                                     Bytes bytes) const {
  return binomial_tree_costs(topo, link, root, bytes);
}

double RecursiveDoubling::allreduce_messages(Index ranks) const {
  return static_cast<double>(ranks) *
         static_cast<double>(collective_stages(ranks));
}

Bytes RecursiveDoubling::allreduce_wire_bytes(Index ranks, Bytes bytes) const {
  return allreduce_messages(ranks) * bytes;
}

// --- Ring ------------------------------------------------------------------

std::vector<Seconds> Ring::allreduce_costs(const Topology& topo,
                                           const LinkParams& link,
                                           Bytes bytes) const {
  const Index p = topo.num_ranks();
  std::vector<Seconds> costs(static_cast<std::size_t>(p), 0.0);
  if (p < 2) {
    return costs;
  }
  // Reduce-scatter + allgather: 2(p−1) neighbour exchanges of bytes/p.
  const Bytes chunk = bytes / static_cast<double>(p);
  const double steps = 2.0 * static_cast<double>(p - 1);
  for (Index r = 0; r < p; ++r) {
    const Index next = (r + 1) % p;
    costs[static_cast<std::size_t>(r)] =
        steps * message_seconds(topo, link, topo.hops(r, next), chunk, p);
  }
  return costs;
}

std::vector<Seconds> Ring::broadcast_costs(const Topology& topo,
                                           const LinkParams& link, Index root,
                                           Bytes bytes) const {
  return ring_chain_costs(topo, link, root, bytes);
}

std::vector<Seconds> Ring::reduce_costs(const Topology& topo,
                                        const LinkParams& link, Index root,
                                        Bytes bytes) const {
  // The accumulation chain mirrors the broadcast; the root receives the
  // final partial, so it carries the chain's full finish time.
  std::vector<Seconds> costs = ring_chain_costs(topo, link, root, bytes);
  const Index p = topo.num_ranks();
  if (p >= 2) {
    const auto tail = static_cast<std::size_t>((root + p - 1) % p);
    std::swap(costs[static_cast<std::size_t>(root)], costs[tail]);
  }
  return costs;
}

double Ring::allreduce_messages(Index ranks) const {
  return 2.0 * static_cast<double>(ranks) * static_cast<double>(ranks - 1);
}

Bytes Ring::allreduce_wire_bytes(Index ranks, Bytes bytes) const {
  return 2.0 * static_cast<double>(ranks - 1) * bytes;
}

// --- BinomialTree ----------------------------------------------------------

std::vector<Seconds> BinomialTree::allreduce_costs(const Topology& topo,
                                                   const LinkParams& link,
                                                   Bytes bytes) const {
  // Reduce onto rank 0, then broadcast back down the same tree.
  std::vector<Seconds> costs = binomial_tree_costs(topo, link, 0, bytes);
  for (Seconds& cost : costs) {
    cost *= 2.0;
  }
  return costs;
}

std::vector<Seconds> BinomialTree::broadcast_costs(const Topology& topo,
                                                   const LinkParams& link,
                                                   Index root,
                                                   Bytes bytes) const {
  return binomial_tree_costs(topo, link, root, bytes);
}

std::vector<Seconds> BinomialTree::reduce_costs(const Topology& topo,
                                                const LinkParams& link,
                                                Index root, Bytes bytes) const {
  return binomial_tree_costs(topo, link, root, bytes);
}

double BinomialTree::allreduce_messages(Index ranks) const {
  return 2.0 * static_cast<double>(ranks - 1);
}

Bytes BinomialTree::allreduce_wire_bytes(Index ranks, Bytes bytes) const {
  return allreduce_messages(ranks) * bytes;
}

// ---------------------------------------------------------------------------

std::unique_ptr<CollectiveAlgorithm> make_collective(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kRecursiveDoubling:
      return std::make_unique<RecursiveDoubling>();
    case CollectiveKind::kRing:
      return std::make_unique<Ring>();
    case CollectiveKind::kBinomialTree:
      return std::make_unique<BinomialTree>();
  }
  throw Error("unknown collective kind");
}

}  // namespace rsls::simrt::net
