#include "simrt/net/interconnect.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsls::simrt::net {

Interconnect::Interconnect(const NetworkConfig& config, Seconds alpha,
                           double beta, Index ranks)
    : config_(config),
      link_{alpha, beta, config.per_hop_latency},
      ranks_(ranks),
      topology_(make_topology(config, ranks)),
      collective_(make_collective(config.collective)) {
  RSLS_CHECK(ranks >= 1);
  RSLS_CHECK(alpha >= 0.0);
  RSLS_CHECK(beta > 0.0);
}

Seconds Interconnect::uniform_p2p_seconds(Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  return link_.alpha + bytes / link_.beta;
}

Seconds Interconnect::p2p_seconds(Index from, Index to, Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  if (topology_->uniform()) {
    return uniform_p2p_seconds(bytes);
  }
  const Index h = std::max<Index>(topology_->hops(from, to), 1);
  return message_seconds(*topology_, link_, h, bytes, 1);
}

std::vector<Seconds> Interconnect::allreduce_costs(Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  return collective_->allreduce_costs(*topology_, link_, bytes);
}

Seconds Interconnect::allreduce_seconds(Bytes bytes) const {
  const auto costs = allreduce_costs(bytes);
  return *std::max_element(costs.begin(), costs.end());
}

std::vector<Seconds> Interconnect::broadcast_costs(Index root,
                                                   Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  return collective_->broadcast_costs(*topology_, link_, root, bytes);
}

std::vector<Seconds> Interconnect::reduce_costs(Index root, Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  return collective_->reduce_costs(*topology_, link_, root, bytes);
}

Seconds Interconnect::halo_seconds(Index rank, double msgs, Bytes bytes) const {
  RSLS_CHECK(msgs >= 0.0);
  RSLS_CHECK(bytes >= 0.0);
  if (topology_->uniform()) {
    // Seed per-rank halo charge, term-for-term.
    return msgs * link_.alpha + bytes / link_.beta;
  }
  const Seconds per_msg_latency =
      link_.alpha +
      (topology_->neighbor_hops(rank) - 1.0) * link_.per_hop;
  return msgs * per_msg_latency +
         bytes * topology_->contention(ranks_) / link_.beta;
}

Seconds Interconnect::replica_seconds(Bytes bytes) const {
  RSLS_CHECK(bytes >= 0.0);
  if (topology_->uniform()) {
    return uniform_p2p_seconds(bytes);
  }
  return message_seconds(*topology_, link_, topology_->diameter(), bytes, 1);
}

double Interconnect::full_contention() const {
  return topology_->contention(ranks_);
}

}  // namespace rsls::simrt::net
