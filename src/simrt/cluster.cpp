#include "simrt/cluster.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsls::simrt {

using power::Activity;
using power::PhaseTag;

VirtualCluster::VirtualCluster(const MachineConfig& config, Index num_ranks,
                               Index replica_factor)
    : config_(config),
      power_model_(config.power),
      num_ranks_(num_ranks),
      replica_factor_(replica_factor),
      governor_(power::make_performance_governor()),
      clock_(static_cast<std::size_t>(num_ranks), 0.0),
      freq_(static_cast<std::size_t>(num_ranks), config.power.freq.max_hz) {
  validate(config);
  RSLS_CHECK_MSG(num_ranks >= 1, "cluster needs at least one rank");
  RSLS_CHECK_MSG(num_ranks <= config.total_cores(),
                 "more ranks than cores (the paper binds 1:1)");
  RSLS_CHECK(replica_factor >= 1);
  net_ = std::make_unique<net::Interconnect>(
      config.net, config.net_latency, config.net_bandwidth, num_ranks_);
}

Index VirtualCluster::node_of(Index rank) const {
  RSLS_ASSERT(rank >= 0 && rank < num_ranks_);
  return rank / config_.cores_per_node();
}

Index VirtualCluster::nodes_used() const {
  return (num_ranks_ + config_.cores_per_node() - 1) /
         config_.cores_per_node();
}

void VirtualCluster::set_governor(std::unique_ptr<power::Governor> governor) {
  RSLS_CHECK(governor != nullptr);
  governor_ = std::move(governor);
}

void VirtualCluster::set_frequency(Index rank, Hertz hz) {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  const Hertz snapped = config_.power.freq.snap(hz);
  auto& current = freq_[static_cast<std::size_t>(rank)];
  if (snapped != current) {
    // The transition stalls the core briefly at the old operating point.
    charge_interval(rank, config_.dvfs_transition_latency, Activity::kWaiting,
                    PhaseTag::kComm);
    const Hertz from = current;
    current = snapped;
    for (ChargeSink* sink : sinks_) {
      sink->on_dvfs_transition(rank, now(rank), from, snapped);
    }
  }
}

void VirtualCluster::set_frequency_all(Hertz hz) {
  for (Index r = 0; r < num_ranks_; ++r) {
    set_frequency(r, hz);
  }
}

void VirtualCluster::set_frequency_all_except(Index rank, Hertz hz) {
  for (Index r = 0; r < num_ranks_; ++r) {
    if (r != rank) {
      set_frequency(r, hz);
    }
  }
}

Hertz VirtualCluster::frequency(Index rank) const {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  return freq_[static_cast<std::size_t>(rank)];
}

Seconds VirtualCluster::compute_seconds(Index rank, double flops) const {
  RSLS_CHECK(flops >= 0.0);
  const Hertz f = frequency(rank);
  return flops / (config_.flops_per_cycle * f);
}

void VirtualCluster::charge_compute(Index rank, double flops, PhaseTag tag) {
  charge_interval(rank, compute_seconds(rank, flops), Activity::kActive, tag);
}

void VirtualCluster::charge_duration(Index rank, Seconds duration,
                                     Activity activity, PhaseTag tag) {
  charge_interval(rank, duration, activity, tag);
}

void VirtualCluster::advance_all(Seconds duration, Activity activity,
                                 PhaseTag tag) {
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, duration, activity, tag);
  }
}

void VirtualCluster::sync(PhaseTag tag) {
  const Seconds target = elapsed();
  for (Index r = 0; r < num_ranks_; ++r) {
    const Seconds gap = target - clock_[static_cast<std::size_t>(r)];
    if (gap > 0.0) {
      charge_interval(r, gap, Activity::kWaiting, tag);
    }
  }
}

Seconds VirtualCluster::p2p_seconds(Bytes bytes) const {
  return net_->uniform_p2p_seconds(bytes);
}

Seconds VirtualCluster::transfer_seconds(Index from, Index to,
                                         Bytes bytes) const {
  RSLS_CHECK(from >= 0 && from < num_ranks_);
  RSLS_CHECK(to >= 0 && to < num_ranks_);
  return net_->p2p_seconds(from, to, bytes);
}

Seconds VirtualCluster::allreduce_seconds(Bytes bytes) const {
  return net_->allreduce_seconds(bytes);
}

void VirtualCluster::allreduce(Bytes bytes, PhaseTag tag) {
  // Collectives are synchronizing: first every rank reaches the barrier,
  // then the exchange runs; each rank pays its own algorithmic cost
  // (uniform under the default recursive doubling on a flat network).
  sync(tag);
  const std::vector<Seconds> costs = net_->allreduce_costs(bytes);
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, costs[static_cast<std::size_t>(r)], Activity::kWaiting,
                    tag);
  }
  comm_stats_.allreduces += 1.0;
  comm_stats_.messages += net_->collective().allreduce_messages(num_ranks_);
  comm_stats_.wire_bytes +=
      net_->collective().allreduce_wire_bytes(num_ranks_, bytes);
  comm_stats_.max_contention =
      std::max(comm_stats_.max_contention, net_->full_contention());
  for (Index r = 0; r < num_ranks_; ++r) {
    comm_stats_.allreduce_exposed_seconds +=
        costs[static_cast<std::size_t>(r)];
  }
}

VirtualCluster::PendingAllreduce VirtualCluster::allreduce_start(
    Bytes bytes, PhaseTag /*tag*/) {
  // Nothing is charged at post time: the exchange cannot complete before
  // the slowest rank has contributed, so the completion base is the
  // current makespan; everything a rank computes past this point runs
  // behind the in-flight collective.
  PendingAllreduce pending;
  pending.posted = elapsed();
  pending.costs = net_->allreduce_costs(bytes);
  pending.active = true;
  comm_stats_.allreduces += 1.0;
  comm_stats_.messages += net_->collective().allreduce_messages(num_ranks_);
  comm_stats_.wire_bytes +=
      net_->collective().allreduce_wire_bytes(num_ranks_, bytes);
  comm_stats_.max_contention =
      std::max(comm_stats_.max_contention, net_->full_contention());
  return pending;
}

void VirtualCluster::allreduce_finish(PendingAllreduce& pending,
                                      PhaseTag tag) {
  RSLS_CHECK_MSG(pending.active, "allreduce_finish without a matching start");
  RSLS_CHECK(static_cast<Index>(pending.costs.size()) == num_ranks_);
  for (Index r = 0; r < num_ranks_; ++r) {
    const Seconds cost = pending.costs[static_cast<std::size_t>(r)];
    const Seconds completion = pending.posted + cost;
    const Seconds now_r = now(r);
    const Seconds wait = completion - now_r;
    if (wait > 0.0) {
      charge_interval(r, wait, Activity::kWaiting, tag);
    }
    // Attribute only the algorithmic cost to the exposure split; any
    // extra wait beyond `cost` is the same posting skew a blocking
    // collective's barrier would have absorbed.
    const Seconds overlapped =
        std::min(std::max(now_r - pending.posted, 0.0), cost);
    comm_stats_.allreduce_exposed_seconds += cost - overlapped;
    comm_stats_.allreduce_hidden_seconds += overlapped;
  }
  pending.active = false;
}

void VirtualCluster::broadcast(Index root, Bytes bytes, PhaseTag tag) {
  RSLS_CHECK(root >= 0 && root < num_ranks_);
  sync(tag);
  const std::vector<Seconds> costs = net_->broadcast_costs(root, bytes);
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, costs[static_cast<std::size_t>(r)], Activity::kWaiting,
                    tag);
  }
  comm_stats_.broadcasts += 1.0;
  comm_stats_.messages += static_cast<double>(std::max<Index>(num_ranks_, 1) - 1);
  comm_stats_.wire_bytes +=
      bytes * static_cast<double>(std::max<Index>(num_ranks_, 1) - 1);
  comm_stats_.max_contention =
      std::max(comm_stats_.max_contention, net_->full_contention());
}

void VirtualCluster::reduce(Index root, Bytes bytes, PhaseTag tag) {
  RSLS_CHECK(root >= 0 && root < num_ranks_);
  sync(tag);
  const std::vector<Seconds> costs = net_->reduce_costs(root, bytes);
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, costs[static_cast<std::size_t>(r)], Activity::kWaiting,
                    tag);
  }
  comm_stats_.reductions += 1.0;
  comm_stats_.messages += static_cast<double>(std::max<Index>(num_ranks_, 1) - 1);
  comm_stats_.wire_bytes +=
      bytes * static_cast<double>(std::max<Index>(num_ranks_, 1) - 1);
  comm_stats_.max_contention =
      std::max(comm_stats_.max_contention, net_->full_contention());
}

void VirtualCluster::point_to_point(Index from, Index to, Bytes bytes,
                                    PhaseTag tag) {
  RSLS_CHECK(from >= 0 && from < num_ranks_);
  RSLS_CHECK(to >= 0 && to < num_ranks_);
  RSLS_CHECK(from != to);
  // Rendezvous: both ends proceed from the later of the two clocks.
  const Seconds start = std::max(now(from), now(to));
  for (const Index r : {from, to}) {
    const Seconds gap = start - now(r);
    if (gap > 0.0) {
      charge_interval(r, gap, Activity::kWaiting, tag);
    }
  }
  const Seconds duration = net_->p2p_seconds(from, to, bytes);
  charge_interval(from, duration, Activity::kWaiting, tag);
  charge_interval(to, duration, Activity::kWaiting, tag);
  comm_stats_.p2p_messages += 1.0;
  comm_stats_.messages += 1.0;
  comm_stats_.wire_bytes += bytes;
}

void VirtualCluster::halo_exchange(const std::vector<Bytes>& bytes_per_rank,
                                   const IndexVec& msgs_per_rank,
                                   PhaseTag tag) {
  RSLS_CHECK(bytes_per_rank.size() == static_cast<std::size_t>(num_ranks_));
  RSLS_CHECK(msgs_per_rank.size() == static_cast<std::size_t>(num_ranks_));
  for (Index r = 0; r < num_ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const Seconds duration = net_->halo_seconds(
        r, static_cast<double>(msgs_per_rank[i]), bytes_per_rank[i]);
    if (duration > 0.0) {
      charge_interval(r, duration, Activity::kWaiting, tag);
    }
    comm_stats_.halo_messages += static_cast<double>(msgs_per_rank[i]);
    comm_stats_.messages += static_cast<double>(msgs_per_rank[i]);
    comm_stats_.wire_bytes += bytes_per_rank[i];
  }
  comm_stats_.max_contention =
      std::max(comm_stats_.max_contention, net_->full_contention());
}

void VirtualCluster::neighbor_gather(Index rank, double msgs, Bytes bytes,
                                     PhaseTag tag) {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  RSLS_CHECK(msgs >= 0.0);
  // One-sided pulls: only the gathering rank blocks; the sources stream
  // their shares without leaving their own timelines (FW reconstruction).
  charge_interval(rank, net_->halo_seconds(rank, msgs, bytes),
                  Activity::kWaiting, tag);
  comm_stats_.gather_messages += msgs;
  comm_stats_.messages += msgs;
  comm_stats_.wire_bytes += bytes;
}

void VirtualCluster::replica_fetch(Index rank, Bytes bytes, Index copies,
                                   PhaseTag tag) {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  RSLS_CHECK(copies >= 1);
  const Seconds duration =
      static_cast<double>(copies) * net_->replica_seconds(bytes);
  charge_interval(rank, duration, Activity::kWaiting, tag);
  comm_stats_.replica_fetches += static_cast<double>(copies);
  comm_stats_.messages += static_cast<double>(copies);
  comm_stats_.wire_bytes += bytes * static_cast<double>(copies);
}

void VirtualCluster::set_spare_ranks(Index count) {
  RSLS_CHECK_MSG(count >= 0, "spare-rank count must be non-negative");
  spare_pool_ = count;
  initial_spares_ = count;
  spares_consumed_ = 0;
}

bool VirtualCluster::promote_spare(Index failed_rank, Bytes state_bytes,
                                   PhaseTag tag) {
  RSLS_CHECK(failed_rank >= 0 && failed_rank < num_ranks_);
  RSLS_CHECK(state_bytes >= 0.0);
  if (spare_pool_ <= 0) {
    return false;
  }
  --spare_pool_;
  ++spares_consumed_;
  // The spare lives wherever the machine had room, so its state restore
  // runs at topology-diameter distance; only the failed slot's timeline
  // blocks for it.
  charge_interval(failed_rank, net_->replica_seconds(state_bytes),
                  Activity::kWaiting, tag);
  comm_stats_.replica_fetches += 1.0;
  comm_stats_.messages += 1.0;
  comm_stats_.wire_bytes += state_bytes;
  // Every rank learns the substitution (new address of the block row).
  broadcast(failed_rank, 8.0, tag);
  return true;
}

void VirtualCluster::write_disk(Bytes total_bytes, PhaseTag tag) {
  RSLS_CHECK(total_bytes >= 0.0);
  sync(tag);
  // Shared filesystem: one bandwidth resource for the whole machine.
  const Seconds duration =
      config_.disk_latency + total_bytes / config_.disk_bandwidth;
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, duration, Activity::kDiskWait, tag);
  }
}

void VirtualCluster::read_disk(Bytes total_bytes, PhaseTag tag) {
  write_disk(total_bytes, tag);  // symmetric read/write cost model
}

void VirtualCluster::write_memory(Bytes total_bytes, PhaseTag tag) {
  RSLS_CHECK(total_bytes >= 0.0);
  sync(tag);
  // Node-local copies run in parallel: per-node share of the bytes.
  const Bytes per_node =
      total_bytes / static_cast<double>(std::max<Index>(nodes_used(), 1));
  const Seconds duration = config_.mem_latency + per_node / config_.mem_bandwidth;
  for (Index r = 0; r < num_ranks_; ++r) {
    charge_interval(r, duration, Activity::kMemCopy, tag);
  }
}

void VirtualCluster::read_memory(Bytes total_bytes, PhaseTag tag) {
  write_memory(total_bytes, tag);
}

Seconds VirtualCluster::now(Index rank) const {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  return clock_[static_cast<std::size_t>(rank)];
}

Seconds VirtualCluster::elapsed() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

Joules VirtualCluster::node_constant_energy() const {
  // Node constant power accrues on every used node for the whole run.
  const Watts node_constant =
      power_model_.node_constant_power(config_.sockets_per_node);
  return node_constant * elapsed() * static_cast<double>(nodes_used()) *
         static_cast<double>(replica_factor_);
}

Joules VirtualCluster::sleep_energy() const {
  // Cores on used nodes that host no rank sleep for the whole run, and
  // warm spares sleep alongside them whether or not they are promoted —
  // the standby cost of provisioning the pool.
  const Index unused_cores =
      nodes_used() * config_.cores_per_node() - num_ranks_;
  return config_.power.core_sleep *
         static_cast<double>(unused_cores + initial_spares_) * elapsed() *
         static_cast<double>(replica_factor_);
}

Joules VirtualCluster::total_energy() const {
  return energy_.core_energy_total() + node_constant_energy() + sleep_energy();
}

Watts VirtualCluster::average_power() const {
  const Seconds makespan = elapsed();
  return makespan > 0.0 ? total_energy() / makespan : 0.0;
}

void VirtualCluster::add_charge_sink(ChargeSink* sink) {
  RSLS_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void VirtualCluster::remove_charge_sink(ChargeSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void VirtualCluster::enable_event_log(std::size_t capacity) {
  if (event_log_ != nullptr) {
    remove_charge_sink(event_log_.get());
  }
  event_log_ = std::make_unique<EventLog>(capacity);
  add_charge_sink(event_log_.get());
}

const EventLog& VirtualCluster::event_log() const {
  RSLS_CHECK_MSG(event_log_ != nullptr, "event log not enabled");
  return *event_log_;
}

void VirtualCluster::enable_power_trace(Seconds bin_width) {
  trace_ = std::make_unique<PowerTrace>(config_.nodes, bin_width);
}

std::vector<PowerSample> VirtualCluster::node_power_profile(Index node) const {
  RSLS_CHECK_MSG(trace_ != nullptr, "power trace not enabled");
  // Sleeping unused cores on this node accrue uniformly, like uncore/DRAM.
  Index ranks_on_node = 0;
  for (Index r = 0; r < num_ranks_; ++r) {
    if (node_of(r) == node) {
      ++ranks_on_node;
    }
  }
  const Index sleeping = config_.cores_per_node() - ranks_on_node;
  const Watts constant =
      power_model_.node_constant_power(config_.sockets_per_node) +
      config_.power.core_sleep * static_cast<double>(sleeping);
  return trace_->render(node, elapsed(), constant);
}

void VirtualCluster::charge_interval(Index rank, Seconds duration,
                                     Activity activity, PhaseTag tag) {
  RSLS_CHECK(rank >= 0 && rank < num_ranks_);
  RSLS_CHECK(duration >= 0.0);
  if (duration <= 0.0) {
    return;
  }
  const auto i = static_cast<std::size_t>(rank);
  const Seconds start = clock_[i];
  const double replicas = static_cast<double>(replica_factor_);

  // The governor may retarget the core for this interval, but its decision
  // lags by one sampling window: that first slice runs at the old
  // frequency. This produces the realistic "ondemand" ramp in Fig. 7a.
  const Hertz old_freq = freq_[i];
  const Hertz new_freq = governor_->next_frequency(
      config_.power.freq, old_freq, power::observed_utilization(activity));

  Seconds at_old = duration;
  Seconds at_new = 0.0;
  if (new_freq != old_freq) {
    at_old = std::min(duration, config_.governor_sampling_period);
    at_new = duration - at_old;
    freq_[i] = new_freq;
  }

  const Joules j_old =
      power_model_.core_power(old_freq, activity) * at_old;
  const Joules j_new =
      power_model_.core_power(new_freq, activity) * at_new;
  energy_.charge_core(tag, (j_old + j_new) * replicas);
  const Index node = node_of(rank);
  if (trace_ != nullptr) {
    if (at_old > 0.0) {
      trace_->add(node, start, at_old, j_old);
    }
    if (at_new > 0.0) {
      trace_->add(node, start + at_old, at_new, j_new);
    }
  }
  if (!sinks_.empty()) {
    const ChargeRecord record{rank,     node, start, start + duration,
                              activity, tag,  (j_old + j_new) * replicas};
    for (ChargeSink* sink : sinks_) {
      sink->on_charge(record);
      if (new_freq != old_freq) {
        sink->on_dvfs_transition(rank, start + at_old, old_freq, new_freq);
      }
    }
  }
  clock_[i] = start + duration;
}

}  // namespace rsls::simrt
