#pragma once
// Opt-in phase event log: every charged interval as a (rank, time span,
// activity, phase) record. The virtual-time analogue of an MPI tracing
// tool (Score-P/Vampir class): where the power trace answers "what did
// the node draw when", the event log answers "what was each rank doing" —
// per-phase time breakdowns, rank utilization, and a timeline CSV for
// external visualization.
//
// Recording every interval costs memory proportional to the run
// (≈48 bytes per charge; a 1000-iteration CG on 192 ranks logs ~1M
// events), so it is disabled unless explicitly enabled on the cluster.

#include <iosfwd>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/power_model.hpp"
#include "power/rapl.hpp"

namespace rsls::simrt {

struct PhaseEvent {
  Index rank = 0;
  Seconds begin = 0.0;
  Seconds end = 0.0;
  power::Activity activity = power::Activity::kActive;
  power::PhaseTag tag = power::PhaseTag::kSolve;
};

class EventLog {
 public:
  void record(const PhaseEvent& event);

  const std::vector<PhaseEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Total time charged to a phase, summed across ranks.
  Seconds phase_time(power::PhaseTag tag) const;

  /// Time rank spent in compute (kActive) states.
  Seconds busy_time(Index rank) const;

  /// busy_time / makespan for a rank (0 when makespan is 0).
  double utilization(Index rank, Seconds makespan) const;

  /// Timeline CSV: rank,begin,end,activity,tag — one row per event.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<PhaseEvent> events_;
};

const char* to_string(power::Activity activity);

}  // namespace rsls::simrt
