#pragma once
// Opt-in phase event log: every charged interval as a (rank, time span,
// activity, phase) record. The virtual-time analogue of an MPI tracing
// tool (Score-P/Vampir class): where the power trace answers "what did
// the node draw when", the event log answers "what was each rank doing" —
// per-phase time breakdowns, rank utilization, and a timeline CSV for
// external visualization.
//
// The log is one ChargeSink among several on the cluster's charge path
// (src/obs's recorder is another); VirtualCluster::enable_event_log()
// registers a cluster-owned instance for convenience.
//
// Recording every interval costs memory proportional to the run
// (≈48 bytes per charge; a 1000-iteration CG on 192 ranks logs ~1M
// events), so it is disabled unless explicitly enabled on the cluster.
// A bounded log (capacity > 0) keeps the newest events in a ring,
// evicting oldest-first and counting what it dropped, so long
// weak-scaling runs can keep tracing on with fixed memory.

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/power_model.hpp"
#include "power/rapl.hpp"
#include "simrt/charge_sink.hpp"

namespace rsls::simrt {

struct PhaseEvent {
  Index rank = 0;
  Seconds begin = 0.0;
  Seconds end = 0.0;
  power::Activity activity = power::Activity::kActive;
  power::PhaseTag tag = power::PhaseTag::kSolve;
};

class EventLog : public ChargeSink {
 public:
  /// capacity 0 = unbounded; otherwise a ring keeping the newest events.
  EventLog() = default;
  explicit EventLog(std::size_t capacity) : capacity_(capacity) { trim(); }

  void record(const PhaseEvent& event);

  /// ChargeSink: record the charged interval.
  void on_charge(const ChargeRecord& record) override;

  /// Retained events, oldest first.
  std::vector<PhaseEvent> events() const;
  std::size_t size() const { return events_.size(); }

  /// Ring capacity (0 = unbounded).
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity);

  /// Events evicted oldest-first because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Total time charged to a phase, summed across ranks (retained events
  /// only).
  Seconds phase_time(power::PhaseTag tag) const;

  /// Time rank spent in compute (kActive) states.
  Seconds busy_time(Index rank) const;

  /// busy_time / makespan for a rank (0 when makespan is 0).
  double utilization(Index rank, Seconds makespan) const;

  /// Timeline CSV: rank,begin,end,activity,tag — one row per event.
  void write_csv(std::ostream& os) const;

 private:
  void trim();

  std::deque<PhaseEvent> events_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rsls::simrt
