#include "simrt/event_log.hpp"

#include <ostream>

#include "core/error.hpp"

namespace rsls::simrt {

void EventLog::record(const PhaseEvent& event) {
  RSLS_ASSERT(event.end >= event.begin);
  events_.push_back(event);
  if (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void EventLog::on_charge(const ChargeRecord& record) {
  this->record(PhaseEvent{record.rank, record.begin, record.end,
                          record.activity, record.tag});
}

std::vector<PhaseEvent> EventLog::events() const {
  return std::vector<PhaseEvent>(events_.begin(), events_.end());
}

void EventLog::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  trim();
}

void EventLog::trim() {
  if (capacity_ == 0) {
    return;
  }
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

Seconds EventLog::phase_time(power::PhaseTag tag) const {
  Seconds total = 0.0;
  for (const auto& event : events_) {
    if (event.tag == tag) {
      total += event.end - event.begin;
    }
  }
  return total;
}

Seconds EventLog::busy_time(Index rank) const {
  Seconds total = 0.0;
  for (const auto& event : events_) {
    if (event.rank == rank &&
        event.activity == power::Activity::kActive) {
      total += event.end - event.begin;
    }
  }
  return total;
}

double EventLog::utilization(Index rank, Seconds makespan) const {
  return makespan > 0.0 ? busy_time(rank) / makespan : 0.0;
}

void EventLog::write_csv(std::ostream& os) const {
  os << "rank,begin,end,activity,tag\n";
  for (const auto& event : events_) {
    os << event.rank << ',' << event.begin << ',' << event.end << ','
       << to_string(event.activity) << ',' << power::to_string(event.tag)
       << '\n';
  }
}

}  // namespace rsls::simrt
