#include "simrt/event_log.hpp"

#include <ostream>

#include "core/error.hpp"

namespace rsls::simrt {

const char* to_string(power::Activity activity) {
  switch (activity) {
    case power::Activity::kActive:
      return "active";
    case power::Activity::kWaiting:
      return "waiting";
    case power::Activity::kSleep:
      return "sleep";
    case power::Activity::kMemCopy:
      return "memcopy";
    case power::Activity::kDiskWait:
      return "diskwait";
  }
  return "?";
}

void EventLog::record(const PhaseEvent& event) {
  RSLS_ASSERT(event.end >= event.begin);
  events_.push_back(event);
}

Seconds EventLog::phase_time(power::PhaseTag tag) const {
  Seconds total = 0.0;
  for (const auto& event : events_) {
    if (event.tag == tag) {
      total += event.end - event.begin;
    }
  }
  return total;
}

Seconds EventLog::busy_time(Index rank) const {
  Seconds total = 0.0;
  for (const auto& event : events_) {
    if (event.rank == rank &&
        event.activity == power::Activity::kActive) {
      total += event.end - event.begin;
    }
  }
  return total;
}

double EventLog::utilization(Index rank, Seconds makespan) const {
  return makespan > 0.0 ? busy_time(rank) / makespan : 0.0;
}

void EventLog::write_csv(std::ostream& os) const {
  os << "rank,begin,end,activity,tag\n";
  for (const auto& event : events_) {
    os << event.rank << ',' << event.begin << ',' << event.end << ','
       << to_string(event.activity) << ',' << power::to_string(event.tag)
       << '\n';
  }
}

}  // namespace rsls::simrt
