#include "simrt/machine.hpp"

#include "core/error.hpp"

namespace rsls::simrt {

MachineConfig paper_cluster() {
  MachineConfig config;
  config.nodes = 8;
  config.sockets_per_node = 2;
  config.cores_per_socket = 12;
  return config;
}

MachineConfig paper_node() {
  MachineConfig config = paper_cluster();
  config.nodes = 1;
  return config;
}

void validate(const MachineConfig& config) {
  RSLS_CHECK(config.nodes >= 1);
  RSLS_CHECK(config.sockets_per_node >= 1);
  RSLS_CHECK(config.cores_per_socket >= 1);
  RSLS_CHECK(config.flops_per_cycle > 0.0);
  RSLS_CHECK(config.net_latency >= 0.0);
  RSLS_CHECK(config.net_bandwidth > 0.0);
  RSLS_CHECK(config.disk_latency >= 0.0);
  RSLS_CHECK(config.disk_bandwidth > 0.0);
  RSLS_CHECK(config.mem_latency >= 0.0);
  RSLS_CHECK(config.mem_bandwidth > 0.0);
  RSLS_CHECK(config.dvfs_transition_latency >= 0.0);
  RSLS_CHECK(config.governor_sampling_period >= 0.0);
  RSLS_CHECK(config.net.per_hop_latency >= 0.0);
  RSLS_CHECK_MSG(config.net.fat_tree_radix >= 2,
                 "fat tree needs at least 2 ports per switch");
  RSLS_CHECK_MSG(config.net.fat_tree_oversubscription >= 1.0,
                 "fat tree oversubscription must be >= 1");
  RSLS_CHECK_MSG(config.net.torus_x >= 0 && config.net.torus_y >= 0 &&
                     config.net.torus_z >= 0,
                 "torus dimensions must be non-negative");
  const bool any_torus_dim = config.net.torus_x > 0 ||
                             config.net.torus_y > 0 || config.net.torus_z > 0;
  if (any_torus_dim) {
    RSLS_CHECK_MSG(config.net.torus_x >= 1 && config.net.torus_y >= 1 &&
                       config.net.torus_z >= 1,
                   "torus dimensions must be all set or all 0 (derived)");
  }
}

}  // namespace rsls::simrt
