#include "simrt/machine.hpp"

#include "core/error.hpp"

namespace rsls::simrt {

MachineConfig paper_cluster() {
  MachineConfig config;
  config.nodes = 8;
  config.sockets_per_node = 2;
  config.cores_per_socket = 12;
  return config;
}

MachineConfig paper_node() {
  MachineConfig config = paper_cluster();
  config.nodes = 1;
  return config;
}

void validate(const MachineConfig& config) {
  RSLS_CHECK(config.nodes >= 1);
  RSLS_CHECK(config.sockets_per_node >= 1);
  RSLS_CHECK(config.cores_per_socket >= 1);
  RSLS_CHECK(config.flops_per_cycle > 0.0);
  RSLS_CHECK(config.net_latency >= 0.0);
  RSLS_CHECK(config.net_bandwidth > 0.0);
  RSLS_CHECK(config.disk_latency >= 0.0);
  RSLS_CHECK(config.disk_bandwidth > 0.0);
  RSLS_CHECK(config.mem_latency >= 0.0);
  RSLS_CHECK(config.mem_bandwidth > 0.0);
  RSLS_CHECK(config.dvfs_transition_latency >= 0.0);
  RSLS_CHECK(config.governor_sampling_period >= 0.0);
}

}  // namespace rsls::simrt
