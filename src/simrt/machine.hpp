#pragma once
// Machine description for the virtual cluster.
//
// Defaults model the paper's testbed: 8 dual-socket nodes, 12-core Xeon
// E5-2670v3 per socket (192 cores), DVFS 1.2–2.3 GHz, RAPL-calibrated
// power model, shared parallel filesystem for disk checkpoints, and
// node-local DRAM for memory checkpoints.

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/power_model.hpp"
#include "simrt/net/network_config.hpp"

namespace rsls::simrt {

struct MachineConfig {
  Index nodes = 8;
  Index sockets_per_node = 2;
  Index cores_per_socket = 12;

  /// Effective floating-point throughput per core cycle for the sparse
  /// kernels under study (memory-bound SpMV-dominated work retires far
  /// fewer than peak FMA width).
  double flops_per_cycle = 2.0;

  /// α–β network model. The latency is at the low end of modern HPC
  /// fabrics so that the miniaturized roster workloads keep the paper's
  /// compute-to-communication balance (per-process work shrank with the
  /// matrices; absolute 2 µs latencies would make every run
  /// communication-bound, which the paper's runs were not).
  Seconds net_latency = 0.1e-6;
  double net_bandwidth = 10e9;  // bytes/s per link

  /// Interconnect shape and collective algorithm (simrt/net). The
  /// default — FlatNetwork + recursive doubling — reproduces the plain
  /// α–β model above bit-for-bit; other topologies add hop latency and
  /// bisection contention on top of the same α/β.
  net::NetworkConfig net;

  /// Shared (parallel filesystem) disk for CR-D checkpoints: bandwidth is
  /// a single shared resource, so total write time grows with total bytes
  /// — this is what makes t_C of CR-D grow linearly under weak scaling
  /// (paper §6). The latency/bandwidth are scaled to the miniaturized
  /// roster workloads so that one disk checkpoint costs on the order of
  /// 10–15 CG iterations — the regime implied by the paper's Table 5
  /// (CR-D ≈ 2.4× time at a 100-iteration cadence with 10 faults).
  Seconds disk_latency = 30e-6;
  double disk_bandwidth = 2e9;  // bytes/s, shared across the machine

  /// Node-local memory channel for CR-M checkpoints: per-node bandwidth,
  /// so t_C stays constant under weak scaling (paper §6). The latency
  /// covers the synchronized buffer pin + copy setup on every node.
  Seconds mem_latency = 20e-6;
  double mem_bandwidth = 20e9;  // bytes/s per node

  /// DVFS transition cost (voltage ramp + PLL relock), scaled with the
  /// miniaturized workloads (reconstruction windows here are 0.1–3 ms
  /// where the paper's were seconds).
  Seconds dvfs_transition_latency = 2e-6;

  /// "ondemand" governor sampling period (frequency decisions lag phase
  /// changes by up to this much); scaled like the DVFS latency.
  Seconds governor_sampling_period = 100e-6;

  power::PowerModelConfig power;

  Index cores_per_node() const { return sockets_per_node * cores_per_socket; }
  Index total_cores() const { return nodes * cores_per_node(); }
};

/// The paper's 192-core cluster.
MachineConfig paper_cluster();

/// A single dual-socket 24-core node (used by Fig. 7a and §4.2).
MachineConfig paper_node();

/// Validate invariants; throws rsls::Error on nonsense configurations.
void validate(const MachineConfig& config);

}  // namespace rsls::simrt
