#pragma once
// Distributed numerical kernels: each executes the exact arithmetic on the
// global data AND charges every rank's compute/communication cost to the
// virtual cluster (DESIGN.md §6.2 "real numerics, modeled cost").

#include <span>

#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "power/rapl.hpp"
#include "simrt/cluster.hpp"
#include "sparse/spmv_kernel.hpp"

namespace rsls::dist {

/// y = A x. Charges the SpMV halo exchange (kComm) plus per-rank local
/// multiply flops (compute_tag). When `plan` is set the arithmetic runs
/// through that prepared kernel (it must be a plan over a.global());
/// null means the csr-scalar free function, the seed path. Flop charges
/// are format-invariant either way.
void dist_spmv(const DistMatrix& a, simrt::VirtualCluster& cluster,
               std::span<const Real> x, std::span<Real> y,
               power::PhaseTag compute_tag,
               const sparse::SpmvPlan* plan = nullptr);

/// Global dot product: per-rank partial dot (compute_tag) + an 8-byte
/// allreduce (kComm, synchronizing).
Real dist_dot(const Partition& part, simrt::VirtualCluster& cluster,
              std::span<const Real> x, std::span<const Real> y,
              power::PhaseTag compute_tag);

/// ‖x‖₂ via dist_dot.
Real dist_norm2(const Partition& part, simrt::VirtualCluster& cluster,
                std::span<const Real> x, power::PhaseTag compute_tag);

/// y += alpha x; local only.
void dist_axpy(const Partition& part, simrt::VirtualCluster& cluster,
               Real alpha, std::span<const Real> x, std::span<Real> y,
               power::PhaseTag compute_tag);

/// p = r + beta p; local only.
void dist_xpby(const Partition& part, simrt::VirtualCluster& cluster,
               std::span<const Real> x, Real beta, std::span<Real> y,
               power::PhaseTag compute_tag);

}  // namespace rsls::dist
