#include "dist/rank_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <latch>
#include <memory>
#include <mutex>

#include "core/env.hpp"
#include "core/thread_pool.hpp"

namespace rsls::dist {

namespace {

// True while this thread is executing a fan-out body: nested fan-outs
// (a parallelized preconditioner apply whose inner solve hits a
// parallelized SpMV) degrade to inline-serial instead of re-entering
// the pool.
thread_local bool t_in_fan_out = false;

}  // namespace

// Below this many touched elements a fan-out runs inline: waking pool
// workers costs tens of microseconds, which only a few tens of
// thousands of flops can amortize. Callers that do heavy per-rank work
// (inner solves) pass work = -1 to bypass the gate.
constexpr Index kDefaultMinWork = 16384;

struct RankExecutor::Impl {
  std::atomic<Index> jobs{-1};  // -1 = read RSLS_JOBS on next use
  std::atomic<Index> min_work{kDefaultMinWork};
  std::mutex pool_mutex;
  std::unique_ptr<ThreadPool> pool;  // created on first parallel call

  Index effective_jobs() {
    Index value = jobs.load(std::memory_order_relaxed);
    if (value < 0) {
      value = env::jobs();
      jobs.store(value, std::memory_order_relaxed);
    }
    return value;
  }

  ThreadPool& ensure_pool(Index width) {
    const std::lock_guard<std::mutex> lock(pool_mutex);
    if (!pool) {
      // The caller participates in every fan-out, so the pool carries
      // one fewer worker than the requested width. The width is fixed
      // at first creation; later set_jobs calls only change how many
      // groups a fan-out splits into.
      pool = std::make_unique<ThreadPool>(std::max<Index>(width - 1, 1));
    }
    return *pool;
  }

  /// Run fn(g) for g in [0, groups) — groups 1.. on the pool, group 0
  /// on the calling thread — and rethrow the first body exception.
  void run_groups(Index groups, const std::function<void(Index)>& fn) {
    ThreadPool& workers = ensure_pool(effective_jobs());
    std::latch done(groups - 1);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (Index g = 1; g < groups; ++g) {
      workers.submit([&fn, &done, &error_mutex, &first_error, g] {
        t_in_fan_out = true;
        try {
          fn(g);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        t_in_fan_out = false;
        done.count_down();
      });
    }
    t_in_fan_out = true;
    try {
      fn(0);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
    t_in_fan_out = false;
    done.wait();
    if (first_error) {
      std::rethrow_exception(first_error);
    }
  }
};

RankExecutor& RankExecutor::instance() {
  static RankExecutor executor;
  return executor;
}

RankExecutor::Impl& RankExecutor::impl() {
  static Impl the_impl;
  return the_impl;
}

Index RankExecutor::jobs() const {
  return const_cast<RankExecutor*>(this)->impl().effective_jobs();
}

void RankExecutor::set_jobs(Index jobs) {
  impl().jobs.store(jobs > 0 ? jobs : Index{-1}, std::memory_order_relaxed);
}

void RankExecutor::set_min_work(Index work) {
  impl().min_work.store(work >= 0 ? work : kDefaultMinWork,
                        std::memory_order_relaxed);
}

Index RankExecutor::min_work() const {
  return const_cast<RankExecutor*>(this)->impl().min_work.load(
      std::memory_order_relaxed);
}

void RankExecutor::for_each_rank(Index parts,
                                 const std::function<void(Index)>& body,
                                 Index work) {
  const Index width = impl().effective_jobs();
  if (width <= 1 || parts <= 1 || t_in_fan_out ||
      (work >= 0 && work < min_work())) {
    for (Index r = 0; r < parts; ++r) {
      body(r);
    }
    return;
  }
  const Index groups = std::min(width, parts);
  impl().run_groups(groups, [parts, groups, &body](Index g) {
    const Index begin = g * parts / groups;
    const Index end = (g + 1) * parts / groups;
    for (Index r = begin; r < end; ++r) {
      body(r);
    }
  });
}

void RankExecutor::for_each_chunk(
    Index total, const std::function<void(Index, Index)>& body, Index work) {
  if (total <= 0) {
    return;
  }
  const Index width = impl().effective_jobs();
  if (width <= 1 || total <= 1 || t_in_fan_out ||
      (work >= 0 && work < min_work())) {
    body(0, total);
    return;
  }
  const Index groups = std::min(width, total);
  impl().run_groups(groups, [total, groups, &body](Index g) {
    const Index begin = g * total / groups;
    const Index end = (g + 1) * total / groups;
    if (begin < end) {
      body(begin, end);
    }
  });
}

}  // namespace rsls::dist
