#pragma once
// Rank-parallel execution seam for virtual-cluster hot loops
// (DESIGN.md §17).
//
// The data plane is full of `for (r = 0; r < parts; ++r)` loops whose
// bodies touch disjoint state: a rank's row range of a global vector,
// a rank's diagonal block, a rank's slot in a pre-sized result array.
// RankExecutor runs those bodies on a process-wide work-stealing pool
// (width RSLS_JOBS) while the *charging* loops — the VirtualCluster is
// deliberately not thread-safe — stay on the calling thread, in rank
// order. The determinism argument:
//
//  * Parallelized bodies write only pre-sized disjoint output slots
//    (row ranges, per-rank result cells), so their values are
//    independent of scheduling.
//  * Cluster charges are issued by the calling thread either before
//    the fan-out (shape-only charges) or after it, in ascending rank
//    order, from per-rank buffers the bodies filled. The ChargeSink
//    therefore sees the exact serial record stream at any RSLS_JOBS.
//
// Calls nested inside an already-executing rank body run inline and
// serial (a thread_local guard), so recursive fan-out cannot deadlock
// the pool; so do calls with parts == 1 or jobs() == 1.

#include <functional>

#include "core/types.hpp"

namespace rsls::dist {

class RankExecutor {
 public:
  /// The process-wide executor. Workers are created lazily on the
  /// first parallel fan-out.
  static RankExecutor& instance();

  /// Effective fan-out width. Initialized from RSLS_JOBS on first use.
  Index jobs() const;

  /// Override the width (0 re-reads RSLS_JOBS on next use; 1 forces
  /// the serial path). Benches use this to measure serial vs parallel
  /// in one process; not intended to race with in-flight fan-outs.
  void set_jobs(Index jobs);

  /// Fan-out grain gate: calls whose `work` hint is non-negative and
  /// below this many elements run inline — pool wake latency dwarfs a
  /// few thousand flops of per-rank arithmetic. 0 forces every call
  /// parallel (determinism tests use this to exercise the fan-out on
  /// small matrices); negative restores the built-in default.
  void set_min_work(Index work);
  Index min_work() const;

  /// Run body(rank) for every rank in [0, parts). Bodies may run
  /// concurrently and in any order: they must write only disjoint
  /// slots and must not touch the VirtualCluster. `work` is the total
  /// element count the loop touches (vector rows, parity slots);
  /// leave it -1 — unknown, always fan out — only for bodies that are
  /// expensive regardless of size (inner solves, factorizations).
  void for_each_rank(Index parts, const std::function<void(Index)>& body,
                     Index work = -1);

  /// Run body(begin, end) over disjoint chunks covering [0, total).
  /// Chunk boundaries are schedule-independent (fixed block split), so
  /// even order-sensitive per-chunk work is deterministic. `work` as
  /// in for_each_rank: total touched elements, or -1 for always-fan-out.
  void for_each_chunk(Index total,
                      const std::function<void(Index, Index)>& body,
                      Index work = -1);

 private:
  RankExecutor() = default;
  struct Impl;
  Impl& impl();
};

}  // namespace rsls::dist
