#include "dist/partition.hpp"

#include "core/error.hpp"

namespace rsls::dist {

Partition::Partition(Index n, Index parts)
    : n_(n), parts_(parts), base_(0), extra_(0) {
  RSLS_CHECK(n >= 0);
  RSLS_CHECK_MSG(parts >= 1, "partition needs at least one part");
  RSLS_CHECK_MSG(parts <= n || n == 0,
                 "more parts than rows leaves empty processes");
  base_ = n / parts;
  extra_ = n % parts;
}

Index Partition::begin(Index p) const {
  RSLS_ASSERT(p >= 0 && p <= parts_);
  if (p <= extra_) {
    return p * (base_ + 1);
  }
  return extra_ * (base_ + 1) + (p - extra_) * base_;
}

Index Partition::end(Index p) const {
  RSLS_ASSERT(p >= 0 && p < parts_);
  return begin(p + 1);
}

Index Partition::owner(Index i) const {
  RSLS_ASSERT(i >= 0 && i < n_);
  const Index pivot = extra_ * (base_ + 1);
  if (i < pivot) {
    return i / (base_ + 1);
  }
  return extra_ + (i - pivot) / base_;
}

}  // namespace rsls::dist
