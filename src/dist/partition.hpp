#pragma once
// Contiguous block-row partition of n rows over p processes (the paper's
// Figure 2 layout). The remainder is spread over the first (n mod p)
// blocks so sizes differ by at most one.

#include "core/types.hpp"

namespace rsls::dist {

class Partition {
 public:
  Partition(Index n, Index parts);

  Index size() const { return n_; }
  Index parts() const { return parts_; }

  /// First row of block p.
  Index begin(Index p) const;
  /// One past the last row of block p.
  Index end(Index p) const;
  Index block_rows(Index p) const { return end(p) - begin(p); }

  /// Owner block of row i.
  Index owner(Index i) const;

 private:
  Index n_;
  Index parts_;
  Index base_;
  Index extra_;
};

}  // namespace rsls::dist
