#include "dist/dist_ops.hpp"

#include <cmath>

#include "core/error.hpp"
#include "la/flops.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::dist {

using power::PhaseTag;

void dist_spmv(const DistMatrix& a, simrt::VirtualCluster& cluster,
               std::span<const Real> x, std::span<Real> y,
               PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == a.parts());
  cluster.halo_exchange(a.halo_bytes(), a.halo_messages(), PhaseTag::kComm);
  for (Index r = 0; r < a.parts(); ++r) {
    cluster.charge_compute(r, la::spmv_flops(a.local_nnz(r)), compute_tag);
  }
  sparse::spmv(a.global(), x, y);
}

Real dist_dot(const Partition& part, simrt::VirtualCluster& cluster,
              std::span<const Real> x, std::span<const Real> y,
              PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  cluster.allreduce(sizeof(Real), PhaseTag::kComm);
  return sparse::dot(x, y);
}

Real dist_norm2(const Partition& part, simrt::VirtualCluster& cluster,
                std::span<const Real> x, PhaseTag compute_tag) {
  return std::sqrt(dist_dot(part, cluster, x, x, compute_tag));
}

void dist_axpy(const Partition& part, simrt::VirtualCluster& cluster,
               Real alpha, std::span<const Real> x, std::span<Real> y,
               PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  sparse::axpy(alpha, x, y);
}

void dist_xpby(const Partition& part, simrt::VirtualCluster& cluster,
               std::span<const Real> x, Real beta, std::span<Real> y,
               PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  sparse::xpby(x, beta, y);
}

}  // namespace rsls::dist
