#include "dist/dist_ops.hpp"

#include <cmath>

#include "core/error.hpp"
#include "dist/rank_executor.hpp"
#include "la/flops.hpp"
#include "sparse/vector_ops.hpp"

namespace rsls::dist {

using power::PhaseTag;

// The charge loops below stay on the calling thread, in rank order —
// the VirtualCluster is not thread-safe and the ChargeSink stream must
// match serial execution exactly. Only the arithmetic fans out: each
// rank body touches its own disjoint row range of the global vectors,
// so results are bitwise identical at any RSLS_JOBS.

void dist_spmv(const DistMatrix& a, simrt::VirtualCluster& cluster,
               std::span<const Real> x, std::span<Real> y,
               PhaseTag compute_tag, const sparse::SpmvPlan* plan) {
  RSLS_CHECK(cluster.num_ranks() == a.parts());
  cluster.halo_exchange(a.halo_bytes(), a.halo_messages(), PhaseTag::kComm);
  for (Index r = 0; r < a.parts(); ++r) {
    cluster.charge_compute(r, la::spmv_flops(a.local_nnz(r)), compute_tag);
  }
  const Partition& part = a.partition();
  RankExecutor::instance().for_each_rank(
      part.parts(),
      [&](Index r) {
        if (plan != nullptr) {
          plan->spmv_rows(part.begin(r), part.end(r), x, y);
        } else {
          sparse::spmv_rows(a.global(), part.begin(r), part.end(r), x, y);
        }
      },
      /*work=*/a.global().nnz());
}

Real dist_dot(const Partition& part, simrt::VirtualCluster& cluster,
              std::span<const Real> x, std::span<const Real> y,
              PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  cluster.allreduce(sizeof(Real), PhaseTag::kComm);
  // The flat left-to-right sum is order-dependent: it stays serial so
  // the reduction value is bitwise stable at any RSLS_JOBS.
  return sparse::dot(x, y);
}

Real dist_norm2(const Partition& part, simrt::VirtualCluster& cluster,
                std::span<const Real> x, PhaseTag compute_tag) {
  return std::sqrt(dist_dot(part, cluster, x, x, compute_tag));
}

void dist_axpy(const Partition& part, simrt::VirtualCluster& cluster,
               Real alpha, std::span<const Real> x, std::span<Real> y,
               PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  RankExecutor::instance().for_each_rank(
      part.parts(),
      [&](Index r) {
        const auto begin = static_cast<std::size_t>(part.begin(r));
        const auto rows = static_cast<std::size_t>(part.block_rows(r));
        sparse::axpy(alpha, x.subspan(begin, rows), y.subspan(begin, rows));
      },
      /*work=*/part.size());
}

void dist_xpby(const Partition& part, simrt::VirtualCluster& cluster,
               std::span<const Real> x, Real beta, std::span<Real> y,
               PhaseTag compute_tag) {
  RSLS_CHECK(cluster.num_ranks() == part.parts());
  for (Index r = 0; r < part.parts(); ++r) {
    cluster.charge_compute(r, 2.0 * static_cast<double>(part.block_rows(r)),
                           compute_tag);
  }
  RankExecutor::instance().for_each_rank(
      part.parts(),
      [&](Index r) {
        const auto begin = static_cast<std::size_t>(part.begin(r));
        const auto rows = static_cast<std::size_t>(part.block_rows(r));
        sparse::xpby(x.subspan(begin, rows), beta, y.subspan(begin, rows));
      },
      /*work=*/part.size());
}

}  // namespace rsls::dist
