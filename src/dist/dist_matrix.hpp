#pragma once
// Block-row distributed sparse matrix.
//
// The simulation keeps one copy of the global CSR (real numerics execute
// on it directly) and precomputes, per rank, the structure the virtual
// cluster needs to charge communication: local nnz, the number of distinct
// off-block columns each rank must receive (halo volume), and the number
// of neighbour ranks it exchanges with (message count).

#include <vector>

#include "core/types.hpp"
#include "core/units.hpp"
#include "dist/partition.hpp"
#include "sparse/csr.hpp"

namespace rsls::dist {

class DistMatrix {
 public:
  /// Partition `a` (square) into `parts` block rows.
  DistMatrix(sparse::Csr a, Index parts);

  const sparse::Csr& global() const { return global_; }
  const Partition& partition() const { return part_; }
  Index parts() const { return part_.parts(); }
  Index rows() const { return global_.rows; }

  /// nnz stored in rank r's row block.
  Index local_nnz(Index rank) const;

  /// Bytes of x entries rank r must receive for one SpMV.
  const std::vector<Bytes>& halo_bytes() const { return halo_bytes_; }

  /// Distinct neighbour ranks r receives from for one SpMV.
  const IndexVec& halo_messages() const { return halo_msgs_; }

  /// Diagonal block A_{p,p} with indices rebased to the block (the LI
  /// reconstruction operator, Eq. 19).
  sparse::Csr diagonal_block(Index rank) const;

  /// Row slice A_{p,:} with global column indices (the LSI reconstruction
  /// operator after the SPD transform, Eq. 21).
  sparse::Csr row_block(Index rank) const;

  /// Bytes of one process's share of a distributed vector (for
  /// checkpoint/recovery transfer sizing).
  Bytes block_bytes(Index rank) const;

  /// Bytes of a full distributed vector.
  Bytes vector_bytes() const;

 private:
  sparse::Csr global_;
  Partition part_;
  IndexVec local_nnz_;
  std::vector<Bytes> halo_bytes_;
  IndexVec halo_msgs_;
};

}  // namespace rsls::dist
