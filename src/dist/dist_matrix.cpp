#include "dist/dist_matrix.hpp"

#include <set>

#include "core/error.hpp"

namespace rsls::dist {

DistMatrix::DistMatrix(sparse::Csr a, Index parts)
    : global_(std::move(a)), part_(global_.rows, parts) {
  RSLS_CHECK_MSG(global_.rows == global_.cols,
                 "distributed matrices must be square");
  sparse::validate(global_);

  const auto p = static_cast<std::size_t>(parts);
  local_nnz_.assign(p, 0);
  halo_bytes_.assign(p, 0.0);
  halo_msgs_.assign(p, 0);

  for (Index rank = 0; rank < parts; ++rank) {
    const Index row_begin = part_.begin(rank);
    const Index row_end = part_.end(rank);
    std::set<Index> remote_cols;
    std::set<Index> neighbours;
    Index nnz = 0;
    for (Index r = row_begin; r < row_end; ++r) {
      const auto cols = global_.row_cols(r);
      nnz += static_cast<Index>(cols.size());
      for (const Index c : cols) {
        if (c < row_begin || c >= row_end) {
          remote_cols.insert(c);
          neighbours.insert(part_.owner(c));
        }
      }
    }
    const auto i = static_cast<std::size_t>(rank);
    local_nnz_[i] = nnz;
    halo_bytes_[i] =
        static_cast<double>(remote_cols.size()) * static_cast<double>(sizeof(Real));
    halo_msgs_[i] = static_cast<Index>(neighbours.size());
  }
}

Index DistMatrix::local_nnz(Index rank) const {
  RSLS_CHECK(rank >= 0 && rank < parts());
  return local_nnz_[static_cast<std::size_t>(rank)];
}

sparse::Csr DistMatrix::diagonal_block(Index rank) const {
  const Index b = part_.begin(rank);
  const Index e = part_.end(rank);
  return sparse::extract_block(global_, b, e, b, e);
}

sparse::Csr DistMatrix::row_block(Index rank) const {
  return sparse::extract_rows(global_, part_.begin(rank), part_.end(rank));
}

Bytes DistMatrix::block_bytes(Index rank) const {
  return static_cast<double>(part_.block_rows(rank)) *
         static_cast<double>(sizeof(Real));
}

Bytes DistMatrix::vector_bytes() const {
  return static_cast<double>(global_.rows) * static_cast<double>(sizeof(Real));
}

}  // namespace rsls::dist
