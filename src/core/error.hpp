#pragma once
// Error handling: a project exception type plus CHECK macros.
//
// RSLS_CHECK is for precondition/invariant violations that indicate a
// programming error or corrupt input; it throws rsls::Error with file/line
// context. RSLS_ASSERT compiles away in release-like builds and guards
// hot-path invariants.

#include <stdexcept>
#include <string>

namespace rsls {

/// Exception thrown on contract violations and unrecoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace rsls

#define RSLS_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::rsls::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
    }                                                                        \
  } while (false)

#define RSLS_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::rsls::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define RSLS_ASSERT(expr) ((void)0)
#else
#define RSLS_ASSERT(expr) RSLS_CHECK(expr)
#endif
