#pragma once
// Aligned plain-text table emitter for bench/table output.
//
// Benches print the paper's tables as monospace-aligned text (for humans)
// followed by CSV (for plotting). TablePrinter handles the former.

#include <ostream>
#include <string>
#include <vector>

namespace rsls {

class TablePrinter {
 public:
  /// Create a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles to the given precision.
  static std::string num(double value, int precision = 2);

  /// Render with a header underline and 2-space column gaps.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rsls
