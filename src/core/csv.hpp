#pragma once
// CSV emitter companion to TablePrinter; writes RFC-4180-ish CSV so bench
// output can be piped straight into plotting scripts.

#include <ostream>
#include <string>
#include <vector>

namespace rsls {

class CsvWriter {
 public:
  /// Write the header row immediately.
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Quote a field if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
  std::size_t width_;
};

}  // namespace rsls
