#include "core/options.hpp"

#include <cstdlib>

#include "core/env.hpp"
#include "core/error.hpp"

namespace rsls {

Options::Options(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) {
    tokens.emplace_back(argv[i]);
  }
  parse(tokens);
}

Options::Options(const std::vector<std::string>& tokens) { parse(tokens); }

void Options::parse(const std::vector<std::string>& tokens) {
  // Every bench/tool funnels through here, so this is the one place a
  // typo'd RSLS_* knob gets flagged instead of silently ignored.
  env::warn_unknown_once();
  for (const auto& token : tokens) {
    RSLS_CHECK_MSG(token.rfind("--", 0) == 0,
                   "option must start with --: " + token);
    const std::string body = token.substr(2);
    RSLS_CHECK_MSG(!body.empty(), "empty option: " + token);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      const std::string key = body.substr(0, eq);
      RSLS_CHECK_MSG(!key.empty(), "empty option key: " + token);
      values_[key] = body.substr(eq + 1);
    }
  }
  for (const auto& [key, value] : values_) {
    (void)value;
    used_[key] = false;
  }
}

bool Options::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it != values_.end()) {
    used_[key] = true;
    return true;
  }
  return false;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  used_[key] = true;
  return it->second;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  used_[key] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  RSLS_CHECK_MSG(end != nullptr && *end == '\0' && end != it->second.c_str(),
                 "not a number for --" + key + ": " + it->second);
  return value;
}

Index Options::get_index(const std::string& key, Index fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  used_[key] = true;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  RSLS_CHECK_MSG(end != nullptr && *end == '\0' && end != it->second.c_str(),
                 "not an integer for --" + key + ": " + it->second);
  return static_cast<Index>(value);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  used_[key] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw Error("not a boolean for --" + key + ": " + v);
}

std::vector<std::string> Options::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, was_used] : used_) {
    if (!was_used) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace rsls
