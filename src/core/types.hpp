#pragma once
// Fundamental scalar and index types used across RSLS.
//
// All matrix/vector dimensions use a signed 64-bit index so that
// partition arithmetic (differences of offsets) never needs casts,
// following the C++ Core Guidelines advice (ES.100-107) to prefer
// signed arithmetic for quantities that participate in subtraction.

#include <cstdint>
#include <vector>

namespace rsls {

/// Row/column/entry index for matrices and vectors.
using Index = std::int64_t;

/// Floating point scalar for all numerics.
using Real = double;

/// Dense value buffer.
using RealVec = std::vector<Real>;

/// Index buffer (CSR pointers, column indices, permutations).
using IndexVec = std::vector<Index>;

}  // namespace rsls
