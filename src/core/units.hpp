#pragma once
// Physical unit conventions and conversion helpers.
//
// Quantities are plain doubles in SI base units throughout the codebase:
//   time    — seconds
//   power   — watts
//   energy  — joules
//   freq    — hertz
//   rate    — events per second (failure rate λ)
//   data    — bytes
// These aliases document intent at API boundaries; the helpers convert
// the non-SI units the paper uses (hours for MTBF, GHz for DVFS states).

namespace rsls {

using Seconds = double;
using Watts = double;
using Joules = double;
using Hertz = double;
using PerSecond = double;
using Bytes = double;

inline constexpr Seconds kSecondsPerHour = 3600.0;
inline constexpr Hertz kGigahertz = 1e9;
inline constexpr Bytes kMebibyte = 1024.0 * 1024.0;
inline constexpr Bytes kGibibyte = 1024.0 * 1024.0 * 1024.0;

constexpr Seconds hours(double h) { return h * kSecondsPerHour; }
constexpr double to_hours(Seconds s) { return s / kSecondsPerHour; }
constexpr Hertz gigahertz(double ghz) { return ghz * kGigahertz; }
constexpr double to_gigahertz(Hertz hz) { return hz / kGigahertz; }

/// Failure rate λ (per second) from mean time between failures.
constexpr PerSecond rate_from_mtbf(Seconds mtbf) { return 1.0 / mtbf; }

/// MTBF from a failure rate.
constexpr Seconds mtbf_from_rate(PerSecond lambda) { return 1.0 / lambda; }

}  // namespace rsls
