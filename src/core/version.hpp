#pragma once
// Build provenance, stamped at CMake configure time.

namespace rsls::build {

/// `git describe --always --dirty --tags` of the source tree this binary
/// was configured from; "unknown" outside a git checkout. Stamped into
/// BENCH_*.json headers so bench_diff can show which build produced a
/// baseline (provenance only — comparisons key on schema_version).
const char* git_describe();

}  // namespace rsls::build
