#include "core/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"

namespace rsls {

namespace {

// Identity of the worker the current thread belongs to, so nested
// submissions can target their own deque. Null on non-pool threads.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

}  // namespace

Index ThreadPool::default_threads() { return env::jobs(); }

ThreadPool::ThreadPool(Index threads) {
  const auto count = static_cast<std::size_t>(std::max<Index>(threads, 1));
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  RSLS_CHECK_MSG(task != nullptr, "cannot submit an empty task");
  std::size_t target;
  {
    // Count the task BEFORE publishing it to a deque. A worker can pop
    // and finish the task the instant it becomes visible; if the
    // counters lagged the publish, a nested submitter's task could
    // drive pending_ to 0 while the submitting task is still running
    // (wait_idle() would return with cells in flight), and shutdown
    // could see queued_ == 0 with an uncounted task stranded in a
    // deque. Over-counting in the brief pre-publish window is harmless:
    // workers that wake early just spin back to the wait predicate.
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (t_worker.pool == this) {
      target = t_worker.index;  // nested: stay local
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    ++queued_;
    ++pending_;
    ++stats_.tasks_submitted;
    stats_.max_queue_depth = std::max<std::uint64_t>(
        stats_.max_queue_depth, static_cast<std::uint64_t>(queued_));
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task,
                         bool& stolen) {
  stolen = false;
  // Own deque first, newest task (LIFO keeps nested work hot) ...
  {
    auto& own = *queues_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from any other worker (FIFO keeps
  // the victim's locality intact).
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    auto& victim = *queues_[(self + step) % queues_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (first_error_ == nullptr) {
      first_error_ = std::current_exception();
    }
  }
  task = nullptr;  // release captures before signalling completion
  bool now_idle = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    --pending_;
    now_idle = pending_ == 0;
  }
  if (now_idle) {
    idle_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = WorkerIdentity{this, self};
  std::function<void()> task;
  bool stolen = false;
  while (true) {
    if (try_pop(self, task, stolen)) {
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        --queued_;
        ++stats_.tasks_executed;
        if (stolen) {
          ++stats_.tasks_stolen;
        }
      }
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    work_available_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) {
      return;
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

void ThreadPool::wait_idle() {
  RSLS_CHECK_MSG(t_worker.pool != this,
                 "wait_idle() called from inside a pool task");
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace rsls
