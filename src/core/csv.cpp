#include "core/csv.hpp"

#include "core/error.hpp"

namespace rsls {

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os), width_(header.size()) {
  RSLS_CHECK(width_ > 0);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  RSLS_CHECK_MSG(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os_ << ',';
    }
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') {
      quoted += "\"\"";
    } else {
      quoted += ch;
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace rsls
