#include "core/rng.hpp"

#include <cmath>

#include "core/error.hpp"

namespace rsls {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RSLS_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RSLS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 must be > 0.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  RSLS_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  RSLS_CHECK(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

double Rng::weibull(double shape, double scale) {
  RSLS_CHECK(shape > 0.0);
  RSLS_CHECK(scale > 0.0);
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace rsls
