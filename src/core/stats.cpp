#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls {

double mean(std::span<const double> values) {
  RSLS_CHECK(!values.empty());
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  RSLS_CHECK(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    RSLS_CHECK_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double sample_stddev(std::span<const double> values) {
  RSLS_CHECK(!values.empty());
  if (values.size() == 1) {
    return 0.0;
  }
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) {
    sum_sq += (v - m) * (v - m);
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  RSLS_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  RSLS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  RSLS_CHECK(x.size() == y.size());
  RSLS_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  RSLS_CHECK_MSG(sxx > 0.0, "line fit requires non-constant x");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    fit.r_squared = 1.0;  // perfectly flat data is perfectly fit
  }
  (void)n;
  return fit;
}

double evaluate(const LineFit& fit, double x) {
  return fit.slope * x + fit.intercept;
}

}  // namespace rsls
