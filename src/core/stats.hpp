#pragma once
// Small statistics helpers used for model fitting (§3 parameterization)
// and result aggregation (averages over the 14-matrix roster).

#include <span>
#include <vector>

#include "core/types.hpp"

namespace rsls {

/// Arithmetic mean; requires a non-empty range.
double mean(std::span<const double> values);

/// Geometric mean; requires non-empty range of positive values. Used for
/// normalized-overhead averaging across matrices.
double geometric_mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for size-1 ranges.
double sample_stddev(std::span<const double> values);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Least-squares line fit y ≈ slope·x + intercept; requires ≥ 2 points
/// and non-constant x. Used to fit t_C and t_const scaling trends (§6).
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Evaluate a fitted line.
double evaluate(const LineFit& fit, double x);

}  // namespace rsls
