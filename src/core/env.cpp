#include "core/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace rsls {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) {
    return std::nullopt;
  }
  return std::string(value);
}

bool quick_mode() {
  const auto value = env_string("RSLS_QUICK");
  if (!value.has_value()) {
    return false;
  }
  return *value != "0" && !value->empty();
}

long long quick_scaled(long long full, long long quick, long long min_value) {
  const long long chosen = quick_mode() ? quick : full;
  return std::max(chosen, min_value);
}

}  // namespace rsls
