#include "core/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/log.hpp"

extern char** environ;

namespace rsls {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) {
    return std::nullopt;
  }
  return std::string(value);
}

bool quick_mode() { return env::quick(); }

long long quick_scaled(long long full, long long quick, long long min_value) {
  const long long chosen = quick_mode() ? quick : full;
  return std::max(chosen, min_value);
}

namespace env {

const std::vector<VarSpec>& registry() {
  static const std::vector<VarSpec> vars = {
      {"RSLS_QUICK", "bool", "0",
       "Shrink bench workloads so the whole suite smoke-runs in seconds."},
      {"RSLS_JOBS", "int", "1",
       "Worker threads for parallel sweeps (harness::Runner). 0 = one per "
       "hardware thread. Results are bit-identical at any value."},
      {"RSLS_TRACE_DIR", "path", "unset",
       "Write one Chrome trace JSON per scheme run into this directory."},
      {"RSLS_RUN_REPORT", "path", "unset",
       "Append one RunReport JSONL line per scheme run to this file."},
      {"RSLS_OBS_POWER_BIN", "double", "0.05",
       "Power-trace bin width in virtual seconds for trace counter tracks."},
      {"RSLS_SERIES", "bool", "0",
       "Enable the solver flight recorder: a per-iteration time series "
       "(residual, energy by phase, power, comm traffic, fault markers) in "
       "the RunReport/trace plus per-rank energy attribution."},
      {"RSLS_SERIES_STRIDE", "int", "1",
       "Flight recorder sampling stride: record every n-th solver "
       "iteration (iteration 0 always sampled)."},
      {"RSLS_SERIES_MAX_POINTS", "int", "4096",
       "Flight recorder memory bound: past this many retained points the "
       "series drops every other point and doubles its stride."},
      {"RSLS_BENCH_JSON", "path", "per-bench default",
       "Output path for machine-readable bench results (micro_kernels, "
       "ablation_topology)."},
      {"RSLS_LOG_LEVEL", "string", "warn",
       "stderr log threshold: debug|info|warn|error (or 0-3)."},
      {"RSLS_NET_TOPOLOGY", "string", "flat",
       "Interconnect topology for harness-built clusters: "
       "flat|fat-tree|torus3d."},
      {"RSLS_NET_COLLECTIVE", "string", "recursive-doubling",
       "Collective algorithm: recursive-doubling|ring|binomial-tree."},
      {"RSLS_FAULT_DOMAINS", "int", "0",
       "Failure-domain size for harness-built fault injectors; 0 keeps "
       "independent single-rank faults. On fat-tree/torus topologies any "
       "value > 0 derives the domains from the topology instead."},
      {"RSLS_SPARE_RANKS", "int", "0",
       "Warm spare cores per harness-built cluster; > 0 switches the "
       "recovery policy to spare substitution (shrink when the pool runs "
       "dry)."},
      {"RSLS_RECOVERY_RETRIES", "int", "0",
       "Retries per recovery dispatch after a nested fault or timeout "
       "voids it; 0 keeps the recovery path infallible."},
      {"RSLS_WEIBULL_SHAPE", "double", "0",
       "Weibull shape k for fault inter-arrivals (< 1 infant mortality, "
       "> 1 wear-out); 0 keeps the default fault schedule."},
      {"RSLS_SERVE_PORT", "int", "8080",
       "TCP port the solve daemon (rsls_served) listens on; 0 picks an "
       "ephemeral port (printed on startup)."},
      {"RSLS_SERVE_QUEUE_DEPTH", "int", "64",
       "Admission bound of the daemon's job queue (queued, not yet "
       "running); past it POST /v1/jobs is rejected with a structured "
       "429-style error."},
      {"RSLS_SERVE_CACHE_ENTRIES", "int", "32",
       "Capacity of the daemon's solve-artifact cache (workload + "
       "fault-free baseline per content key; LRU beyond this)."},
      {"RSLS_SERVE_JOBS", "int", "RSLS_JOBS",
       "Solver worker threads of the daemon's job engine; 0 = one per "
       "hardware thread. Defaults to RSLS_JOBS."},
      {"RSLS_SERVE_SCHEME", "string", "CR-M",
       "Default recovery scheme for jobs that do not name one "
       "explicitly; an explicit job field always wins."},
      {"RSLS_SOLVER", "string", "cg",
       "Solver variant for harness-built solves: cg|pipelined-cg. "
       "Applied only when the config leaves the solver at its default; "
       "unknown names warn once and keep the default."},
      {"RSLS_PRECONDITIONER", "string", "identity",
       "Preconditioner for harness-built solves: "
       "identity|jacobi|block-jacobi|ic0. Applied only when the config "
       "leaves the preconditioner at its default; unknown names warn "
       "once and keep the default."},
      {"RSLS_SPMV_KERNEL", "string", "csr-scalar",
       "SpMV kernel for harness-built solves: "
       "csr-scalar|csr-simd|sell-c-sigma. Applied only when the config "
       "leaves the kernel at its default; unknown names warn once and "
       "keep the default."},
  };
  return vars;
}

bool get_bool(const std::string& name, bool fallback) {
  const auto value = env_string(name);
  if (!value.has_value()) {
    return fallback;
  }
  return *value != "0" && !value->empty();
}

long long get_int(const std::string& name, long long fallback) {
  const auto value = env_string(name);
  if (!value.has_value()) {
    return fallback;
  }
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(*value, &used);
    return used == value->size() ? parsed : fallback;
  } catch (const std::exception&) {
    return fallback;
  }
}

double get_double(const std::string& name, double fallback) {
  const auto value = env_string(name);
  if (!value.has_value()) {
    return fallback;
  }
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*value, &used);
    return used == value->size() ? parsed : fallback;
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string get_string(const std::string& name, const std::string& fallback) {
  return env_string(name).value_or(fallback);
}

bool quick() { return get_bool("RSLS_QUICK", false); }

Index jobs() {
  const long long requested = get_int("RSLS_JOBS", 1);
  if (requested > 0) {
    return static_cast<Index>(requested);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return static_cast<Index>(std::max(hardware, 1u));
}

std::optional<std::string> trace_dir() { return env_string("RSLS_TRACE_DIR"); }

std::optional<std::string> run_report_path() {
  return env_string("RSLS_RUN_REPORT");
}

std::optional<double> obs_power_bin() {
  const auto value = env_string("RSLS_OBS_POWER_BIN");
  if (!value.has_value()) {
    return std::nullopt;
  }
  return get_double("RSLS_OBS_POWER_BIN", 0.05);
}

bool series() { return get_bool("RSLS_SERIES", false); }

std::optional<Index> series_stride() {
  if (!env_string("RSLS_SERIES_STRIDE").has_value()) {
    return std::nullopt;
  }
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_SERIES_STRIDE", 1), 1));
}

std::optional<Index> series_max_points() {
  if (!env_string("RSLS_SERIES_MAX_POINTS").has_value()) {
    return std::nullopt;
  }
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_SERIES_MAX_POINTS", 4096), 4));
}

std::optional<std::string> bench_json_path() {
  return env_string("RSLS_BENCH_JSON");
}

std::optional<std::string> log_level_name() {
  return env_string("RSLS_LOG_LEVEL");
}

std::optional<std::string> net_topology() {
  return env_string("RSLS_NET_TOPOLOGY");
}

std::optional<std::string> net_collective() {
  return env_string("RSLS_NET_COLLECTIVE");
}

Index fault_domains() {
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_FAULT_DOMAINS", 0), 0));
}

Index spare_ranks() {
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_SPARE_RANKS", 0), 0));
}

Index recovery_retries() {
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_RECOVERY_RETRIES", 0), 0));
}

double weibull_shape() {
  return std::max(get_double("RSLS_WEIBULL_SHAPE", 0.0), 0.0);
}

int serve_port() {
  return static_cast<int>(std::clamp<long long>(
      get_int("RSLS_SERVE_PORT", 8080), 0, 65535));
}

Index serve_queue_depth() {
  return static_cast<Index>(
      std::max<long long>(get_int("RSLS_SERVE_QUEUE_DEPTH", 64), 1));
}

std::size_t serve_cache_entries() {
  return static_cast<std::size_t>(
      std::max<long long>(get_int("RSLS_SERVE_CACHE_ENTRIES", 32), 1));
}

Index serve_jobs() {
  const long long requested = get_int("RSLS_SERVE_JOBS", -1);
  if (requested > 0) {
    return static_cast<Index>(requested);
  }
  if (requested == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    return static_cast<Index>(std::max(hardware, 1u));
  }
  return jobs();  // unset (or negative): follow RSLS_JOBS
}

std::string serve_scheme() { return get_string("RSLS_SERVE_SCHEME", "CR-M"); }

std::optional<std::string> solver_name() { return env_string("RSLS_SOLVER"); }

std::optional<std::string> preconditioner_name() {
  return env_string("RSLS_PRECONDITIONER");
}

std::optional<std::string> spmv_kernel_name() {
  return env_string("RSLS_SPMV_KERNEL");
}

std::vector<std::string> unknown_rsls_vars() {
  std::vector<std::string> unknown;
  if (environ == nullptr) {
    return unknown;
  }
  constexpr std::string_view prefix = "RSLS_";
  for (char** entry = environ; *entry != nullptr; ++entry) {
    const std::string_view var(*entry);
    if (var.substr(0, prefix.size()) != prefix) {
      continue;
    }
    const std::size_t eq = var.find('=');
    const std::string name(var.substr(0, eq));
    const bool registered =
        std::any_of(registry().begin(), registry().end(),
                    [&](const VarSpec& spec) { return name == spec.name; });
    if (!registered) {
      unknown.push_back(name);
    }
  }
  std::sort(unknown.begin(), unknown.end());
  return unknown;
}

void warn_unknown_once() {
  static const bool warned = [] {
    for (const std::string& name : unknown_rsls_vars()) {
      RSLS_WARN << "unrecognized environment variable " << name
                << " (not in the RSLS_* registry; see README)";
    }
    return true;
  }();
  (void)warned;
}

}  // namespace env
}  // namespace rsls
