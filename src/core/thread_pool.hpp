#pragma once
// Work-stealing thread pool for coarse-grained task parallelism.
//
// Built for harness::Runner's experiment cells: tasks are whole CG
// solves (milliseconds to seconds each), so the queues favour
// correctness and simplicity over lock-free micro-optimization. Each
// worker owns a deque; it pops its own work LIFO (locality for nested
// submissions) and steals FIFO from the other workers when empty.
// External submissions are spread round-robin across the deques.
//
// Exception model: the first exception thrown by any task is captured
// and rethrown from wait_idle(); later exceptions are dropped. The pool
// stays usable after the rethrow.

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/types.hpp"

namespace rsls {

class ThreadPool {
 public:
  /// Spawn `threads` workers (values < 1 are clamped to 1). A 1-thread
  /// pool still runs tasks on its worker, never inline on the caller, so
  /// task code sees the same execution environment at every width.
  explicit ThreadPool(Index threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including from inside a
  /// running task (nested submission lands on the submitting worker's
  /// own deque).
  void submit(std::function<void()> task);

  /// Block until every submitted task — including tasks submitted by
  /// tasks — has finished, then rethrow the first captured task
  /// exception, if any.
  void wait_idle();

  Index thread_count() const { return static_cast<Index>(workers_.size()); }

  /// Worker threads a new pool should use: env::jobs() (RSLS_JOBS).
  static Index default_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task);
  void run_task(std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  Index queued_ = 0;   // tasks sitting in some deque
  Index pending_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::size_t next_queue_ = 0;  // round-robin cursor for external submits
  std::exception_ptr first_error_;
};

}  // namespace rsls
