#pragma once
// Work-stealing thread pool for coarse-grained task parallelism.
//
// Built for harness::Runner's experiment cells: tasks are whole CG
// solves (milliseconds to seconds each), so the queues favour
// correctness and simplicity over lock-free micro-optimization. Each
// worker owns a deque; it pops its own work LIFO (locality for nested
// submissions) and steals FIFO from the other workers when empty.
// External submissions are spread round-robin across the deques.
//
// Exception model: the first exception thrown by any task is captured
// and rethrown from wait_idle(); later exceptions are dropped. The pool
// stays usable after the rethrow.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/types.hpp"

namespace rsls {

class ThreadPool {
 public:
  /// Occupancy counters, sampled atomically under the pool's state lock.
  /// Every field is monotone over the pool's lifetime, so consumers can
  /// export them as counters (deltas between snapshots are well defined)
  /// and merging snapshots from several pools is a plain sum.
  struct Stats {
    std::uint64_t tasks_submitted = 0;
    std::uint64_t tasks_executed = 0;
    /// Tasks a worker took from another worker's deque (FIFO steals).
    std::uint64_t tasks_stolen = 0;
    /// High-water mark of tasks sitting in deques (scheduler pressure).
    std::uint64_t max_queue_depth = 0;
  };
  /// Spawn `threads` workers (values < 1 are clamped to 1). A 1-thread
  /// pool still runs tasks on its worker, never inline on the caller, so
  /// task code sees the same execution environment at every width.
  explicit ThreadPool(Index threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including from inside a
  /// running task (nested submission lands on the submitting worker's
  /// own deque).
  void submit(std::function<void()> task);

  /// Block until every submitted task — including tasks submitted by
  /// tasks — has finished, then rethrow the first captured task
  /// exception, if any.
  void wait_idle();

  Index thread_count() const { return static_cast<Index>(workers_.size()); }

  /// Point-in-time occupancy snapshot (see Stats). Safe from any thread.
  Stats stats() const;

  /// Worker threads a new pool should use: env::jobs() (RSLS_JOBS).
  static Index default_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task, bool& stolen);
  void run_task(std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  Index queued_ = 0;   // tasks sitting in some deque
  Index pending_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::size_t next_queue_ = 0;  // round-robin cursor for external submits
  std::exception_ptr first_error_;
  Stats stats_;  // guarded by state_mutex_
};

}  // namespace rsls
