#include "core/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

#include "core/env.hpp"

namespace rsls {

namespace {

// Threshold reads are lock-free; the mutex only serializes the stderr
// writes so concurrent log lines never interleave mid-record.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void apply_env_level() {
  const auto value = env::log_level_name();
  if (!value.has_value()) {
    return;
  }
  const auto parsed = log_level_from_string(*value);
  if (parsed.has_value()) {
    g_level.store(*parsed, std::memory_order_relaxed);
  } else {
    std::fprintf(stderr, "[rsls:WARN] unrecognized RSLS_LOG_LEVEL '%s'\n",
                 value->c_str());
  }
}

}  // namespace

std::optional<LogLevel> log_level_from_string(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  // An explicit call wins over the environment, even if it races the
  // first log_level() read.
  std::call_once(g_env_once, [] {});
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  std::call_once(g_env_once, apply_env_level);
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[rsls:%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace rsls
