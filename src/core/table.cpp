#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace rsls {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RSLS_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RSLS_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) {
        os << "  ";
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace rsls
