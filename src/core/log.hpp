#pragma once
// Minimal leveled logger writing to stderr.
//
// Logging is intentionally tiny: benches and examples print their results
// to stdout through the table/CSV emitters; the logger is for diagnostics
// only, so it must never interleave with result output.
//
// The initial threshold comes from the RSLS_LOG_LEVEL environment
// variable ("debug"/"info"/"warn"/"error" or 0–3) and defaults to warn;
// set_log_level overrides it.

#include <optional>
#include <sstream>
#include <string>

namespace rsls {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parse a level name ("debug", "info", "warn"/"warning", "error") or
/// digit; nullopt when unrecognized.
std::optional<LogLevel> log_level_from_string(const std::string& text);

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (appends '\n'); thread-safe, writes are serialized.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rsls

#define RSLS_LOG(level)                          \
  if (::rsls::log_level() > (level)) {           \
  } else                                         \
    ::rsls::detail::LogLine(level)

#define RSLS_DEBUG RSLS_LOG(::rsls::LogLevel::kDebug)
#define RSLS_INFO RSLS_LOG(::rsls::LogLevel::kInfo)
#define RSLS_WARN RSLS_LOG(::rsls::LogLevel::kWarn)
#define RSLS_ERROR RSLS_LOG(::rsls::LogLevel::kError)
