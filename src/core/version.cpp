#include "core/version.hpp"

// RSLS_GIT_DESCRIBE is a per-source compile definition set by
// src/core/CMakeLists.txt from `git describe` at configure time.
#ifndef RSLS_GIT_DESCRIBE
#define RSLS_GIT_DESCRIBE "unknown"
#endif

namespace rsls::build {

const char* git_describe() { return RSLS_GIT_DESCRIBE; }

}  // namespace rsls::build
