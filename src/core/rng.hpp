#pragma once
// Deterministic random number generation.
//
// We implement xoshiro256** seeded via SplitMix64 instead of relying on
// <random> distributions: the standard distributions are not guaranteed to
// produce identical streams across library implementations, and bit-exact
// reproducibility of every experiment is a design requirement (DESIGN.md §6).

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace rsls {

/// xoshiro256** PRNG with SplitMix64 seeding. Deterministic across
/// platforms for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic; caches the pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate); used for Poisson
  /// fault inter-arrival times.
  double exponential(double rate);

  /// Weibull with the given shape k and scale λ (inverse transform:
  /// λ·(−ln u)^{1/k}). Shape < 1 models infant mortality (bursty early
  /// failures), shape > 1 wear-out; shape = 1 reduces to
  /// exponential(1/λ). Used for non-memoryless fault inter-arrivals.
  double weibull(double shape, double scale);

  /// Derive an independent child stream (e.g. one per simulated rank).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rsls
