#pragma once
// Tiny command-line option parser used by benches and examples.
//
// Accepts "--key=value" and "--flag" tokens. Unknown keys are an error so
// typos in experiment sweeps fail loudly instead of silently running the
// default configuration.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rsls {

class Options {
 public:
  /// Parse argv; throws rsls::Error on malformed tokens.
  Options(int argc, const char* const* argv);

  /// Construct from pre-split tokens (for tests).
  explicit Options(const std::vector<std::string>& tokens);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw rsls::Error if present but
  /// unparsable.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  Index get_index(const std::string& key, Index fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were provided but never queried; benches call this last to
  /// reject typos.
  std::vector<std::string> unused_keys() const;

 private:
  void parse(const std::vector<std::string>& tokens);

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace rsls
