#pragma once
// Process environment queries shared by benches and tests.

#include <optional>
#include <string>

namespace rsls {

/// Value of an environment variable, if set.
std::optional<std::string> env_string(const std::string& name);

/// True when RSLS_QUICK is set to a truthy value; benches shrink their
/// workloads so the whole suite smoke-runs in seconds.
bool quick_mode();

/// Scale a problem dimension down in quick mode (floor at `min_value`).
long long quick_scaled(long long full, long long quick, long long min_value = 1);

}  // namespace rsls
