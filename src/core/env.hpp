#pragma once
// Typed registry of the RSLS_* process-environment knobs.
//
// Every environment variable the system reads is declared here once,
// with its type, default, and documentation (the README table mirrors
// env::registry()). Call sites use the typed accessors instead of raw
// getenv so a knob cannot be parsed two different ways in two places.

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rsls {

/// Value of an environment variable, if set.
std::optional<std::string> env_string(const std::string& name);

/// True when RSLS_QUICK is set to a truthy value; benches shrink their
/// workloads so the whole suite smoke-runs in seconds.
bool quick_mode();

/// Scale a problem dimension down in quick mode (floor at `min_value`).
long long quick_scaled(long long full, long long quick, long long min_value = 1);

namespace env {

/// One documented environment knob.
struct VarSpec {
  const char* name;
  const char* type;        // "bool" | "int" | "double" | "path" | "string"
  const char* fallback;    // human-readable default
  const char* description;
};

/// Every RSLS_* knob the system reads, in documentation order. Tests
/// assert that no other RSLS_ lookup exists outside this registry.
const std::vector<VarSpec>& registry();

// --- generic typed lookups (fall back on unset or unparsable) ----------
bool get_bool(const std::string& name, bool fallback);
long long get_int(const std::string& name, long long fallback);
double get_double(const std::string& name, double fallback);
std::string get_string(const std::string& name, const std::string& fallback);

// --- one accessor per registered knob ----------------------------------
/// RSLS_QUICK: shrink bench workloads to smoke-run scale.
bool quick();

/// RSLS_JOBS: worker threads for harness::Runner sweeps. Unset or 1 runs
/// the serial path; 0 means one worker per hardware thread. Results are
/// bit-identical at any value.
Index jobs();

/// RSLS_TRACE_DIR: directory for per-run Chrome trace JSON files.
std::optional<std::string> trace_dir();

/// RSLS_RUN_REPORT: JSONL path receiving one RunReport line per run.
std::optional<std::string> run_report_path();

/// RSLS_OBS_POWER_BIN: power-trace bin width (seconds) for counter
/// tracks.
std::optional<double> obs_power_bin();

/// RSLS_SERIES: switch the flight recorder on — per-iteration time
/// series + per-rank energy attribution in reports and traces.
bool series();

/// RSLS_SERIES_STRIDE: sample every n-th solver iteration (default 1);
/// unset leaves the configured stride alone.
std::optional<Index> series_stride();

/// RSLS_SERIES_MAX_POINTS: retained-point bound; past it the series
/// decimates (drops every other point, doubles the stride). Unset
/// leaves the configured bound alone.
std::optional<Index> series_max_points();

/// RSLS_BENCH_JSON: output path for micro_kernels' machine-readable
/// results.
std::optional<std::string> bench_json_path();

/// RSLS_LOG_LEVEL: stderr log threshold (debug|info|warn|error or 0-3).
std::optional<std::string> log_level_name();

/// RSLS_NET_TOPOLOGY: interconnect topology for every cluster the harness
/// builds (flat|fat-tree|torus3d).
std::optional<std::string> net_topology();

/// RSLS_NET_COLLECTIVE: collective algorithm
/// (recursive-doubling|ring|binomial-tree).
std::optional<std::string> net_collective();

/// RSLS_FAULT_DOMAINS: failure-domain size for harness-built injectors.
/// 0 disables the domain model (the seed's independent faults); on a
/// non-flat topology any value > 0 derives domains from the topology
/// instead (leaf-switch / torus-neighborhood groups).
Index fault_domains();

/// RSLS_SPARE_RANKS: warm spare cores provisioned per harness-built
/// cluster; > 0 switches the default recovery policy to spare
/// substitution.
Index spare_ranks();

/// RSLS_RECOVERY_RETRIES: retries per recovery dispatch after a nested
/// fault or timeout voids it; 0 keeps recovery infallible.
Index recovery_retries();

/// RSLS_WEIBULL_SHAPE: Weibull shape k for fault inter-arrivals (< 1
/// infant mortality, > 1 wear-out); 0 keeps the seed's evenly-spaced /
/// exponential model.
double weibull_shape();

/// RSLS_SERVE_PORT: TCP port for the solve daemon (0 = ephemeral).
int serve_port();

/// RSLS_SERVE_QUEUE_DEPTH: admission bound of the daemon's job queue.
Index serve_queue_depth();

/// RSLS_SERVE_CACHE_ENTRIES: solve-artifact cache capacity (LRU).
std::size_t serve_cache_entries();

/// RSLS_SERVE_JOBS: solver worker threads of the daemon's job engine
/// (0 = hardware width; unset follows RSLS_JOBS).
Index serve_jobs();

/// RSLS_SERVE_SCHEME: default recovery scheme for jobs that omit one.
std::string serve_scheme();

/// RSLS_SOLVER: solver variant for harness-built solves
/// (cg|pipelined-cg); applied only when the config leaves the solver at
/// its default.
std::optional<std::string> solver_name();

/// RSLS_PRECONDITIONER: preconditioner for harness-built solves
/// (identity|jacobi|block-jacobi|ic0); applied only when the config
/// leaves the preconditioner at its default.
std::optional<std::string> preconditioner_name();

/// RSLS_SPMV_KERNEL: SpMV kernel for harness-built solves
/// (csr-scalar|csr-simd|sell-c-sigma); applied only when the config
/// leaves the kernel at its default.
std::optional<std::string> spmv_kernel_name();

/// RSLS_-prefixed variables set in the process environment that no
/// registry entry declares — typo'd knobs that would otherwise be
/// silently ignored.
std::vector<std::string> unknown_rsls_vars();

/// Log one RSLS_WARN per unknown RSLS_* variable, once per process.
void warn_unknown_once();

}  // namespace env
}  // namespace rsls
