#include "power/governor.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsls::power {

double observed_utilization(Activity activity) {
  switch (activity) {
    case Activity::kActive:
      return 1.0;
    case Activity::kWaiting:
      // Busy-poll: the core retires pause/spin instructions continuously,
      // so /proc-style accounting reports it busy.
      return 1.0;
    case Activity::kSleep:
      return 0.0;
    case Activity::kMemCopy:
      return 1.0;
    case Activity::kDiskWait:
      // Blocked in the kernel on I/O: idle from the scheduler's view.
      return 0.05;
  }
  return 0.0;
}

namespace {

class PerformanceGovernor final : public Governor {
 public:
  Hertz next_frequency(const FrequencyTable& table, Hertz /*current*/,
                       double /*utilization*/) const override {
    return table.max_hz;
  }
  std::string name() const override { return "performance"; }
};

class PowersaveGovernor final : public Governor {
 public:
  Hertz next_frequency(const FrequencyTable& table, Hertz /*current*/,
                       double /*utilization*/) const override {
    return table.min_hz;
  }
  std::string name() const override { return "powersave"; }
};

class OndemandGovernor final : public Governor {
 public:
  explicit OndemandGovernor(OndemandConfig config) : config_(config) {
    RSLS_CHECK(config.up_threshold > 0.0 && config.up_threshold <= 1.0);
  }

  Hertz next_frequency(const FrequencyTable& table, Hertz /*current*/,
                       double utilization) const override {
    RSLS_CHECK(utilization >= 0.0 && utilization <= 1.0);
    if (utilization >= config_.up_threshold) {
      return table.max_hz;
    }
    // Proportional scaling, as the kernel's ondemand does below the
    // threshold: f = max_f * util / up_threshold, snapped to the grid.
    const Hertz target = table.max_hz * (utilization / config_.up_threshold);
    return table.snap(std::max(target, table.min_hz));
  }
  std::string name() const override { return "ondemand"; }

 private:
  OndemandConfig config_;
};

class UserspaceGovernor final : public Governor {
 public:
  Hertz next_frequency(const FrequencyTable& table, Hertz current,
                       double /*utilization*/) const override {
    return table.snap(current);
  }
  std::string name() const override { return "userspace"; }
};

}  // namespace

std::unique_ptr<Governor> make_performance_governor() {
  return std::make_unique<PerformanceGovernor>();
}

std::unique_ptr<Governor> make_powersave_governor() {
  return std::make_unique<PowersaveGovernor>();
}

std::unique_ptr<Governor> make_ondemand_governor(OndemandConfig config) {
  return std::make_unique<OndemandGovernor>(config);
}

std::unique_ptr<Governor> make_userspace_governor() {
  return std::make_unique<UserspaceGovernor>();
}

}  // namespace rsls::power
