#pragma once
// CPUfreq governor policies over the simulated cores.
//
// The paper controls DVFS through the CPUfreq interface: the baseline uses
// the kernel "ondemand" governor; the proposed LI-DVFS/LSI-DVFS run
// "userspace" and set frequencies explicitly around reconstruction phases
// (§4.2, §5.3). Governors here are pure policies: given the utilization a
// core exhibited over the last sampling window, pick the next frequency.
// The virtual cluster consults the governor at phase boundaries.
//
// The key real-world behaviour reproduced: an MPI rank blocked in a
// busy-poll wait presents ~100 % utilization, so "ondemand" does NOT
// down-clock it — which is exactly why explicit userspace scheduling wins
// in Fig. 7(a).

#include <memory>
#include <string>

#include "core/types.hpp"
#include "core/units.hpp"
#include "power/power_model.hpp"

namespace rsls::power {

/// Utilization as "ondemand" sees it: fraction of the window the core ran
/// non-halted. Busy-polling counts as busy.
double observed_utilization(Activity activity);

class Governor {
 public:
  virtual ~Governor() = default;

  /// Next frequency for a core, given the table, its current frequency,
  /// and the utilization observed over the last sampling window.
  virtual Hertz next_frequency(const FrequencyTable& table, Hertz current,
                               double utilization) const = 0;

  virtual std::string name() const = 0;
};

/// Always max frequency (the cluster default for HPC runs).
std::unique_ptr<Governor> make_performance_governor();

/// Always min frequency.
std::unique_ptr<Governor> make_powersave_governor();

/// Kernel-style ondemand: jump to max above the up-threshold, otherwise
/// scale proportionally to utilization (never below min).
struct OndemandConfig {
  double up_threshold = 0.95;
};
std::unique_ptr<Governor> make_ondemand_governor(OndemandConfig config = {});

/// Userspace: hold whatever was explicitly set (next == current).
std::unique_ptr<Governor> make_userspace_governor();

}  // namespace rsls::power
