#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsls::power {

const char* to_string(Activity activity) {
  switch (activity) {
    case Activity::kActive:
      return "active";
    case Activity::kWaiting:
      return "waiting";
    case Activity::kSleep:
      return "sleep";
    case Activity::kMemCopy:
      return "memcopy";
    case Activity::kDiskWait:
      return "diskwait";
  }
  return "?";
}

Hertz FrequencyTable::snap(Hertz requested) const {
  const Hertz clamped = std::clamp(requested, min_hz, max_hz);
  const double steps = std::round((clamped - min_hz) / step_hz);
  return std::min(max_hz, min_hz + steps * step_hz);
}

Index FrequencyTable::state_count() const {
  return static_cast<Index>(std::round((max_hz - min_hz) / step_hz)) + 1;
}

PowerModel::PowerModel(const PowerModelConfig& config) : config_(config) {
  RSLS_CHECK(config.freq.min_hz > 0.0);
  RSLS_CHECK(config.freq.max_hz >= config.freq.min_hz);
  RSLS_CHECK(config.freq.step_hz > 0.0);
  RSLS_CHECK(config.core_static >= 0.0);
  RSLS_CHECK(config.core_dynamic_max > 0.0);
  RSLS_CHECK(config.volt_at_min > 0.0 &&
             config.volt_at_max >= config.volt_at_min);
}

double PowerModel::voltage(Hertz f) const {
  const auto& table = config_.freq;
  if (table.max_hz == table.min_hz) {
    return config_.volt_at_max;
  }
  const double t =
      std::clamp((f - table.min_hz) / (table.max_hz - table.min_hz), 0.0, 1.0);
  return config_.volt_at_min + t * (config_.volt_at_max - config_.volt_at_min);
}

double PowerModel::dynamic_scale(Hertz f) const {
  const Hertz f_max = config_.freq.max_hz;
  const double v = voltage(f);
  const double v_max = config_.volt_at_max;
  return (f * v * v) / (f_max * v_max * v_max);
}

Watts PowerModel::core_power(Hertz f, Activity activity) const {
  const Watts dynamic = config_.core_dynamic_max * dynamic_scale(f);
  switch (activity) {
    case Activity::kActive:
      return config_.core_static + dynamic;
    case Activity::kWaiting:
      return config_.core_static + config_.wait_utilization * dynamic;
    case Activity::kSleep:
      return config_.core_sleep;
    case Activity::kMemCopy:
      return config_.core_static + config_.memcopy_utilization * dynamic;
    case Activity::kDiskWait:
      return config_.core_static + config_.diskwait_utilization * dynamic;
  }
  return config_.core_static;
}

Watts PowerModel::node_constant_power(Index sockets) const {
  return static_cast<double>(sockets) *
         (config_.socket_uncore + config_.socket_dram);
}

}  // namespace rsls::power
