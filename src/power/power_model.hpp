#pragma once
// Processor power model.
//
// Substitutes for the RAPL measurements of the paper's testbed (dual
// 12-core Xeon E5-2670v3 per node, DVFS 1.2–2.3 GHz in 0.1 GHz steps).
// Per-core power is  P(f, activity) = P_static + u(activity) · P_dyn(f)
// with P_dyn(f) ∝ f · V(f)² and a linear voltage/frequency curve — the
// standard first-order CMOS model. The activity utilization factors are:
//   Active   u = 1    (computing)
//   Waiting  u = 0.6  (MPI busy-poll at a barrier/recv — this is why the
//                      "ondemand" governor sees ~100 % utilization and
//                      does not down-clock waiting ranks, Fig. 7a)
//   Sleep    u = 0, and P_static is replaced by a deep C-state floor.
// Defaults are calibrated so the §4.2 measurements emerge: a 24-core node
// with 23 ranks waiting draws ≈0.75× of its all-active power at f_max and
// ≈0.45× when the waiting cores are pinned to f_min.

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::power {

enum class Activity {
  kActive,   // executing instructions at full throughput
  kWaiting,  // busy-polling in the MPI layer
  kSleep,    // deep C-state (halted)
  kMemCopy,  // memory-bandwidth-bound copy (checkpoint to memory)
  kDiskWait  // blocked on disk I/O (checkpoint to disk)
};

/// Stable lowercase name ("active", "waiting", …) used by the event-log
/// CSV and the observability exporters; the PhaseTag counterpart lives in
/// power/rapl.hpp.
const char* to_string(Activity activity);

struct FrequencyTable {
  Hertz min_hz = gigahertz(1.2);
  Hertz max_hz = gigahertz(2.3);
  Hertz step_hz = gigahertz(0.1);

  /// Clamp and snap a requested frequency to the table grid.
  Hertz snap(Hertz requested) const;
  /// Number of P-states.
  Index state_count() const;
};

struct PowerModelConfig {
  FrequencyTable freq;
  /// Per-core leakage at any operating frequency.
  Watts core_static = 1.0;
  /// Per-core dynamic power when Active at max frequency.
  Watts core_dynamic_max = 7.0;
  /// Deep C-state per-core floor (replaces static+dynamic).
  Watts core_sleep = 0.3;
  /// Voltage endpoints of the linear V(f) curve.
  double volt_at_min = 0.8;
  double volt_at_max = 1.1;
  /// Utilization factor while busy-polling.
  double wait_utilization = 0.6;
  /// Utilization factor during memory-bound copies.
  double memcopy_utilization = 0.7;
  /// Utilization factor while blocked on disk.
  double diskwait_utilization = 0.2;
  /// Per-socket uncore (LLC, ring, memory controller).
  Watts socket_uncore = 15.0;
  /// Per-socket DRAM power (reported by the RAPL DRAM domain).
  Watts socket_dram = 10.0;
};

class PowerModel {
 public:
  explicit PowerModel(const PowerModelConfig& config);

  const PowerModelConfig& config() const { return config_; }

  /// Supply voltage at frequency f (linear interpolation on the table).
  double voltage(Hertz f) const;

  /// Dynamic power scale factor f·V(f)² normalized to 1 at f_max.
  double dynamic_scale(Hertz f) const;

  /// Per-core power for an activity at frequency f.
  Watts core_power(Hertz f, Activity activity) const;

  /// Constant per-node power (uncore + DRAM across `sockets`).
  Watts node_constant_power(Index sockets) const;

 private:
  PowerModelConfig config_;
};

}  // namespace rsls::power
