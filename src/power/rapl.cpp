#include "power/rapl.hpp"

#include "core/error.hpp"

namespace rsls::power {

const char* to_string(PhaseTag tag) {
  switch (tag) {
    case PhaseTag::kSolve:
      return "solve";
    case PhaseTag::kExtraIter:
      return "extra-iter";
    case PhaseTag::kComm:
      return "comm";
    case PhaseTag::kCheckpoint:
      return "checkpoint";
    case PhaseTag::kRollback:
      return "rollback";
    case PhaseTag::kReconstruct:
      return "reconstruct";
    case PhaseTag::kIdleWait:
      return "idle-wait";
    case PhaseTag::kDetect:
      return "detect";
    case PhaseTag::kEncode:
      return "encode";
    case PhaseTag::kRecover:
      return "recover";
    case PhaseTag::kPrecond:
      return "precond";
    case PhaseTag::kCount:
      break;
  }
  return "?";
}

void EnergyAccount::charge_core(PhaseTag tag, Joules joules) {
  RSLS_CHECK(tag != PhaseTag::kCount);
  RSLS_CHECK(joules >= 0.0);
  core_by_tag_[static_cast<std::size_t>(tag)] += joules;
}

void EnergyAccount::charge_node_constant(Joules joules) {
  RSLS_CHECK(joules >= 0.0);
  node_constant_ += joules;
}

Joules EnergyAccount::core_energy(PhaseTag tag) const {
  RSLS_CHECK(tag != PhaseTag::kCount);
  return core_by_tag_[static_cast<std::size_t>(tag)];
}

Joules EnergyAccount::core_energy_total() const {
  Joules sum = 0.0;
  for (const Joules j : core_by_tag_) {
    sum += j;
  }
  return sum;
}

Joules EnergyAccount::total() const {
  return core_energy_total() + node_constant_;
}

Joules EnergyAccount::resilience_energy() const {
  Joules sum = 0.0;
  sum += core_energy(PhaseTag::kExtraIter);
  sum += core_energy(PhaseTag::kCheckpoint);
  sum += core_energy(PhaseTag::kRollback);
  sum += core_energy(PhaseTag::kReconstruct);
  sum += core_energy(PhaseTag::kIdleWait);
  sum += core_energy(PhaseTag::kDetect);
  sum += core_energy(PhaseTag::kEncode);
  sum += core_energy(PhaseTag::kRecover);
  return sum;
}

void EnergyAccount::merge(const EnergyAccount& other) {
  for (std::size_t i = 0; i < kPhaseTagCount; ++i) {
    core_by_tag_[i] += other.core_by_tag_[i];
  }
  node_constant_ += other.node_constant_;
}

}  // namespace rsls::power
