#pragma once
// RAPL-style energy accounting.
//
// The paper reads processor energy through Intel RAPL's package and DRAM
// domains. EnergyAccount is the simulated equivalent: charges are
// accumulated per phase tag (so benches can split E_res from E_solve and
// plot checkpoint/reconstruction energy separately) and per RAPL domain.

#include <array>
#include <string>

#include "core/types.hpp"
#include "core/units.hpp"

namespace rsls::power {

/// What a charged interval was doing, from the application's viewpoint.
/// Used to attribute energy (Fig. 7b's E_res/E_solve split) and to label
/// the power profile (Fig. 7a).
enum class PhaseTag {
  kSolve,        // CG iterations that fault-free execution would also run
  kExtraIter,    // additional iterations caused by a recovery scheme
  kComm,         // parallel overhead (halo exchange, allreduce waits)
  kCheckpoint,   // writing checkpoints
  kRollback,     // restoring state from a checkpoint
  kReconstruct,  // FW construction of the lost block
  kIdleWait,     // waiting while another rank reconstructs
  kDetect,       // online SDC detection (checksums, invariant checks,
                 // periodic true-residual verification)
  kEncode,       // ABFT parity maintenance (erasure-coded redundancy
                 // updates and encoded-checkpoint construction)
  kRecover,      // recovery runtime: spare promotion state transfer,
                 // shrink repartitioning, and retry/backoff waits
  kPrecond,      // preconditioner setup: factoring/inverting the local
                 // operator before the first iteration (applies are
                 // charged to the iteration's own solve phase)
  kCount
};

constexpr std::size_t kPhaseTagCount = static_cast<std::size_t>(PhaseTag::kCount);

const char* to_string(PhaseTag tag);

class EnergyAccount {
 public:
  /// Add `joules` of core energy attributed to `tag`.
  void charge_core(PhaseTag tag, Joules joules);

  /// Add node-constant (uncore + DRAM) energy; not phase-attributed
  /// because it accrues with wall time, not activity.
  void charge_node_constant(Joules joules);

  Joules core_energy(PhaseTag tag) const;
  Joules core_energy_total() const;
  Joules node_constant_energy() const { return node_constant_; }

  /// Package-style total: cores + uncore + DRAM.
  Joules total() const;

  /// Energy charged to resilience phases (everything except the solver's
  /// own kSolve/kComm/kPrecond work).
  Joules resilience_energy() const;

  void merge(const EnergyAccount& other);

 private:
  std::array<Joules, kPhaseTagCount> core_by_tag_{};
  Joules node_constant_ = 0.0;
};

}  // namespace rsls::power
