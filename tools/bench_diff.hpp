#pragma once
// bench_diff: regression gate over the repo's machine-readable bench
// artifacts. Compares a baseline against a current run of either
// artifact family —
//   BENCH_*.json   one object, "results" array of named rows with a
//                  "counters" object (micro_kernels, ablation_topology,
//                  ablation_failure_domains)
//   RunReport      JSONL, one object per line, "results" object of
//                  scalars plus an "energy" block (harness runs)
// — flattening each entry's numeric fields into metrics and judging
// every metric against a relative tolerance, direction-aware: for
// lower-is-better metrics (times, energy, ratios, iterations) only
// growth fails; for higher-is-better metrics (rates, converged) only
// shrinkage fails; everything else is two-sided. Files that cannot be
// meaningfully compared (different schema_version or source) are
// refused outright rather than producing a noisy diff.
//
// Dependency-free by design (obs/json only) so CI can gate committed
// baselines without pulling in a diff framework.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rsls::tools {

struct DiffOptions {
  /// Default relative tolerance for every metric.
  double tolerance = 0.05;
  /// Per-metric overrides (exact metric name, e.g. "real_time_s" or
  /// "counters.items_per_second").
  std::map<std::string, double> metric_tolerance;
  /// Metric names excluded from comparison entirely (e.g. "iterations"
  /// for google-benchmark outputs, where it is the adaptive repetition
  /// count, not a result).
  std::vector<std::string> skip;
};

/// One out-of-tolerance metric.
struct Delta {
  std::string entry;   // result row ("spmv/p192", "lap2d_192/RD", …)
  std::string metric;  // flattened metric name
  double baseline = 0.0;
  double current = 0.0;
  /// Signed relative change, (current − baseline) / max(|b|, |c|);
  /// bounded to [−1, 1] so zero baselines stay finite.
  double relative = 0.0;
  double tolerance = 0.0;
};

struct DiffResult {
  /// False when the files cannot be compared at all (parse failure,
  /// schema_version or source mismatch); `error` says why.
  bool comparable = false;
  std::string error;
  int baseline_schema = 0;
  int current_schema = 0;
  std::string source;
  std::size_t entries_compared = 0;
  std::size_t metrics_compared = 0;
  /// Failures in the harmful direction (gate on these).
  std::vector<Delta> regressions;
  /// Out-of-tolerance moves in the beneficial direction (informational).
  std::vector<Delta> improvements;
  /// Entries present in the baseline but missing from the current run —
  /// a silent coverage loss, gated like a regression.
  std::vector<std::string> missing_entries;
  /// New entries with no baseline (informational).
  std::vector<std::string> extra_entries;

  bool ok() const {
    return comparable && regressions.empty() && missing_entries.empty();
  }
};

/// Compare two artifacts given their raw file contents.
DiffResult diff_artifacts(const std::string& baseline_text,
                          const std::string& current_text,
                          const DiffOptions& options);

/// Render a human-readable report. Returns the process exit code the
/// result calls for: 0 clean, 1 regressions/missing entries, 2 not
/// comparable.
int render_diff(std::ostream& os, const DiffResult& result);

}  // namespace rsls::tools
