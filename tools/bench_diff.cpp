#include "bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace rsls::tools {

namespace {

using obs::JsonValue;

/// Which direction of drift is harmful for a metric.
enum class Direction { kLowerBetter, kHigherBetter, kTwoSided };

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Classify by name. The conventions are the repo's own: seconds and
/// joules carry their unit as a suffix, throughputs end in per_second,
/// ratios are normalized to the fault-free baseline (lower is better).
Direction direction_of(std::string name) {
  if (const std::size_t dot = name.rfind('.'); dot != std::string::npos) {
    name = name.substr(dot + 1);  // judge "counters.x" / "energy.x" by leaf
  }
  if (ends_with(name, "per_second") || name == "converged") {
    return Direction::kHigherBetter;
  }
  if (ends_with(name, "_s") || ends_with(name, "_us") ||
      ends_with(name, "_j") || ends_with(name, "_w") ||
      ends_with(name, "_ratio") || name == "iterations" ||
      name.find("time") != std::string::npos ||
      name.find("energy") != std::string::npos) {
    return Direction::kLowerBetter;
  }
  return Direction::kTwoSided;
}

/// One comparable entry: a named row with its flattened numeric metrics.
struct Entry {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

struct Artifact {
  int schema_version = 0;
  std::string source;
  std::vector<Entry> entries;
};

void flatten_into(const std::string& prefix, const JsonValue& object,
                  Entry& entry) {
  for (const auto& [key, value] : object.as_object()) {
    const std::string name = prefix.empty() ? key : prefix + "." + key;
    if (value.is_number()) {
      entry.metrics.emplace_back(name, value.as_number());
    } else if (value.is_object()) {
      flatten_into(name, value, entry);
    }
    // Strings/arrays/bools are labels or structure, not gated metrics.
  }
}

/// BENCH_*.json entry: row name + top-level numerics + counters.
Entry bench_entry(const JsonValue& row) {
  Entry entry;
  entry.name = row.at("name").as_string();
  flatten_into("", row, entry);
  return entry;
}

/// RunReport line: entry per (matrix, scheme); metrics from the results
/// scalars and the energy decomposition (per-rank attribution and the
/// series are trajectories, not gated scalars).
Entry report_entry(const JsonValue& line) {
  Entry entry;
  entry.name = line.at("matrix").as_string() + "/" +
               line.at("scheme").as_string();
  flatten_into("", line.at("results"), entry);
  const JsonValue& energy = line.at("energy");
  flatten_into("energy.phases", energy.at("phases"), entry);
  entry.metrics.emplace_back("energy.total", energy.at("total").as_number());
  return entry;
}

Artifact load_artifact(const std::string& text) {
  Artifact artifact;
  bool first = true;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    const JsonValue value = obs::parse_json(line);
    const int schema =
        static_cast<int>(value.at("schema_version").as_number());
    const std::string source =
        value.contains("source") ? value.at("source").as_string() : "";
    if (first) {
      artifact.schema_version = schema;
      artifact.source = source;
      first = false;
    } else if (schema != artifact.schema_version) {
      throw Error("mixed schema_version values within one artifact (" +
                  std::to_string(artifact.schema_version) + " and " +
                  std::to_string(schema) + ")");
    }
    const JsonValue& results = value.at("results");
    if (results.is_array()) {
      for (const JsonValue& row : results.as_array()) {
        artifact.entries.push_back(bench_entry(row));
      }
    } else {
      artifact.entries.push_back(report_entry(value));
    }
  }
  if (first) {
    throw Error("artifact contains no JSON documents");
  }
  // Duplicate names (a sweep emitting the same matrix/scheme cell twice)
  // are disambiguated in document order so both sides pair up 1:1.
  std::map<std::string, int> seen;
  for (Entry& entry : artifact.entries) {
    const int n = seen[entry.name]++;
    if (n > 0) {
      entry.name += '#';
      entry.name += std::to_string(n);
    }
  }
  return artifact;
}

}  // namespace

DiffResult diff_artifacts(const std::string& baseline_text,
                          const std::string& current_text,
                          const DiffOptions& options) {
  DiffResult result;
  Artifact baseline;
  Artifact current;
  try {
    baseline = load_artifact(baseline_text);
  } catch (const std::exception& e) {
    result.error = std::string("baseline: ") + e.what();
    return result;
  }
  try {
    current = load_artifact(current_text);
  } catch (const std::exception& e) {
    result.error = std::string("current: ") + e.what();
    return result;
  }
  result.baseline_schema = baseline.schema_version;
  result.current_schema = current.schema_version;
  result.source = baseline.source;
  if (baseline.schema_version != current.schema_version) {
    result.error = "schema_version mismatch: baseline is version " +
                   std::to_string(baseline.schema_version) +
                   ", current is version " +
                   std::to_string(current.schema_version) +
                   " — regenerate the baseline with the current build";
    return result;
  }
  if (baseline.source != current.source) {
    result.error = "source mismatch: baseline was produced by '" +
                   baseline.source + "', current by '" + current.source +
                   "' — these artifacts measure different things";
    return result;
  }
  result.comparable = true;

  std::map<std::string, const Entry*> current_by_name;
  for (const Entry& entry : current.entries) {
    current_by_name[entry.name] = &entry;
  }
  std::map<std::string, bool> baseline_names;
  for (const Entry& entry : baseline.entries) {
    baseline_names[entry.name] = true;
  }
  for (const Entry& entry : current.entries) {
    if (baseline_names.find(entry.name) == baseline_names.end()) {
      result.extra_entries.push_back(entry.name);
    }
  }

  const auto skipped = [&options](const std::string& metric) {
    return std::find(options.skip.begin(), options.skip.end(), metric) !=
           options.skip.end();
  };

  for (const Entry& base : baseline.entries) {
    const auto found = current_by_name.find(base.name);
    if (found == current_by_name.end()) {
      result.missing_entries.push_back(base.name);
      continue;
    }
    ++result.entries_compared;
    const Entry& cur = *found->second;
    for (const auto& [metric, base_value] : base.metrics) {
      if (skipped(metric)) {
        continue;
      }
      const auto cur_metric = std::find_if(
          cur.metrics.begin(), cur.metrics.end(),
          [&metric](const auto& m) { return m.first == metric; });
      if (cur_metric == cur.metrics.end()) {
        continue;  // metric dropped: structure change, not a perf gate
      }
      ++result.metrics_compared;
      const double cur_value = cur_metric->second;
      const double denom = std::max(std::abs(base_value), std::abs(cur_value));
      const double relative =
          denom > 0.0 ? (cur_value - base_value) / denom : 0.0;
      const auto tol_override = options.metric_tolerance.find(metric);
      const double tolerance = tol_override != options.metric_tolerance.end()
                                   ? tol_override->second
                                   : options.tolerance;
      if (std::abs(relative) <= tolerance) {
        continue;
      }
      Delta delta;
      delta.entry = base.name;
      delta.metric = metric;
      delta.baseline = base_value;
      delta.current = cur_value;
      delta.relative = relative;
      delta.tolerance = tolerance;
      const Direction direction = direction_of(metric);
      const bool harmful =
          direction == Direction::kTwoSided ||
          (direction == Direction::kLowerBetter && relative > 0.0) ||
          (direction == Direction::kHigherBetter && relative < 0.0);
      (harmful ? result.regressions : result.improvements)
          .push_back(std::move(delta));
    }
  }
  return result;
}

int render_diff(std::ostream& os, const DiffResult& result) {
  if (!result.comparable) {
    os << "bench_diff: cannot compare: " << result.error << "\n";
    return 2;
  }
  os << "bench_diff: source=" << result.source
     << " schema_version=" << result.baseline_schema << ", "
     << result.entries_compared << " entries / " << result.metrics_compared
     << " metrics compared\n";
  const auto print = [&os](const char* label, const Delta& d) {
    os << "  " << label << " " << d.entry << " :: " << d.metric << "  "
       << d.baseline << " -> " << d.current << "  ("
       << (d.relative >= 0.0 ? "+" : "") << d.relative * 100.0
       << "%, tolerance ±" << d.tolerance * 100.0 << "%)\n";
  };
  for (const std::string& name : result.missing_entries) {
    os << "  MISSING " << name << " (present in baseline, absent now)\n";
  }
  for (const Delta& delta : result.regressions) {
    print("REGRESSION", delta);
  }
  for (const Delta& delta : result.improvements) {
    print("improved", delta);
  }
  for (const std::string& name : result.extra_entries) {
    os << "  new entry " << name << " (no baseline)\n";
  }
  if (result.ok()) {
    os << "bench_diff: OK (within tolerance)\n";
    return 0;
  }
  os << "bench_diff: " << result.regressions.size() << " regression(s), "
     << result.missing_entries.size() << " missing entr"
     << (result.missing_entries.size() == 1 ? "y" : "ies") << "\n";
  return 1;
}

}  // namespace rsls::tools
