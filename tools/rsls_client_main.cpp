// rsls_client — CLI for the solve daemon.
//
//   rsls_client --port N submit '<job json>'   → prints the job id
//   rsls_client --port N status <id>           → prints the status JSON
//   rsls_client --port N wait <id>             → blocks, prints final JSON
//   rsls_client --port N events <id>           → streams NDJSON lines
//   rsls_client --port N cancel <id>
//   rsls_client --port N metrics
//   rsls_client --port N health
//
// Exit code 0 on success; 1 on transport errors or rejected requests.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "serve/client.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  int port = env::serve_port();
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::cerr << "usage: rsls_client [--port N] "
                 "submit|status|wait|events|cancel|metrics|health ..."
              << std::endl;
    return 1;
  }

  const serve::Client client(port);
  const std::string& command = args[0];
  try {
    if (command == "submit") {
      std::cout << client.submit(args.size() > 1 ? args[1] : "{}")
                << std::endl;
      return 0;
    }
    if (command == "status" && args.size() > 1) {
      std::cout << obs::to_string(client.status(args[1])) << std::endl;
      return 0;
    }
    if (command == "wait" && args.size() > 1) {
      std::cout << obs::to_string(client.wait(args[1])) << std::endl;
      return 0;
    }
    if (command == "events" && args.size() > 1) {
      const std::string final_state = client.stream_events(
          args[1], [](const std::string& line) { std::cout << line << "\n"; });
      std::cout << "{\"state\":\"" << final_state << "\"}" << std::endl;
      return 0;
    }
    if (command == "cancel" && args.size() > 1) {
      const bool accepted = client.cancel(args[1]);
      std::cout << (accepted ? "cancelling" : "already terminal") << std::endl;
      return accepted ? 0 : 1;
    }
    if (command == "metrics") {
      std::cout << obs::to_string(client.metrics()) << std::endl;
      return 0;
    }
    if (command == "health") {
      const bool ok = client.healthy();
      std::cout << (ok ? "ok" : "unreachable") << std::endl;
      return ok ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "rsls_client: " << e.what() << std::endl;
    return 1;
  }
  std::cerr << "rsls_client: unknown command '" << command << "'" << std::endl;
  return 1;
}
