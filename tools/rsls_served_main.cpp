// rsls_served — the RSLS solve daemon.
//
//   rsls_served [--port N] [--queue-depth N] [--workers N]
//               [--cache-entries N]
//
// Flags override the RSLS_SERVE_* environment, which overrides the
// built-in defaults (same precedence story as job fields vs env).
// SIGTERM/SIGINT trigger a graceful drain: admission stops, queued and
// running jobs finish, then the listener closes and the process exits 0.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/env.hpp"
#include "core/log.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

long long flag_value(int argc, char** argv, const char* name,
                     long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsls;
  env::warn_unknown_once();

  const int port = static_cast<int>(
      flag_value(argc, argv, "--port", env::serve_port()));
  serve::JobEngine::Options options;
  options.workers = static_cast<Index>(
      flag_value(argc, argv, "--workers", env::serve_jobs()));
  options.queue_depth = static_cast<Index>(
      flag_value(argc, argv, "--queue-depth", env::serve_queue_depth()));
  options.cache_entries = static_cast<std::size_t>(flag_value(
      argc, argv, "--cache-entries",
      static_cast<long long>(env::serve_cache_entries())));

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    serve::SolveServer server(port, options);
    // Line-buffered, machine-readable startup banner: the CI smoke job
    // and the bench read the resolved port from here.
    std::cout << "rsls_served listening on 127.0.0.1:" << server.port()
              << " workers=" << options.workers
              << " queue_depth=" << options.queue_depth
              << " cache_entries=" << options.cache_entries << std::endl;

    // The accept loop blocks, so watch the signal flag from a sidecar
    // thread and drive the graceful drain from there.
    std::thread watcher([&server] {
      while (g_shutdown == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::cout << "rsls_served draining" << std::endl;
      server.shutdown();
    });
    server.serve_forever();
    watcher.join();
    std::cout << "rsls_served stopped" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rsls_served: " << e.what() << std::endl;
    return 1;
  }
}
