// bench_diff CLI — gate a bench/RunReport artifact against a baseline.
//
//   bench_diff [options] <baseline.json> <current.json>
//     --tol=F            default relative tolerance (default 0.05)
//     --tol:METRIC=F     per-metric tolerance override (repeatable)
//     --skip=METRIC      exclude a metric from comparison (repeatable)
//     --report=PATH      also write the report to PATH (for CI artifacts)
//
// Exit codes: 0 within tolerance, 1 regression or missing entry,
// 2 unusable input (missing file, parse error, schema/source mismatch).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_diff.hpp"
#include "core/version.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path);
  if (!is.good()) {
    return false;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  out = buffer.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--tol=F] [--tol:METRIC=F] [--skip=METRIC] "
               "[--report=PATH] <baseline.json> <current.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rsls::tools::DiffOptions options;
  std::string report_path;
  std::string baseline_path;
  std::string current_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (baseline_path.empty()) {
        baseline_path = arg;
      } else if (current_path.empty()) {
        current_path = arg;
      } else {
        return usage();
      }
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      if (arg == "--version") {
        std::printf("bench_diff %s\n", rsls::build::git_describe());
        return 0;
      }
      return usage();
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    try {
      if (key == "--tol") {
        options.tolerance = std::stod(value);
      } else if (key.rfind("--tol:", 0) == 0) {
        options.metric_tolerance[key.substr(6)] = std::stod(value);
      } else if (key == "--skip") {
        options.skip.push_back(value);
      } else if (key == "--report") {
        report_path = value;
      } else {
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    return usage();
  }

  std::string baseline_text;
  std::string current_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench_diff: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!read_file(current_path, current_text)) {
    std::fprintf(stderr, "bench_diff: cannot read current %s\n",
                 current_path.c_str());
    return 2;
  }

  const rsls::tools::DiffResult result =
      rsls::tools::diff_artifacts(baseline_text, current_text, options);
  const int code = rsls::tools::render_diff(std::cout, result);
  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report.good()) {
      std::fprintf(stderr, "bench_diff: cannot write report %s\n",
                   report_path.c_str());
      return 2;
    }
    report << "baseline: " << baseline_path << "\n"
           << "current:  " << current_path << "\n"
           << "build:    " << rsls::build::git_describe() << "\n";
    rsls::tools::render_diff(report, result);
  }
  return code;
}
