// Ablation — ABFT erasure coding vs rollback and forward recovery under
// link-and-node failures (LNF, §2.1): each fault event takes out 1, 2 or
// 3 ranks *simultaneously*. With m = 2 parity blocks, ESR reconstructs
// x, r and p exactly for up to two concurrent losses — the solve
// continues on the fault-free trajectory with zero extra iterations —
// while CR-M must roll back and LI/LSI pay extra iterations to
// re-converge. Beyond the parity capability (3-rank events) ESR
// escalates to a zero-fill restart and still converges; ABFT-CR's
// encoded snapshot survives the simultaneous loss of its own shares,
// where a plain node-local checkpoint would be gone with the ranks. The
// kEncode slice of the energy account shows what the parity maintenance
// costs.

#include <iostream>

#include "abft/encoded_checkpoint.hpp"
#include "abft/esr.hpp"
#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/fault.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const auto& entry = sparse::roster_entry("crystm02");
  const Index processes = options.get_index("processes", quick ? 24 : 48);

  harness::ExperimentConfig config;
  config.processes = processes;
  config.faults = quick ? 2 : 3;

  std::cout << "Ablation: ABFT under multi-rank (LNF) faults (" << entry.name
            << ", " << processes << " processes, " << config.faults
            << " fault events, m = 2 parity blocks)\n\n";

  TablePrinter table({"scheme", "ranks/fault", "iter x", "time x", "energy x",
                      "encode E %", "recoveries", "fallbacks", "converged"});
  std::vector<std::vector<std::string>> csv_rows;

  struct Row {
    std::string scheme;
    Index ranks_per_fault = 0;
    harness::SchemeRun run;
    double encode_fraction = 0.0;
    Index esr_fallbacks = 0;
    Index snapshot_shares_decoded = 0;
  };

  // One cell per (loss width × scheme), all sharing the group's
  // fault-free baseline. Each cell body writes its own pre-sized row
  // slot, so the grid parallelizes under RSLS_JOBS with bit-identical
  // results.
  const std::vector<std::string> schemes = {"ESR",  "ABFT-CR", "RD", "CR-M",
                                            "CR-D", "LI",      "LSI"};
  const IndexVec loss_widths = {1, 2, 3};
  std::vector<Row> rows(loss_widths.size() * schemes.size());

  harness::GroupSpec group;
  group.label = entry.name;
  group.config = config;
  group.make_workload = [&entry, processes, quick] {
    return harness::Workload::create(entry.make(quick), processes, entry.name);
  };
  for (std::size_t wi = 0; wi < loss_widths.size(); ++wi) {
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const Index ranks_per_fault = loss_widths[wi];
      const std::string name = schemes[si];
      Row* row = &rows[wi * schemes.size() + si];
      harness::CellSpec cell;
      cell.scheme = name;
      cell.body = [row, name, ranks_per_fault](
                      const harness::Workload& workload,
                      const harness::FfBaseline& ff,
                      const harness::ExperimentConfig& cell_config) {
        const auto scheme =
            harness::make_scheme(name, cell_config.scheme, workload.x0);
        auto injector = resilience::FaultInjector::evenly_spaced_multi(
            cell_config.faults, ff.iterations, ranks_per_fault,
            cell_config.processes, cell_config.fault_seed);
        const auto run = harness::run_scheme(
            workload, name, cell_config, ff,
            {.scheme = scheme.get(), .injector = &injector});
        row->scheme = name;
        row->ranks_per_fault = ranks_per_fault;
        row->run = run;
        row->encode_fraction =
            run.report.account.core_energy(power::PhaseTag::kEncode) /
            run.report.energy;
        if (const auto* esr =
                dynamic_cast<const abft::EsrScheme*>(scheme.get())) {
          row->esr_fallbacks = esr->fallbacks();
        }
        if (const auto* cr =
                dynamic_cast<const abft::EncodedCheckpoint*>(scheme.get())) {
          row->snapshot_shares_decoded = cr->shares_decoded();
        }
        return run;
      };
      group.cells.push_back(std::move(cell));
    }
  }

  harness::Runner runner;
  const auto result = runner.run_group(group);
  const auto& ff = result.ff;

  for (const auto& row : rows) {
    table.add_row({row.scheme, std::to_string(row.ranks_per_fault),
                   TablePrinter::num(row.run.iteration_ratio),
                   TablePrinter::num(row.run.time_ratio),
                   TablePrinter::num(row.run.energy_ratio),
                   TablePrinter::num(100.0 * row.encode_fraction),
                   std::to_string(row.run.report.recoveries),
                   std::to_string(row.esr_fallbacks),
                   row.run.report.cg.converged ? "yes" : "no"});
    csv_rows.push_back({row.scheme, std::to_string(row.ranks_per_fault),
                        TablePrinter::num(row.run.iteration_ratio, 4),
                        TablePrinter::num(row.run.time_ratio, 4),
                        TablePrinter::num(row.run.energy_ratio, 4),
                        TablePrinter::num(row.encode_fraction, 6),
                        std::to_string(row.run.report.recoveries),
                        std::to_string(row.esr_fallbacks),
                        row.run.report.cg.converged ? "1" : "0"});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"scheme", "ranks_per_fault", "iteration_ratio", "time_ratio",
                 "energy_ratio", "encode_energy_fraction", "recoveries",
                 "esr_fallbacks", "converged"});
  for (const auto& r : csv_rows) {
    csv.add_row(r);
  }

  // Shape checks.
  const auto find = [&](const std::string& name, Index ranks) -> const Row& {
    for (const auto& r : rows) {
      if (r.scheme == name && r.ranks_per_fault == ranks) {
        return r;
      }
    }
    throw Error("missing ablation row");
  };
  // (1) Within its parity capability ESR is exact: the fault-free
  // trajectory continues with no rollback and no fallback. Decode
  // rounding at ~machine epsilon can shift the tolerance crossing by at
  // most one iteration in either direction — contrast CR-M's tens of
  // rollback iterations in the same rows.
  bool esr_exact = true;
  for (const Index ranks : IndexVec{1, 2}) {
    const Row& esr = find("ESR", ranks);
    esr_exact = esr_exact &&
                esr.run.report.cg.iterations <= ff.iterations + 1 &&
                esr.esr_fallbacks == 0;
  }
  // (2) CR-M pays rollback iterations for the same 2-rank events.
  const bool crm_rolls_back =
      find("CR-M", 2).run.report.cg.iterations > ff.iterations;
  // (3) Exactness is cheaper than replication: within its parity
  // capability ESR uses less energy than RD's doubled power. (Beyond
  // capability the zero-fill restarts cost extra iterations and the
  // comparison flips — visible in the 3-rank rows.)
  bool esr_cheaper_than_rd = true;
  for (const Index ranks : IndexVec{1, 2}) {
    esr_cheaper_than_rd =
        esr_cheaper_than_rd &&
        find("ESR", ranks).run.energy_ratio < find("RD", ranks).run.energy_ratio;
  }
  // (4) Beyond capability (3 concurrent losses, m = 2) ESR escalates to
  // its zero-fill restart and still converges.
  const Row& esr3 = find("ESR", 3);
  const bool esr_escalates = esr3.esr_fallbacks >= 1 &&
                             esr3.run.report.cg.converged;
  // (5) ABFT-CR decodes lost snapshot shares on multi-rank events — the
  // encoded checkpoint survives losses that take its own shares along.
  const bool abft_cr_survives =
      find("ABFT-CR", 2).snapshot_shares_decoded > 0 ||
      find("ABFT-CR", 3).snapshot_shares_decoded > 0;
  // (6) Every scheme at every loss width reaches the true solution.
  bool all_converge = true;
  // (7) The encode bucket is nonzero exactly for the ABFT schemes.
  bool encode_only_abft = true;
  for (const auto& r : rows) {
    all_converge = all_converge && r.run.report.cg.converged &&
                   r.run.report.true_relative_residual < 1e-6;
    const bool is_abft = r.scheme == "ESR" || r.scheme == "ABFT-CR";
    encode_only_abft =
        encode_only_abft && (r.encode_fraction > 0.0) == is_abft;
  }

  std::cout << "\nshape-check: ESR exact within parity capability "
            << (esr_exact ? "PASS" : "FAIL") << "; CR-M rolls back "
            << (crm_rolls_back ? "PASS" : "FAIL")
            << "; ESR cheaper than RD "
            << (esr_cheaper_than_rd ? "PASS" : "FAIL")
            << "; ESR escalates past capability and converges "
            << (esr_escalates ? "PASS" : "FAIL")
            << "; ABFT-CR decodes lost snapshot shares "
            << (abft_cr_survives ? "PASS" : "FAIL")
            << "; all runs converge " << (all_converge ? "PASS" : "FAIL")
            << "; encode energy only for ABFT schemes "
            << (encode_only_abft ? "PASS" : "FAIL") << "\n";
  return esr_exact && crm_rolls_back && esr_cheaper_than_rd &&
                 esr_escalates && abft_cr_survives && all_converge &&
                 encode_only_abft
             ? 0
             : 1;
}
