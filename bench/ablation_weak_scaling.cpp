// Ablation — experimental weak scaling: Fig. 9 is a *model* projection;
// this bench runs the same weak-scaling protocol as an actual simulated
// experiment at reachable sizes (fixed work and fixed per-process MTBF,
// so the fault count grows linearly with the process count) and checks
// that the measured trends agree with the projected ones: RD flat, CR-D
// growing fastest (shared-disk t_C grows with total size), CR-M nearly
// flat, FW in between.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  // Fixed-work weak scaling: rows and nnz per process constant.
  const Index rows_per_process = options.get_index("rows-per-process", 160);
  const Index faults_per_kproc =
      options.get_index("faults-per-24proc", 4);  // per-process MTBF const.
  const IndexVec process_counts =
      quick ? IndexVec{12, 48} : IndexVec{12, 24, 48, 96, 192};

  std::cout << "Ablation: experimental weak scaling ("
            << rows_per_process << " rows/process, fault count grows "
            << "linearly with processes)\n\n";

  const std::vector<std::string> schemes = {"RD", "LI", "CR-M", "CR-D"};
  std::vector<std::string> header = {"procs", "rows", "faults", "FF ms"};
  for (const auto& s : schemes) {
    header.push_back(s + " T_res");
  }
  TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;

  std::vector<double> first(schemes.size(), 0.0);
  std::vector<double> last(schemes.size(), 0.0);

  // One group per process count (each has its own generated matrix and
  // baseline); scheme cells ride the group config.
  std::vector<harness::GroupSpec> groups;
  for (const Index p : process_counts) {
    sparse::BandedSpdConfig matrix_config;
    matrix_config.n = p * rows_per_process;
    matrix_config.half_bandwidth = 11;
    matrix_config.diag_excess = sparse::diag_excess_for_iterations(450.0);
    matrix_config.scale_decades = 1.0;
    matrix_config.seed = 500 + static_cast<std::uint64_t>(p);

    harness::GroupSpec group;
    group.label = "p" + std::to_string(p);
    group.config.processes = p;
    group.config.faults = std::max<Index>(1, p * faults_per_kproc / 24);
    group.config.use_young_interval = true;
    group.make_workload = [matrix_config, p] {
      return harness::Workload::create(sparse::banded_spd(matrix_config), p);
    };
    for (const auto& scheme : schemes) {
      group.cells.push_back({scheme, std::nullopt, nullptr});
    }
    groups.push_back(std::move(group));
  }

  harness::Runner runner;
  const auto results = runner.run(groups);

  for (std::size_t pi = 0; pi < process_counts.size(); ++pi) {
    const Index p = process_counts[pi];
    const auto& result = results[pi];
    std::vector<std::string> row = {
        std::to_string(p), std::to_string(p * rows_per_process),
        std::to_string(groups[pi].config.faults),
        TablePrinter::num(result.ff.time * 1e3, 2)};
    std::vector<std::string> csv_row = row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto& run = result.runs[s];
      const double t_res = run.time_ratio - 1.0;
      row.push_back(TablePrinter::num(t_res));
      csv_row.push_back(TablePrinter::num(t_res, 4));
      if (pi == 0) {
        first[s] = t_res;
      }
      if (pi + 1 == process_counts.size()) {
        last[s] = t_res;
      }
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, header);
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  // Shapes mirroring the Fig. 9 projection, now measured:
  const double rd_growth = last[0] - first[0];
  const double li_growth = last[1] - first[1];
  const double crm_growth = last[2] - first[2];
  const double crd_growth = last[3] - first[3];
  const bool rd_flat = std::abs(rd_growth) < 0.05;
  const bool crd_grows = crd_growth > 0.1;
  const bool crd_fastest = crd_growth >= li_growth - 0.05 &&
                           crd_growth >= crm_growth - 0.05;
  const bool fw_grows = li_growth > 0.0;
  std::cout << "\nshape-check: RD flat " << (rd_flat ? "PASS" : "FAIL")
            << "; CR-D overhead grows " << (crd_grows ? "PASS" : "FAIL")
            << "; CR-D grows fastest " << (crd_fastest ? "PASS" : "FAIL")
            << "; FW overhead grows " << (fw_grows ? "PASS" : "FAIL")
            << "\n";
  return rd_flat && crd_grows ? 0 : 1;
}
