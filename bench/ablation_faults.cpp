// Ablation — fault density: sweep the number of injected faults and show
// how each scheme's overhead scales (research question 5 at experiment
// scale). RD stays flat; FW and CR overheads grow roughly linearly with
// the fault count; the new multi-level CR-2L tracks CR-M when L1 copies
// survive and degrades gracefully toward CR-D as they are lost.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const auto& entry = sparse::roster_entry("crystm02");
  const Index processes = options.get_index("processes", quick ? 24 : 48);

  std::cout << "Ablation: overhead vs fault count (" << entry.name << ", "
            << processes << " processes)\n\n";

  const std::vector<std::string> schemes = {"RD", "LI", "CR-M", "CR-2L",
                                            "CR-D"};
  std::vector<std::string> header = {"faults"};
  for (const auto& s : schemes) {
    header.push_back(s + " time x");
  }
  TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;

  // per scheme: overheads at min and max fault count for the shape check.
  std::vector<double> first_overhead(schemes.size(), 0.0);
  std::vector<double> last_overhead(schemes.size(), 0.0);

  const IndexVec fault_counts = quick ? IndexVec{2, 10} : IndexVec{1, 5, 10,
                                                                   20, 40};

  // One group (one matrix, one baseline), (fault count × scheme) cells;
  // each cell overrides the fault count on the group config.
  harness::GroupSpec group;
  group.label = entry.name;
  group.config.processes = processes;
  group.make_workload = [&entry, processes, quick] {
    return harness::Workload::create(entry.make(quick), processes, entry.name);
  };
  for (const Index faults : fault_counts) {
    for (const auto& scheme : schemes) {
      harness::ExperimentConfig config = group.config;
      config.faults = faults;
      config.scheme.cr_interval_iterations = 100;
      group.cells.push_back({scheme, config, nullptr});
    }
  }

  harness::Runner runner;
  const auto result = runner.run_group(group);

  for (std::size_t fi = 0; fi < fault_counts.size(); ++fi) {
    std::vector<std::string> row = {std::to_string(fault_counts[fi])};
    std::vector<std::string> csv_row = row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto& run = result.runs[fi * schemes.size() + s];
      row.push_back(TablePrinter::num(run.time_ratio));
      csv_row.push_back(TablePrinter::num(run.time_ratio, 4));
      if (fi == 0) {
        first_overhead[s] = run.time_ratio - 1.0;
      }
      if (fi + 1 == fault_counts.size()) {
        last_overhead[s] = run.time_ratio - 1.0;
      }
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  header[0] = "faults";
  CsvWriter csv(std::cout, header);
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  const bool rd_flat = last_overhead[0] < 0.05;
  bool others_grow = true;
  for (std::size_t s = 1; s < schemes.size(); ++s) {
    others_grow = others_grow && last_overhead[s] > first_overhead[s];
  }
  std::cout << "\nshape-check: RD flat in fault count "
            << (rd_flat ? "PASS" : "FAIL")
            << "; FW/CR overheads grow with faults "
            << (others_grow ? "PASS" : "FAIL") << "\n";
  return rd_flat && others_grow ? 0 : 1;
}
