// Figure 6 — residual vs iteration histories under faults and recovery.
//
// Paper: (a) a single fault at iteration 200 — the residual jumps for
// every scheme except RD (which overlaps FF); F0/FI jump highest, LI/LSI
// least, CR rolls back to the checkpointed residual level. (b) 10 faults
// on a 5-point stencil matrix.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "resilience/fault.hpp"
#include "sparse/roster.hpp"

namespace {

using namespace rsls;

struct History {
  std::string scheme;
  RealVec residuals;
};

/// The printed histories come from the flight-recorder series; the
/// solver's own residual_history is kept on as the reference the series
/// must reproduce point-for-point (same iterations, same doubles).
RealVec series_residuals(const harness::SchemeRun& run, bool& series_ok) {
  const auto& points = run.series.points;
  const auto& reference = run.report.cg.residual_history;
  RealVec residuals;
  residuals.reserve(points.size());
  for (const auto& point : points) {
    residuals.push_back(point.relative_residual);
  }
  bool ok = residuals.size() == reference.size();
  for (std::size_t i = 0; ok && i < residuals.size(); ++i) {
    ok = residuals[i] == reference[i] &&
         points[i].iteration == static_cast<Index>(i);
  }
  series_ok = series_ok && ok;
  return residuals;
}

/// Series sampling at every iteration; max_points high enough that the
/// recorder never has to decimate these trajectories.
harness::ExperimentConfig with_series(harness::ExperimentConfig config) {
  config.record_residuals = true;
  config.observability.enabled = true;
  config.observability.series = true;
  config.observability.series_stride = 1;
  config.observability.series_max_points = 1 << 16;
  return config;
}

std::vector<History> run_histories(const harness::Workload& workload,
                                   const harness::ExperimentConfig& config,
                                   const harness::FfBaseline& ff,
                                   const IndexVec& fault_iterations,
                                   bool& series_ok) {
  std::vector<History> histories;
  // Fault-free reference history.
  {
    const harness::ExperimentConfig ff_config = with_series(config);
    // RD with no faults tracks FF exactly; reuse it as the FF curve
    // (replica factor only changes energy, not the residual path).
    const auto scheme = harness::make_scheme("RD", config.scheme, workload.x0);
    auto injector = resilience::FaultInjector::none();
    const auto run =
        harness::run_scheme(workload, "FF", ff_config, ff,
                            {.scheme = scheme.get(), .injector = &injector});
    histories.push_back({"FF", series_residuals(run, series_ok)});
  }
  for (const auto& name : harness::iteration_scheme_names()) {
    const harness::ExperimentConfig scheme_config = with_series(config);
    auto injector = resilience::FaultInjector::at_iterations(
        fault_iterations, config.processes, config.fault_seed);
    const auto run = harness::run_scheme(workload, name, scheme_config, ff,
                                         {.injector = &injector});
    histories.push_back({name, series_residuals(run, series_ok)});
  }
  return histories;
}

void print_histories(const std::string& title,
                     const std::vector<History>& histories,
                     Index stride) {
  std::cout << title << "\nCSV:\n";
  std::vector<std::string> header = {"iteration"};
  std::size_t longest = 0;
  for (const auto& h : histories) {
    header.push_back(h.scheme);
    longest = std::max(longest, h.residuals.size());
  }
  CsvWriter csv(std::cout, header);
  for (std::size_t i = 0; i < longest;
       i += static_cast<std::size_t>(stride)) {
    std::vector<std::string> row = {std::to_string(i)};
    for (const auto& h : histories) {
      if (i < h.residuals.size()) {
        row.push_back(TablePrinter::num(std::log10(h.residuals[i]), 3));
      } else {
        row.push_back("");
      }
    }
    csv.add_row(row);
  }
  std::cout << "(values are log10 of the relative residual)\n\n";
}

/// Residual right after the fault iteration, for the jump comparison.
double post_fault_residual(const History& h, Index fault_iteration) {
  const auto idx = static_cast<std::size_t>(fault_iteration);
  RSLS_CHECK(idx < h.residuals.size());
  return h.residuals[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 48 : 192);
  config.scheme.cr_interval_iterations = 100;

  // (a) one fault at iteration 200 on crystm02.
  bool shapes_ok = true;
  bool series_ok = true;
  {
    const auto& entry = sparse::roster_entry("crystm02");
    const auto workload =
        harness::Workload::create(entry.make(quick), config.processes);
    const auto ff = harness::run_fault_free(workload, config);
    const Index fault_at = std::min<Index>(200, ff.iterations / 2);
    const auto histories =
        run_histories(workload, config, ff, IndexVec{fault_at}, series_ok);
    print_histories("Figure 6(a): single fault at iteration " +
                        std::to_string(fault_at) + " (" + entry.name + ")",
                    histories, 10);

    // Shape: residual jump F0 >= LI; RD overlaps FF at the fault.
    double ff_r = 0, rd_r = 0, f0_r = 0, li_r = 0;
    for (const auto& h : histories) {
      const double r = post_fault_residual(h, fault_at);
      if (h.scheme == "FF") ff_r = r;
      if (h.scheme == "RD") rd_r = r;
      if (h.scheme == "F0") f0_r = r;
      if (h.scheme == "LI") li_r = r;
    }
    const bool rd_overlaps = std::abs(std::log10(rd_r / ff_r)) < 0.1;
    const bool f0_jumps_most = f0_r >= li_r;
    std::cout << "shape-check(a): RD overlaps FF "
              << (rd_overlaps ? "PASS" : "FAIL") << "; F0 jump >= LI jump "
              << (f0_jumps_most ? "PASS" : "FAIL") << "\n\n";
    shapes_ok = shapes_ok && rd_overlaps && f0_jumps_most;
  }

  // (b) 10 faults on the 5-point stencil.
  {
    const auto& entry = sparse::roster_entry("stencil5");
    const auto workload =
        harness::Workload::create(entry.make(quick), config.processes);
    const auto ff = harness::run_fault_free(workload, config);
    IndexVec faults;
    for (Index j = 1; j <= 10; ++j) {
      faults.push_back((j * ff.iterations) / 11);
    }
    const auto histories = run_histories(workload, config, ff, faults,
                                         series_ok);
    print_histories("Figure 6(b): 10 faults on the 5-point stencil (" +
                        entry.name + ")",
                    histories, 20);
  }
  std::cout << "series-check: recorder series reproduces residual_history "
            << (series_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "shape-check: " << (shapes_ok ? "PASS" : "FAIL") << "\n";
  return shapes_ok && series_ok ? 0 : 1;
}
