// Ablation — row ordering, halo volume, and forward-recovery accuracy.
//
// The paper attributes LI/LSI's weakness on "irregular" matrices to
// structure (§5.2). This ablation separates two distinct mechanisms:
//   1. *communication locality* — a banded matrix whose rows were
//      randomly permuted keeps its spectrum but its halos explode
//      (~90 % off-block coupling); reverse Cuthill–McKee fully recovers
//      the band, and with it the SpMV halo volume and the gather cost of
//      every reconstruction.
//   2. *reconstruction accuracy* — measured here to be ordering-
//      INSENSITIVE on diagonally dominant matrices: LI's error gain is
//      governed by the block's diagonal dominance, which permutations
//      preserve. The LI ≈ F0 degradation the paper observes on irregular
//      matrices therefore stems from weak/ill-scaled rows (inherent), not
//      from the ordering — an expander stays F0-grade under any ordering.
// Consequence for practitioners: reorder to cut communication (large,
// free win); do not expect reordering to rescue reconstruction accuracy.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/ordering.hpp"
#include "sparse/roster.hpp"

namespace {

using namespace rsls;

/// Random symmetric permutation of a matrix (destroys any ordering-based
/// locality without changing the spectrum).
sparse::Csr shuffle_matrix(const sparse::Csr& a, std::uint64_t seed) {
  Rng rng(seed);
  IndexVec perm(static_cast<std::size_t>(a.rows));
  for (Index i = 0; i < a.rows; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  for (Index i = a.rows - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
  }
  return sparse::permute_symmetric(a, perm);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 24 : 48);
  config.faults = options.get_index("faults", 10);

  std::cout << "Ablation: ordering vs LI accuracy (" << config.processes
            << " processes, " << config.faults << " faults)\n\n";
  TablePrinter table({"case", "bandwidth", "off-block %", "halo (KiB)",
                      "FF time (ms)", "LI iter x", "F0 iter x"});
  std::vector<std::vector<std::string>> csv_rows;

  struct Measured {
    double li_ratio = 0.0;
    double halo_bytes = 0.0;
    double ff_time = 0.0;
  };
  const auto measure = [&](const std::string& label, const sparse::Csr& a) {
    const auto stats = sparse::compute_stats(a);
    const double coupling = sparse::off_block_coupling(a, config.processes);
    const auto workload = harness::Workload::create(a, config.processes);
    double halo_total = 0.0;
    for (const Bytes bytes : workload.a.halo_bytes()) {
      halo_total += bytes;
    }
    const auto ff = harness::run_fault_free(workload, config);
    const auto li = harness::run_scheme(workload, "LI", config, ff);
    const auto f0 = harness::run_scheme(workload, "F0", config, ff);
    table.add_row({label, std::to_string(stats.bandwidth),
                   TablePrinter::num(100.0 * coupling, 1),
                   TablePrinter::num(halo_total / 1024.0, 1),
                   TablePrinter::num(ff.time * 1e3, 2),
                   TablePrinter::num(li.iteration_ratio),
                   TablePrinter::num(f0.iteration_ratio)});
    csv_rows.push_back({label, std::to_string(stats.bandwidth),
                        TablePrinter::num(coupling, 4),
                        TablePrinter::num(halo_total, 0),
                        TablePrinter::num(li.iteration_ratio, 4),
                        TablePrinter::num(f0.iteration_ratio, 4)});
    return Measured{li.iteration_ratio, halo_total, ff.time};
  };

  // Hidden locality: a banded matrix, shuffled, then RCM-recovered.
  const sparse::Csr banded =
      sparse::roster_entry("crystm02").make(/*quick=*/true);
  const sparse::Csr shuffled = shuffle_matrix(banded, 313);
  const sparse::Csr recovered =
      sparse::permute_symmetric(shuffled, sparse::rcm_ordering(shuffled));
  const auto natural = measure("banded (natural)", banded);
  const auto shuffled_m = measure("banded (shuffled)", shuffled);
  const auto recovered_m = measure("banded (shuffled + RCM)", recovered);

  // Inherent coupling: an expander; RCM has nothing to recover.
  const sparse::Csr expander =
      sparse::roster_entry("Andrews").make(/*quick=*/true);
  const sparse::Csr expander_rcm =
      sparse::permute_symmetric(expander, sparse::rcm_ordering(expander));
  const auto expander_m = measure("expander (natural)", expander);
  const auto expander_rcm_m = measure("expander (RCM)", expander_rcm);

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"case", "bandwidth", "off_block_coupling",
                            "halo_bytes", "li_iter_ratio", "f0_iter_ratio"});
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  // 1. RCM fully recovers the shuffled band's halo volume.
  const bool halo_explodes = shuffled_m.halo_bytes > 5.0 * natural.halo_bytes;
  const bool rcm_recovers_halo =
      recovered_m.halo_bytes < 1.2 * natural.halo_bytes;
  // 2. LI accuracy is ordering-insensitive on dominant matrices, and an
  //    expander's LI stays F0-grade under any ordering.
  const bool li_ordering_insensitive =
      std::abs(shuffled_m.li_ratio - natural.li_ratio) < 0.15 &&
      std::abs(recovered_m.li_ratio - natural.li_ratio) < 0.15;
  const bool expander_immune =
      std::abs(expander_rcm_m.li_ratio - expander_m.li_ratio) < 0.15;
  std::cout << "\nshape-check: shuffling explodes the halo "
            << (halo_explodes ? "PASS" : "FAIL") << "; RCM recovers it "
            << (rcm_recovers_halo ? "PASS" : "FAIL")
            << "; LI accuracy is ordering-insensitive "
            << (li_ordering_insensitive ? "PASS" : "FAIL")
            << "; expander LI immune to reordering "
            << (expander_immune ? "PASS" : "FAIL") << "\n";
  return halo_explodes && rcm_recovers_halo && li_ordering_insensitive &&
                 expander_immune
             ? 0
             : 1;
}
