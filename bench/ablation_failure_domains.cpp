// Ablation — correlated failure domains and machine-level recovery
// (DESIGN.md §13): whole-leaf-switch losses on a fat tree against the
// ABFT parity width, then the spare-substitution vs shrinking recovery
// energy split on the flat network.
//
// Expected shape: a domain fault on a radix-4 fat tree kills all four
// ranks under one leaf switch at once. ESR with parity m = 4 decodes the
// loss and stays on the fault-free trajectory (exact to decode rounding);
// single-parity ESR is defeated — the code is insufficient, it
// zero-fills and restarts the recurrence, paying extra iterations.
// ABFT-CR with m = 4 likewise absorbs the event without rollback, while
// CR-M and RD survive through rollback/replicas at their usual cost.
// On the machine side, in-place recovery charges nothing under
// PhaseTag::kRecover, while spare promotion and shrinking both price
// real state movement there — and a spare pool smaller than the losses
// runs dry and falls back to shrinking, splitting the counters.
//
// Besides the console tables, writes the standardized BENCH JSON
// artifact to BENCH_resilience.json (override with RSLS_BENCH_JSON).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "core/version.hpp"
#include "harness/runner.hpp"
#include "obs/json.hpp"
#include "power/rapl.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace rsls;

struct Cell {
  std::string name;        // row label for tables and the JSON artifact
  harness::SchemeRun run;  // the cell's scheme run
  Index ff_iterations = 0;
  Joules recover_energy = 0.0;
};

Cell make_cell(std::string name, const harness::SchemeRun& run,
               Index ff_iterations) {
  Cell cell;
  cell.name = std::move(name);
  cell.run = run;
  cell.ff_iterations = ff_iterations;
  cell.recover_energy =
      run.report.account.core_energy(power::PhaseTag::kRecover);
  return cell;
}

void write_bench_json(const std::vector<Cell>& cells) {
  const std::string path =
      env::bench_json_path().value_or("BENCH_resilience.json");
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr,
                 "ablation_failure_domains: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "ablation_failure_domains");
  json.field("git_describe", build::git_describe());
  json.begin_array("results");
  for (const auto& c : cells) {
    const auto& r = c.run.report;
    json.begin_object();
    json.field("name", c.name);
    json.field("scheme", c.run.scheme);
    json.field("status", resilience::to_string(r.status));
    json.begin_object("counters");
    json.field("iterations", static_cast<std::int64_t>(r.cg.iterations));
    json.field("iteration_ratio", c.run.iteration_ratio);
    json.field("time_ratio", c.run.time_ratio);
    json.field("energy_ratio", c.run.energy_ratio);
    json.field("recover_energy_j", c.recover_energy);
    json.field("faults", static_cast<std::int64_t>(r.faults));
    json.field("domain_faults", static_cast<std::int64_t>(r.domain_faults));
    json.field("spares_consumed", static_cast<std::int64_t>(r.spares_consumed));
    json.field("spare_pool_dry", static_cast<std::int64_t>(r.spare_pool_dry));
    json.field("shrink_events", static_cast<std::int64_t>(r.shrink_events));
    json.field("recovery_attempts",
               static_cast<std::int64_t>(r.recovery_attempts));
    json.field("escalations", static_cast<std::int64_t>(r.escalations));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  std::fprintf(stderr, "ablation_failure_domains: wrote %zu results to %s\n",
               cells.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const Index processes = 16;
  sparse::BandedSpdConfig matrix_config;
  matrix_config.n = processes * (quick ? 96 : 160);
  matrix_config.half_bandwidth = 11;
  matrix_config.diag_excess = sparse::diag_excess_for_iterations(450.0);
  matrix_config.scale_decades = 1.0;
  matrix_config.seed = 1300;
  const auto make_workload = [matrix_config, processes] {
    return harness::Workload::create(sparse::banded_spd(matrix_config),
                                     processes);
  };

  std::cout << "Ablation: failure domains and machine-level recovery (p = "
            << processes << ", n = " << matrix_config.n << ")\n\n";

  // Grid A — whole-leaf-switch loss on a radix-4 fat tree: every fault
  // event kills the four ranks under one leaf. The only knob swept is
  // the protection width.
  harness::GroupSpec fat_tree;
  fat_tree.label = "fat-tree leaf loss";
  fat_tree.make_workload = make_workload;
  fat_tree.config.processes = processes;
  fat_tree.config.faults = 2;
  simrt::net::NetworkConfig net;
  net.topology = simrt::net::TopologyKind::kFatTree;
  net.fat_tree_radix = 4;
  fat_tree.config.network = net;
  fat_tree.config.fault_domains = 1;  // switch on: domains from topology

  const auto with_parity = [&fat_tree](Index m) {
    harness::ExperimentConfig config = fat_tree.config;
    config.scheme.abft_parity_blocks = m;
    return config;
  };
  fat_tree.cells.push_back({"ESR", with_parity(4), nullptr});
  fat_tree.cells.push_back({"ESR", with_parity(1), nullptr});
  fat_tree.cells.push_back({"ABFT-CR", with_parity(4), nullptr});
  fat_tree.cells.push_back({"CR-M", std::nullopt, nullptr});
  fat_tree.cells.push_back({"RD", std::nullopt, nullptr});
  const std::vector<std::string> fat_tree_names = {
      "fat-tree/ESR-m4", "fat-tree/ESR-m1", "fat-tree/ABFT-CR-m4",
      "fat-tree/CR-M", "fat-tree/RD"};

  // Grid B — machine-level recovery policy on the flat network with
  // independent single-rank faults: what does the dead slot cost?
  harness::GroupSpec flat;
  flat.label = "flat recovery policy";
  flat.make_workload = make_workload;
  flat.config.processes = processes;
  flat.config.faults = 3;

  const auto with_policy = [&flat](resilience::RecoveryPolicy policy,
                                   Index spares) {
    harness::ExperimentConfig config = flat.config;
    config.recovery.policy = policy;
    config.recovery.spare_ranks = spares;
    return config;
  };
  flat.cells.push_back(
      {"CR-M", with_policy(resilience::RecoveryPolicy::kInPlace, 0), nullptr});
  flat.cells.push_back(
      {"CR-M", with_policy(resilience::RecoveryPolicy::kSpare, 4), nullptr});
  flat.cells.push_back(
      {"CR-M", with_policy(resilience::RecoveryPolicy::kShrink, 0), nullptr});
  // Grid C — synthetic size-4 domains × spare-pool size: two domain
  // events lose 8 ranks; a pool of 2 runs dry after two promotions and
  // shrinks the rest, a pool of 8 absorbs everything.
  const auto domain_spares = [&flat](Index spares) {
    harness::ExperimentConfig config = flat.config;
    config.faults = 2;
    config.fault_domains = 4;
    config.recovery.policy = resilience::RecoveryPolicy::kSpare;
    config.recovery.spare_ranks = spares;
    return config;
  };
  flat.cells.push_back({"CR-M", domain_spares(2), nullptr});
  flat.cells.push_back({"CR-M", domain_spares(8), nullptr});
  const std::vector<std::string> flat_names = {
      "flat/in-place", "flat/spare-4", "flat/shrink", "flat/dom4-spares-2",
      "flat/dom4-spares-8"};

  harness::Runner runner;
  const auto results = runner.run({fat_tree, flat});
  const auto& fat_result = results[0];
  const auto& flat_result = results[1];

  std::vector<Cell> cells;
  for (std::size_t i = 0; i < fat_result.runs.size(); ++i) {
    cells.push_back(make_cell(fat_tree_names[i], fat_result.runs[i],
                              fat_result.ff.iterations));
  }
  for (std::size_t i = 0; i < flat_result.runs.size(); ++i) {
    cells.push_back(make_cell(flat_names[i], flat_result.runs[i],
                              flat_result.ff.iterations));
  }

  TablePrinter table({"cell", "scheme", "status", "iter ratio", "T ratio",
                      "E ratio", "recover (J)", "dom", "spares", "dry",
                      "shrink"});
  for (const auto& c : cells) {
    const auto& r = c.run.report;
    table.add_row({c.name, c.run.scheme, resilience::to_string(r.status),
                   TablePrinter::num(c.run.iteration_ratio),
                   TablePrinter::num(c.run.time_ratio),
                   TablePrinter::num(c.run.energy_ratio),
                   TablePrinter::num(c.recover_energy, 4),
                   std::to_string(r.domain_faults),
                   std::to_string(r.spares_consumed),
                   std::to_string(r.spare_pool_dry),
                   std::to_string(r.shrink_events)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"cell", "scheme", "status", "iterations", "iteration_ratio",
                 "time_ratio", "energy_ratio", "recover_energy_j", "faults",
                 "domain_faults", "spares_consumed", "spare_pool_dry",
                 "shrink_events"});
  for (const auto& c : cells) {
    const auto& r = c.run.report;
    csv.add_row({c.name, c.run.scheme, resilience::to_string(r.status),
                 std::to_string(r.cg.iterations),
                 TablePrinter::num(c.run.iteration_ratio, 4),
                 TablePrinter::num(c.run.time_ratio, 4),
                 TablePrinter::num(c.run.energy_ratio, 4),
                 TablePrinter::num(c.recover_energy, 6),
                 std::to_string(r.faults), std::to_string(r.domain_faults),
                 std::to_string(r.spares_consumed),
                 std::to_string(r.spare_pool_dry),
                 std::to_string(r.shrink_events)});
  }

  // Shape checks.
  const Cell& esr_wide = cells[0];
  const Cell& esr_narrow = cells[1];
  const Cell& abft_cr = cells[2];
  const Cell& cr_m = cells[3];
  const Cell& rd = cells[4];

  // Both fat-tree fault events are whole-domain kills.
  bool domain_kills = true;
  for (std::size_t i = 0; i < fat_result.runs.size(); ++i) {
    const auto& r = fat_result.runs[i].report;
    if (r.domain_faults != 2 || r.faults != 8) {
      domain_kills = false;
    }
  }

  // ESR m=4 decodes the 4-rank loss and stays on the fault-free
  // trajectory (the m=4 Vandermonde decode is exact to rounding, so
  // allow a few iterations of drift). ESR m=1 is defeated and pays a
  // zero-fill restart, which costs far more.
  const bool esr_wide_survives =
      esr_wide.run.report.cg.converged &&
      esr_wide.run.report.cg.iterations <= esr_wide.ff_iterations + 4 &&
      esr_wide.run.report.escalations == 0;
  const bool esr_narrow_defeated = esr_narrow.run.report.cg.iterations >
                                   esr_wide.run.report.cg.iterations + 4;
  const bool abft_cr_survives = abft_cr.run.report.cg.converged &&
                                abft_cr.run.report.escalations == 0;
  const bool classic_converge =
      cr_m.run.report.cg.converged && rd.run.report.cg.converged;

  // Machine-level recovery: in-place is free under kRecover; spare and
  // shrink both price state movement there, and their costs differ.
  const Cell& in_place = cells[5];
  const Cell& spare = cells[6];
  const Cell& shrink = cells[7];
  const Cell& pool_dry = cells[8];
  const Cell& pool_big = cells[9];
  const bool in_place_free = in_place.recover_energy == 0.0 &&
                             in_place.run.report.spares_consumed == 0 &&
                             in_place.run.report.shrink_events == 0;
  const bool spare_priced = spare.recover_energy > 0.0 &&
                            spare.run.report.spares_consumed == 3 &&
                            spare.run.report.spare_pool_dry == 0;
  const bool shrink_priced = shrink.recover_energy > 0.0 &&
                             shrink.run.report.shrink_events == 3 &&
                             shrink.run.report.spares_consumed == 0;
  const bool split_distinct = spare.recover_energy != shrink.recover_energy;
  const bool dry_falls_back = pool_dry.run.report.spares_consumed == 2 &&
                              pool_dry.run.report.spare_pool_dry == 6 &&
                              pool_dry.run.report.shrink_events == 6;
  const bool big_pool_absorbs = pool_big.run.report.spares_consumed == 8 &&
                                pool_big.run.report.spare_pool_dry == 0 &&
                                pool_big.run.report.shrink_events == 0;

  std::cout << "\nshape-check: every fat-tree event kills a whole leaf "
            << (domain_kills ? "PASS" : "FAIL")
            << "; ESR m=4 survives leaf loss on the fault-free trajectory "
            << (esr_wide_survives ? "PASS" : "FAIL")
            << "; ESR m=1 defeated by leaf loss "
            << (esr_narrow_defeated ? "PASS" : "FAIL")
            << "; ABFT-CR m=4 absorbs leaf loss "
            << (abft_cr_survives ? "PASS" : "FAIL")
            << "; CR-M and RD converge "
            << (classic_converge ? "PASS" : "FAIL") << "\n";
  std::cout << "shape-check: in-place recovery free under kRecover "
            << (in_place_free ? "PASS" : "FAIL")
            << "; spare promotion priced "
            << (spare_priced ? "PASS" : "FAIL") << "; shrinking priced "
            << (shrink_priced ? "PASS" : "FAIL")
            << "; spare/shrink energy split distinct "
            << (split_distinct ? "PASS" : "FAIL")
            << "; dry pool falls back to shrink "
            << (dry_falls_back ? "PASS" : "FAIL")
            << "; big pool absorbs every loss "
            << (big_pool_absorbs ? "PASS" : "FAIL") << "\n";

  write_bench_json(cells);

  return domain_kills && esr_wide_survives && esr_narrow_defeated &&
                 abft_cr_survives && classic_converge && in_place_free &&
                 spare_priced && shrink_priced && split_distinct &&
                 dry_falls_back && big_pool_absorbs
             ? 0
             : 1;
}
