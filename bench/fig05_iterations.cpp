// Figure 5 — iterations to convergence for the matrix roster under 10
// faults, normalized to the fault-free execution.
//
// Paper protocol (§5.2): 256 processes, 10 faults evenly spaced over the
// fault-free iterations, tolerance 1e-12, CR checkpointing every 100
// iterations to disk. Expected shape: F0/FI worst (~2.5× on average), RD
// exactly 1×, LI/LSI at or below CR on regular matrices, degrading toward
// F0/FI on small-block and irregular matrices.

#include <iostream>
#include <sstream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "harness/scheme_factory.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 48 : 192);
  config.faults = options.get_index("faults", 10);
  config.scheme.cr_interval_iterations = options.get_index("cr-interval", 100);

  const auto schemes = harness::iteration_scheme_names();

  std::vector<harness::MatrixResult> results;
  if (options.has("matrices")) {
    std::vector<std::string> names;
    std::stringstream ss(options.get_string("matrices", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      names.push_back(item);
    }
    results = harness::sweep_matrices(names, schemes, config, quick);
  } else {
    results = harness::sweep_roster(schemes, config, quick);
  }

  std::cout << "Figure 5: iterations to convergence, normalized to the "
               "fault-free case (" << config.processes << " processes, "
            << config.faults << " faults)\n\n";
  std::vector<std::string> header = {"matrix", "FF iters"};
  for (const auto& s : schemes) {
    header.push_back(s);
  }
  TablePrinter table(header);
  for (const auto& r : results) {
    std::vector<std::string> row = {r.matrix, std::to_string(r.ff.iterations)};
    for (const auto& run : r.runs) {
      row.push_back(TablePrinter::num(run.iteration_ratio));
    }
    table.add_row(row);
  }
  // Average row (geometric mean, as scheme overheads are ratios).
  {
    std::vector<std::string> row = {"geo-mean", "-"};
    for (const auto& avg : harness::average_over_matrices(results)) {
      row.push_back(TablePrinter::num(avg.iteration_ratio));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  header[1] = "ff_iters";
  CsvWriter csv(std::cout, header);
  for (const auto& r : results) {
    std::vector<std::string> row = {r.matrix, std::to_string(r.ff.iterations)};
    for (const auto& run : r.runs) {
      row.push_back(TablePrinter::num(run.iteration_ratio, 4));
    }
    csv.add_row(row);
  }

  // Shape expectations (DESIGN.md §4).
  const auto averages = harness::average_over_matrices(results);
  const auto ratio_of = [&](const std::string& name) {
    for (const auto& avg : averages) {
      if (avg.scheme == name) {
        return avg.iteration_ratio;
      }
    }
    throw Error("scheme missing from sweep: " + name);
  };
  const bool rd_flat = ratio_of("RD") < 1.02;
  const bool f0_worst = ratio_of("F0") >= ratio_of("LI") &&
                        ratio_of("FI") >= ratio_of("LSI");
  const bool li_beats_cr = ratio_of("LI") <= ratio_of("CR-D") * 1.05;
  std::cout << "\nshape-check: RD==FF " << (rd_flat ? "PASS" : "FAIL")
            << "; F0/FI worst " << (f0_worst ? "PASS" : "FAIL")
            << "; LI<=CR " << (li_beats_cr ? "PASS" : "FAIL") << "\n";
  return rd_flat && f0_worst ? 0 : 1;
}
