// Table 6 — validation of the §3 analytical models against the
// (simulated) experiment for matrix x104, normalized to fault-free.
//
// The models are parameterized only from measured scalars — per-
// checkpoint cost t_C, per-reconstruction cost t_const, the extra-
// iteration fraction, and the power-model phase ratios — mirroring how
// the paper fits its models from experimental data. Expected shape:
// FF/RD match exactly; for the other schemes the model preserves the
// relative ordering, with some overestimation of the FW costs.

#include <cmath>
#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "model/cost_models.hpp"
#include "power/power_model.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 48 : 192);
  config.faults = options.get_index("faults", 10);
  config.use_young_interval = true;

  const auto& entry = sparse::roster_entry("x104");
  const auto workload =
      harness::Workload::create(entry.make(quick), config.processes);
  const auto ff = harness::run_fault_free(workload, config);

  const auto machine = harness::machine_for(config.processes);
  const power::PowerModel power_model(machine.power);
  const Watts p1 = power_model.core_power(machine.power.freq.max_hz,
                                          power::Activity::kActive);

  model::BaseCase base;
  base.t_base = ff.time;
  base.n_cores = config.processes;
  base.p1 = ff.power / static_cast<double>(config.processes);
  const PerSecond lambda = static_cast<double>(config.faults) / ff.time;

  // Node-level power ratio of a storage phase vs computation, from the
  // power model (the paper's 0.4/0.9 constants, here derived).
  const auto phase_power_factor = [&](power::Activity activity) {
    const double cores = static_cast<double>(machine.cores_per_node());
    const Watts constant =
        power_model.node_constant_power(machine.sockets_per_node);
    const Watts active =
        cores * power_model.core_power(machine.power.freq.max_hz,
                                       power::Activity::kActive) +
        constant;
    const Watts phase =
        cores * power_model.core_power(machine.power.freq.max_hz, activity) +
        constant;
    return phase / active;
  };

  std::cout << "Table 6: model vs experiment for " << entry.name
            << " (normalized to FF)\n\n";
  TablePrinter table({"scheme", "model T_res", "model P", "model E_res",
                      "exp T_res", "exp P", "exp E_res"});
  table.add_row({"FF", "0", "1", "0", "0", "1", "0"});

  struct Pair {
    std::string scheme;
    model::SchemeCosts model_costs;
    double exp_t_res, exp_p, exp_e_res;
  };
  std::vector<Pair> pairs;

  for (const std::string name :
       {"RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"}) {
    const auto run = harness::run_scheme(workload, name, config, ff);
    model::SchemeCosts costs;
    if (name == "RD") {
      costs = model::redundancy(base);
    } else if (name == "CR-M" || name == "CR-D") {
      model::CrModelParams params;
      params.t_c = run.t_c_mean;
      params.interval =
          static_cast<double>(run.cr_interval_used) * ff.iteration_seconds;
      params.lambda = lambda;
      // Measured per-fault recomputation time (captures the rollback
      // distance and the post-restart re-convergence penalty), as the
      // paper measures unit times for its Table 6 parameterization.
      params.t_lost = (run.iteration_ratio - 1.0) * ff.time /
                      static_cast<double>(config.faults);
      params.checkpoint_power_factor = phase_power_factor(
          name == "CR-D" ? power::Activity::kDiskWait
                         : power::Activity::kMemCopy);
      costs = model::checkpoint_restart(base, params);
    } else {
      model::FwModelParams params;
      params.t_const = run.t_const_mean;
      params.extra_time_fraction = run.iteration_ratio - 1.0;
      params.lambda = lambda;
      params.active_ranks = 1;
      // Idle ranks are pinned to f_min while waiting (§4.2).
      params.idle_power = power_model.core_power(
          machine.power.freq.min_hz, power::Activity::kWaiting);
      costs = model::forward_recovery(base, params);
    }
    pairs.push_back({name, costs, run.time_ratio - 1.0, run.power_ratio,
                     run.energy_ratio - 1.0});
    table.add_row({name, TablePrinter::num(costs.t_res_ratio),
                   TablePrinter::num(costs.power_ratio),
                   TablePrinter::num(costs.e_res_ratio),
                   TablePrinter::num(run.time_ratio - 1.0),
                   TablePrinter::num(run.power_ratio),
                   TablePrinter::num(run.energy_ratio - 1.0)});
  }
  table.print(std::cout);
  (void)p1;

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"scheme", "model_t_res", "model_p", "model_e_res",
                            "exp_t_res", "exp_p", "exp_e_res"});
  for (const auto& p : pairs) {
    csv.add_row({p.scheme, TablePrinter::num(p.model_costs.t_res_ratio, 4),
                 TablePrinter::num(p.model_costs.power_ratio, 4),
                 TablePrinter::num(p.model_costs.e_res_ratio, 4),
                 TablePrinter::num(p.exp_t_res, 4),
                 TablePrinter::num(p.exp_p, 4),
                 TablePrinter::num(p.exp_e_res, 4)});
  }

  // Shape: RD exact; pairwise T_res ordering preserved between model and
  // experiment for the schemes with nonzero overhead.
  bool rd_exact = false;
  for (const auto& p : pairs) {
    if (p.scheme == "RD") {
      rd_exact = std::abs(p.model_costs.t_res_ratio - p.exp_t_res) < 0.01 &&
                 std::abs(p.model_costs.power_ratio - p.exp_p) < 0.05;
    }
  }
  Index agreements = 0, comparisons = 0;
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      const bool model_order =
          pairs[i].model_costs.t_res_ratio < pairs[j].model_costs.t_res_ratio;
      const bool exp_order = pairs[i].exp_t_res < pairs[j].exp_t_res;
      agreements += model_order == exp_order ? 1 : 0;
      ++comparisons;
    }
  }
  const bool order_ok = agreements * 3 >= comparisons * 2;  // >= 2/3 agree
  std::cout << "\nshape-check: RD exact " << (rd_exact ? "PASS" : "FAIL")
            << "; model preserves T_res ordering (" << agreements << "/"
            << comparisons << ") " << (order_ok ? "PASS" : "FAIL") << "\n";
  return rd_exact && order_ok ? 0 : 1;
}
