// Figure 7(a) — node power profile of the LI scheme with OS-level power
// management ("ondemand" governor) vs the proposed LI-DVFS ("userspace",
// §4.2) on matrix nd24k, single 24-core node.
//
// Expected shape (§4.2): during reconstruction, 23 of 24 cores wait. With
// ondemand they keep polling at max frequency, so node power only falls
// to ≈0.75× of the computation plateau; with LI-DVFS the waiting cores
// are pinned to the minimum frequency and node power falls to ≈0.45×
// — a ≈40 % power reduction during construction, with no time penalty.

#include <algorithm>
#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "obs/recorder.hpp"
#include "power/governor.hpp"
#include "solver/cg.hpp"
#include "resilience/fault.hpp"
#include "resilience/forward.hpp"
#include "sparse/roster.hpp"

namespace {

using namespace rsls;

struct ProfileResult {
  std::vector<simrt::PowerSample> profile;
  Seconds total_time = 0.0;
  double construct_power = 0.0;  // mean node power inside constructions
  double compute_power = 0.0;    // mean node power outside constructions
};

ProfileResult run_profile(const harness::Workload& workload,
                          const harness::ExperimentConfig& config,
                          const harness::FfBaseline& ff, bool dvfs) {
  auto scheme = resilience::ForwardRecovery::li_cg(config.scheme.fw_cg_tolerance,
                                                   dvfs);
  simrt::VirtualCluster cluster(harness::machine_for(config.processes),
                                config.processes);
  // OS-level management for plain LI; explicit userspace control for
  // LI-DVFS (paper §5.3).
  if (dvfs) {
    cluster.set_governor(power::make_userspace_governor());
  } else {
    cluster.set_governor(power::make_ondemand_governor());
  }
  cluster.enable_power_trace(ff.time / 400.0);
  // The recorder's charge stream gives exact window means below; the
  // sampled node_power_profile is kept for the time-series CSV.
  obs::Recorder recorder;
  recorder.attach(cluster);
  (void)harness::run_scheme(workload, dvfs ? "LI-DVFS" : "LI", config, ff,
                            {.scheme = scheme.get(), .cluster = &cluster});
  ProfileResult result;
  result.profile = cluster.node_power_profile(0);
  result.total_time = cluster.elapsed();

  // Mean node power inside vs outside the recorded construction windows,
  // from the charge stream: clip every charged interval on node 0 to the
  // windows (power is uniform within one interval), divide the clipped
  // joules by the window time, and add the same constant floor
  // node_power_profile renders with (uncore/DRAM plus parked cores).
  const auto& windows = scheme->construction_windows();
  Seconds in_time = 0.0;
  for (const auto& w : windows) {
    in_time += w.end - w.begin;
  }
  const Seconds out_time = result.total_time - in_time;
  Joules in_joules = 0.0;
  Joules node_joules = 0.0;
  for (const auto& charge : recorder.charges()) {
    if (cluster.node_of(charge.rank) != 0) {
      continue;
    }
    node_joules += charge.core_joules;
    const Seconds span = charge.end - charge.begin;
    for (const auto& w : windows) {
      const Seconds lo = std::max(charge.begin, w.begin);
      const Seconds hi = std::min(charge.end, w.end);
      if (hi > lo && span > 0.0) {
        in_joules += charge.core_joules * (hi - lo) / span;
      }
    }
  }
  Index ranks_on_node = 0;
  for (Index r = 0; r < cluster.num_ranks(); ++r) {
    if (cluster.node_of(r) == 0) {
      ++ranks_on_node;
    }
  }
  const auto& machine = cluster.config();
  const Watts constant =
      cluster.power_model().node_constant_power(machine.sockets_per_node) +
      machine.power.core_sleep *
          static_cast<double>(machine.cores_per_node() - ranks_on_node);
  result.construct_power =
      in_time > 0.0 ? in_joules / in_time + constant : 0.0;
  result.compute_power =
      out_time > 0.0 ? (node_joules - in_joules) / out_time + constant : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = 24;  // one dual-socket node
  config.faults = options.get_index("faults", 10);

  const auto& entry = sparse::roster_entry("nd24k");
  const auto workload =
      harness::Workload::create(entry.make(quick), config.processes);

  // The summary table repeats per solver variant (the PR 9 follow-on);
  // the time-series CSV and the fine-grained shape bands stay on the
  // classic variant the paper profiles. Each variant gets its own
  // fault-free baseline.
  struct VariantProfiles {
    std::string solver;
    ProfileResult plain;
    ProfileResult dvfs;
  };
  std::vector<VariantProfiles> sweeps;
  for (const auto& variant : solver::solver_variant_names()) {
    harness::ExperimentConfig vconfig = config;
    vconfig.solver = variant;
    const auto vff = harness::run_fault_free(workload, vconfig);
    sweeps.push_back({variant, run_profile(workload, vconfig, vff, false),
                      run_profile(workload, vconfig, vff, true)});
  }
  const auto& plain = sweeps.front().plain;
  const auto& dvfs = sweeps.front().dvfs;

  std::cout << "Figure 7(a): node power profile, " << entry.name
            << " on one 24-core node, " << config.faults << " faults\n\n";
  TablePrinter table({"solver", "policy", "compute power (W)",
                      "construct power (W)", "construct/compute", "time (ms)"});
  for (const auto& sweep : sweeps) {
    table.add_row({sweep.solver, "LI (ondemand)",
                   TablePrinter::num(sweep.plain.compute_power, 1),
                   TablePrinter::num(sweep.plain.construct_power, 1),
                   TablePrinter::num(sweep.plain.construct_power /
                                     sweep.plain.compute_power),
                   TablePrinter::num(sweep.plain.total_time * 1e3, 2)});
    table.add_row({sweep.solver, "LI-DVFS (userspace)",
                   TablePrinter::num(sweep.dvfs.compute_power, 1),
                   TablePrinter::num(sweep.dvfs.construct_power, 1),
                   TablePrinter::num(sweep.dvfs.construct_power /
                                     sweep.dvfs.compute_power),
                   TablePrinter::num(sweep.dvfs.total_time * 1e3, 2)});
  }
  table.print(std::cout);

  std::cout << "\nCSV (power profile time series):\n";
  CsvWriter csv(std::cout, {"time_ms", "li_ondemand_w", "li_dvfs_w"});
  const std::size_t samples =
      std::min(plain.profile.size(), dvfs.profile.size());
  const std::size_t stride = std::max<std::size_t>(samples / 200, 1);
  for (std::size_t i = 0; i < samples; i += stride) {
    csv.add_row({TablePrinter::num(plain.profile[i].time * 1e3, 4),
                 TablePrinter::num(plain.profile[i].power, 2),
                 TablePrinter::num(dvfs.profile[i].power, 2)});
  }

  const double plain_ratio = plain.construct_power / plain.compute_power;
  const double dvfs_ratio = dvfs.construct_power / dvfs.compute_power;
  const double reduction =
      100.0 * (plain.construct_power - dvfs.construct_power) /
      plain.construct_power;
  const bool plain_ok = plain_ratio > 0.65 && plain_ratio < 0.9;
  const bool dvfs_ok = dvfs_ratio > 0.35 && dvfs_ratio < 0.6;
  const bool reduction_ok = reduction > 25.0;
  const bool no_slowdown = dvfs.total_time < plain.total_time * 1.05;
  bool all_variants_save = true;
  for (const auto& sweep : sweeps) {
    all_variants_save =
        all_variants_save &&
        sweep.dvfs.construct_power < sweep.plain.construct_power &&
        sweep.dvfs.total_time < sweep.plain.total_time * 1.05;
  }
  std::cout << "\nshape-check: construct/compute ~0.75 without DVFS "
            << (plain_ok ? "PASS" : "FAIL") << " ("
            << TablePrinter::num(plain_ratio) << "); ~0.45 with DVFS "
            << (dvfs_ok ? "PASS" : "FAIL") << " ("
            << TablePrinter::num(dvfs_ratio) << "); power reduction ~40% "
            << (reduction_ok ? "PASS" : "FAIL") << " ("
            << TablePrinter::num(reduction, 1) << "%); no slowdown "
            << (no_slowdown ? "PASS" : "FAIL")
            << "; DVFS saves under every solver variant "
            << (all_variants_save ? "PASS" : "FAIL") << "\n";
  return plain_ok && dvfs_ok && reduction_ok && no_slowdown &&
                 all_variants_save
             ? 0
             : 1;
}
