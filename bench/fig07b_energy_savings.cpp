// Figure 7(b) — average time, power, and energy for the 14-matrix roster
// with LI/LSI, with and without the §4.2 DVFS power management, plus the
// E_res/E_solve split.
//
// Expected shape: LI-DVFS and LSI-DVFS keep the same time as LI/LSI,
// reduce average power, and cut total energy (paper: 11 % and 16 %),
// shifting energy from resilience to problem solving.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/sweep.hpp"
#include "solver/cg.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  // 48 processes keeps per-process work near the paper's 50K-nnz
  // regime (DESIGN.md §2): reconstruction windows stay a realistic
  // fraction of the run, as on the authors' cluster.
  config.processes = options.get_index("processes", quick ? 24 : 48);
  config.faults = options.get_index("faults", 10);

  const std::vector<std::string> schemes = {"LI", "LI-DVFS", "LSI",
                                            "LSI-DVFS"};

  std::cout << "Figure 7(b): roster-average normalized time/power/energy, "
               "LI/LSI with and without DVFS ("
            << config.processes << " processes, " << config.faults
            << " faults), swept along the solver-variant axis\n\n";

  // The 14-matrix roster sweep repeats per solver variant (classic and
  // pipelined PCG) — every ratio is against that variant's own
  // fault-free baseline, so the DVFS story must hold on both.
  TablePrinter table(
      {"solver", "scheme", "T x FF", "P x FF", "E x FF", "E_res/E_solve"});
  std::vector<std::vector<std::string>> csv_rows;
  bool all_pass = true;
  std::string summary;
  for (const auto& variant : solver::solver_variant_names()) {
    harness::ExperimentConfig vconfig = config;
    vconfig.solver = variant;
    const auto results = harness::sweep_roster(schemes, vconfig, quick);
    const auto averages = harness::average_over_matrices(results);
    for (const auto& avg : averages) {
      table.add_row({variant, avg.scheme, TablePrinter::num(avg.time_ratio),
                     TablePrinter::num(avg.power_ratio),
                     TablePrinter::num(avg.energy_ratio),
                     TablePrinter::num(avg.e_res_over_e_solve)});
    }
    for (const auto& r : results) {
      for (const auto& run : r.runs) {
        csv_rows.push_back({variant, r.matrix, run.scheme,
                            TablePrinter::num(run.time_ratio, 4),
                            TablePrinter::num(run.power_ratio, 4),
                            TablePrinter::num(run.energy_ratio, 4)});
      }
    }

    const auto find =
        [&](const std::string& name) -> const harness::SchemeAverages& {
      for (const auto& avg : averages) {
        if (avg.scheme == name) {
          return avg;
        }
      }
      throw Error("missing scheme " + name);
    };
    const auto& li = find("LI");
    const auto& li_dvfs = find("LI-DVFS");
    const auto& lsi = find("LSI");
    const auto& lsi_dvfs = find("LSI-DVFS");

    const double li_saving =
        100.0 * (li.energy_ratio - li_dvfs.energy_ratio) / li.energy_ratio;
    const double lsi_saving =
        100.0 * (lsi.energy_ratio - lsi_dvfs.energy_ratio) / lsi.energy_ratio;
    const bool same_time = li_dvfs.time_ratio < li.time_ratio * 1.03 &&
                           lsi_dvfs.time_ratio < lsi.time_ratio * 1.03;
    const bool saves_energy = li_saving > 2.0 && lsi_saving > 2.0;
    const bool lsi_saves_more = lsi_saving >= li_saving;
    all_pass = all_pass && same_time && saves_energy;
    summary += "shape-check[" + variant + "]: DVFS keeps time " +
               (same_time ? "PASS" : "FAIL") + "; saves energy " +
               (saves_energy ? "PASS" : "FAIL") + " (LI " +
               TablePrinter::num(li_saving, 1) + "%, LSI " +
               TablePrinter::num(lsi_saving, 1) + "%); LSI saves >= LI " +
               (lsi_saves_more ? "PASS" : "FAIL") + "\n";
  }
  table.print(std::cout);

  std::cout << "\nCSV (per-matrix detail):\n";
  CsvWriter csv(std::cout, {"solver", "matrix", "scheme", "time_ratio",
                            "power_ratio", "energy_ratio"});
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  std::cout << "\n" << summary;
  return all_pass ? 0 : 1;
}
