// Figure 1 — estimated MTBF for exascale systems projected from petascale
// systems, per fault class (DCE, DUE, SDC, SWO, SNF, LNF).
//
// Paper: a 20K-node petascale machine with today's technology vs a
// 1M-node exascale machine at 11 nm; MTBF per class scales with node
// count and node technology. Expected shape: exascale MTBF within an
// hour for the frequent classes.

#include <iostream>

#include "core/csv.hpp"
#include "core/table.hpp"
#include "model/mtbf.hpp"

int main() {
  using namespace rsls;
  const model::NodeTechnology peta = model::petascale_node();
  const model::NodeTechnology exa = model::exascale_node();
  const Index peta_nodes = 20000;
  const Index exa_nodes = 1000000;

  std::cout << "Figure 1: estimated system MTBF (hours) by fault class\n"
            << "  petascale: " << peta_nodes << " nodes (" << peta.name
            << ")\n  exascale:  " << exa_nodes << " nodes (" << exa.name
            << ")\n\n";

  TablePrinter table(
      {"class", "soft/hard", "petascale MTBF (h)", "exascale MTBF (h)"});
  for (const auto fc : model::all_fault_classes()) {
    table.add_row({model::to_string(fc), model::is_soft(fc) ? "soft" : "hard",
                   TablePrinter::num(model::system_mtbf_hours(peta, peta_nodes, fc), 3),
                   TablePrinter::num(model::system_mtbf_hours(exa, exa_nodes, fc), 4)});
  }
  table.add_row({"combined", "-",
                 TablePrinter::num(model::combined_mtbf_hours(peta, peta_nodes), 3),
                 TablePrinter::num(model::combined_mtbf_hours(exa, exa_nodes), 4)});
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"class", "petascale_mtbf_h", "exascale_mtbf_h"});
  for (const auto fc : model::all_fault_classes()) {
    csv.add_row({model::to_string(fc),
                 TablePrinter::num(model::system_mtbf_hours(peta, peta_nodes, fc), 6),
                 TablePrinter::num(model::system_mtbf_hours(exa, exa_nodes, fc), 6)});
  }

  const bool within_hour = model::combined_mtbf_hours(exa, exa_nodes) < 1.0;
  std::cout << "\nshape-check: exascale combined MTBF < 1 hour "
            << (within_hour ? "PASS" : "FAIL") << "\n";
  return within_hour ? 0 : 1;
}
