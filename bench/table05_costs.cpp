// Table 5 — normalized time, power, and energy cost of resilience,
// averaged over the matrix roster. CR cadence from Young's formula
// (§5.3); FF is the normalization base.
//
// Expected shape: RD — no time overhead, 2× power and energy; LI-DVFS —
// least energy overhead among the non-RD schemes; CR-M — least time
// overhead after RD; CR-D — the most time and energy; RD — the most
// power.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/scheme_factory.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  // 48 processes keeps per-process work near the paper's 50K-nnz
  // regime (DESIGN.md §2): reconstruction windows stay a realistic
  // fraction of the run, as on the authors' cluster.
  config.processes = options.get_index("processes", quick ? 24 : 48);
  config.faults = options.get_index("faults", 10);
  config.use_young_interval = true;

  const auto schemes = harness::cost_scheme_names();
  const auto results = harness::sweep_roster(schemes, config, quick);
  const auto averages = harness::average_over_matrices(results);

  std::cout << "Table 5: normalized time/power/energy of resilience, "
               "averaged over the roster (Young-interval CR, "
            << config.faults << " faults)\n\n";
  TablePrinter table({"scheme", "Time", "Power", "Energy"});
  table.add_row({"FF", "1", "1", "1"});
  for (const auto& avg : averages) {
    table.add_row({avg.scheme, TablePrinter::num(avg.time_ratio),
                   TablePrinter::num(avg.power_ratio),
                   TablePrinter::num(avg.energy_ratio)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"scheme", "time_ratio", "power_ratio",
                            "energy_ratio"});
  csv.add_row({"FF", "1", "1", "1"});
  for (const auto& avg : averages) {
    csv.add_row({avg.scheme, TablePrinter::num(avg.time_ratio, 4),
                 TablePrinter::num(avg.power_ratio, 4),
                 TablePrinter::num(avg.energy_ratio, 4)});
  }

  const auto find = [&](const std::string& name) -> const harness::SchemeAverages& {
    for (const auto& avg : averages) {
      if (avg.scheme == name) {
        return avg;
      }
    }
    throw Error("missing scheme " + name);
  };
  const auto& rd = find("RD");
  const auto& li = find("LI-DVFS");
  const auto& lsi = find("LSI-DVFS");
  const auto& crm = find("CR-M");
  const auto& crd = find("CR-D");

  const bool rd_shape = rd.time_ratio < 1.05 && rd.power_ratio > 1.9 &&
                        rd.energy_ratio > 1.9;
  const bool rd_most_power = rd.power_ratio > li.power_ratio &&
                             rd.power_ratio > crd.power_ratio;
  const bool crm_fast = crm.time_ratio <= li.time_ratio &&
                        crm.time_ratio <= crd.time_ratio;
  const bool crd_worst = crd.time_ratio >= crm.time_ratio &&
                         crd.energy_ratio >= crm.energy_ratio;
  const bool li_efficient = li.energy_ratio <= crd.energy_ratio &&
                            li.energy_ratio <= lsi.energy_ratio * 1.1;
  std::cout << "\nshape-check: RD {T~1, P~2, E~2} "
            << (rd_shape ? "PASS" : "FAIL") << "; RD most power "
            << (rd_most_power ? "PASS" : "FAIL")
            << "; CR-M least time (after RD) " << (crm_fast ? "PASS" : "FAIL")
            << "; CR-D most time+energy " << (crd_worst ? "PASS" : "FAIL")
            << "; LI-DVFS energy-efficient " << (li_efficient ? "PASS" : "FAIL")
            << "\n";
  return rd_shape && rd_most_power && crd_worst ? 0 : 1;
}
