// Ablation — SDC detection cadence: silent corruption is injected into
// the iterate and the residual-gap detector's verification cadence is
// swept. With detection off the solver's recurrence happily "converges"
// on a wrong answer (the corrupted x never feeds back into it); with
// detection on, every corruption is caught, localized, and repaired by
// LI forward recovery. The cadence trades detection latency against the
// extra true-residual SpMV per inspection — the kDetect slice of the
// energy account makes that overhead visible and it shrinks as the
// cadence grows.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const auto& entry = sparse::roster_entry("crystm02");
  const sparse::Csr a = entry.make(quick);
  const Index processes = options.get_index("processes", quick ? 24 : 48);
  const auto workload = harness::Workload::create(a, processes);
  const std::string scheme = "LI";

  std::cout << "Ablation: SDC detection cadence (" << entry.name << ", "
            << processes << " processes, scheme " << scheme << ")\n\n";

  harness::ExperimentConfig base_config;
  base_config.processes = processes;
  base_config.faults = quick ? 2 : 4;
  base_config.sdc_faults = true;  // silent: the harness learns no ranks
  const auto ff = harness::run_fault_free(workload, base_config);

  TablePrinter table({"detection", "time x", "energy x", "detect E %",
                      "detections", "true rel resid", "converged"});
  std::vector<std::vector<std::string>> csv_rows;

  struct Row {
    std::string label;
    bool converged = false;
    double true_rel = 0.0;
    double detect_fraction = 0.0;
    Index detections = 0;
  };
  std::vector<Row> rows;

  const IndexVec cadences = quick ? IndexVec{1, 10} : IndexVec{1, 5, 10, 25,
                                                               50};
  // Row 0: detection disabled — the undetected-SDC baseline.
  std::vector<std::string> labels = {"off"};
  for (const Index c : cadences) {
    labels.push_back("gap@" + std::to_string(c));
  }
  labels.push_back("full suite");

  for (const auto& label : labels) {
    harness::ExperimentConfig config = base_config;
    if (label == "off") {
      config.detection = false;
    } else if (label == "full suite") {
      config.detection = true;  // checksum + norm-bound + residual-gap
    } else {
      config.detection = true;
      config.detection_options.enable_checksum = false;
      config.detection_options.enable_norm_bound = false;
      config.detection_options.residual_gap_cadence =
          static_cast<Index>(std::stoll(label.substr(4)));
    }
    const auto run = harness::run_scheme(workload, scheme, config, ff);
    Row row;
    row.label = label;
    row.converged = run.report.cg.converged;
    row.true_rel = run.report.true_relative_residual;
    row.detect_fraction =
        run.report.account.core_energy(power::PhaseTag::kDetect) /
        run.report.energy;
    row.detections = run.report.detections;
    rows.push_back(row);

    std::vector<std::string> cells = {
        label,
        TablePrinter::num(run.time_ratio),
        TablePrinter::num(run.energy_ratio),
        TablePrinter::num(100.0 * row.detect_fraction),
        std::to_string(row.detections),
        TablePrinter::num(row.true_rel),
        row.converged ? "yes" : "no"};
    table.add_row(cells);
    csv_rows.push_back({label, TablePrinter::num(run.time_ratio, 4),
                        TablePrinter::num(run.energy_ratio, 4),
                        TablePrinter::num(row.detect_fraction, 6),
                        std::to_string(row.detections),
                        TablePrinter::num(row.true_rel, 6),
                        row.converged ? "1" : "0"});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"detection", "time_ratio", "energy_ratio",
                            "detect_energy_fraction", "detections",
                            "true_relative_residual", "converged"});
  for (const auto& r : csv_rows) {
    csv.add_row(r);
  }

  // Shape checks. The "off" run must end wrong (silently converged on a
  // corrupted iterate or not converged at all); every detecting run must
  // reach the true solution; the kDetect energy slice must shrink as the
  // verification cadence grows.
  const bool off_wrong = !rows[0].converged || rows[0].true_rel > 1e-6;
  bool detected_right = true;
  bool detected_all = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    detected_right =
        detected_right && rows[i].converged && rows[i].true_rel < 1e-6;
    detected_all = detected_all && rows[i].detections >= base_config.faults;
  }
  const bool overhead_shrinks =
      rows[1].detect_fraction > rows[cadences.size()].detect_fraction;
  std::cout << "\nshape-check: undetected SDC ends wrong "
            << (off_wrong ? "PASS" : "FAIL")
            << "; detected runs reach the true solution "
            << (detected_right ? "PASS" : "FAIL")
            << "; every injected SDC is detected "
            << (detected_all ? "PASS" : "FAIL")
            << "; detect energy shrinks with cadence "
            << (overhead_shrinks ? "PASS" : "FAIL") << "\n";
  return off_wrong && detected_right && detected_all && overhead_shrinks ? 0
                                                                         : 1;
}
