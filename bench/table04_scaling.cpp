// Table 4 — normalized iterations to converge under various parallel
// settings for matrix crystm02.
//
// Paper: a fixed-size problem solved with 4, 16, 64 and 256 MPI processes
// under 10 faults. Each recovery mechanism's normalized iteration count is
// essentially constant in the process count, with the ordering
// RD (1) < LI ≈ LSI < CR < F0 ≈ FI.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const auto& entry = sparse::roster_entry("crystm02");
  const sparse::Csr matrix = entry.make(quick);
  const auto schemes = harness::iteration_scheme_names();

  const IndexVec process_counts =
      quick ? IndexVec{4, 16, 64} : IndexVec{4, 16, 64, 256};

  std::cout << "Table 4: normalized iterations to converge vs process "
               "count (" << entry.name << ", 10 faults)\n\n";
  std::vector<std::string> header = {"#p", "FF iters"};
  for (const auto& s : schemes) {
    header.push_back(s);
  }
  TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;

  // Per-scheme min/max across process counts, for the invariance check.
  std::vector<double> min_ratio(schemes.size(), 1e9);
  std::vector<double> max_ratio(schemes.size(), 0.0);

  // One group per process count; all groups partition the same CSR.
  const double fw_tol = options.get_double("fw-tol", 1e-10);
  std::vector<harness::GroupSpec> groups;
  for (const Index p : process_counts) {
    harness::GroupSpec group;
    group.label = entry.name + "-p" + std::to_string(p);
    group.config.processes = p;
    group.config.faults = 10;
    group.config.scheme.cr_interval_iterations = 100;
    group.config.scheme.fw_cg_tolerance = fw_tol;
    group.make_workload = [&matrix, p] {
      return harness::Workload::create(matrix, p);
    };
    for (const auto& scheme : schemes) {
      group.cells.push_back({scheme, std::nullopt, nullptr});
    }
    groups.push_back(std::move(group));
  }

  harness::Runner runner;
  const auto results = runner.run(groups);

  for (std::size_t pi = 0; pi < process_counts.size(); ++pi) {
    const auto& result = results[pi];
    std::vector<std::string> row = {std::to_string(process_counts[pi]),
                                    std::to_string(result.ff.iterations)};
    std::vector<std::string> csv_row = row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto& run = result.runs[s];
      row.push_back(TablePrinter::num(run.iteration_ratio));
      csv_row.push_back(TablePrinter::num(run.iteration_ratio, 4));
      min_ratio[s] = std::min(min_ratio[s], run.iteration_ratio);
      max_ratio[s] = std::max(max_ratio[s], run.iteration_ratio);
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  header[1] = "ff_iters";
  CsvWriter csv(std::cout, header);
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  // Shape: each scheme's normalized iterations roughly constant in p
  // (allow 25% spread; fault placement is randomized per run).
  bool invariant = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    if (max_ratio[s] > 1.25 * min_ratio[s]) {
      invariant = false;
      std::cout << "  note: " << schemes[s] << " spread "
                << TablePrinter::num(min_ratio[s]) << " - "
                << TablePrinter::num(max_ratio[s]) << "\n";
    }
  }
  std::cout << "\nshape-check: iteration ratios ~constant in #p "
            << (invariant ? "PASS" : "FAIL") << "\n";
  return invariant ? 0 : 1;
}
