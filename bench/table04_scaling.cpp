// Table 4 — normalized iterations to converge under various parallel
// settings for matrix crystm02.
//
// Paper: a fixed-size problem solved with 4, 16, 64 and 256 MPI processes
// under 10 faults. Each recovery mechanism's normalized iteration count is
// essentially constant in the process count, with the ordering
// RD (1) < LI ≈ LSI < CR < F0 ≈ FI.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "core/version.hpp"
#include "dist/rank_executor.hpp"
#include "harness/runner.hpp"
#include "harness/scheme_factory.hpp"
#include "obs/json.hpp"
#include "sparse/roster.hpp"

namespace {

/// Standardized bench artifact (same schema_version 1 as micro_kernels):
/// one result row with the serial vs rank-parallel wall clock of the
/// full sweep and the realized speedup. Always written to
/// BENCH_table04_scaling.json in the working directory. The hardware
/// thread count rides along so a reader can tell an implementation
/// regression (speedup « effective jobs on a wide machine) from a
/// hardware-bound run (1-core container: speedup can never exceed 1).
void write_speedup_json(rsls::Index jobs_requested, rsls::Index jobs_effective,
                        rsls::Index hardware_threads, double serial_s,
                        double parallel_s, double speedup) {
  std::ofstream os("BENCH_table04_scaling.json");
  if (!os.good()) {
    std::cerr << "table04_scaling: cannot open BENCH_table04_scaling.json\n";
    return;
  }
  rsls::obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "table04_scaling");
  json.field("git_describe", rsls::build::git_describe());
  json.begin_array("results");
  json.begin_object();
  json.field("name", "table04_sweep_wall_clock");
  json.field("iterations", static_cast<std::int64_t>(1));
  json.field("real_time_s", parallel_s);
  json.field("cpu_time_s", parallel_s);
  json.begin_object("counters");
  json.field("jobs", static_cast<double>(jobs_requested));
  json.field("jobs_effective", static_cast<double>(jobs_effective));
  json.field("hardware_threads", static_cast<double>(hardware_threads));
  json.field("serial_wall_s", serial_s);
  json.field("parallel_wall_s", parallel_s);
  json.field("speedup", speedup);
  json.end_object();
  json.end_object();
  json.end_array();
  json.end_object();
  os << '\n';
  std::cerr << "table04_scaling: jobs=" << jobs_requested << " (effective "
            << jobs_effective << " on " << hardware_threads
            << " hardware threads) serial=" << serial_s
            << "s parallel=" << parallel_s << "s speedup=" << speedup
            << " -> BENCH_table04_scaling.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const auto& entry = sparse::roster_entry("crystm02");
  const sparse::Csr matrix = entry.make(quick);
  const auto schemes = harness::iteration_scheme_names();

  const IndexVec process_counts =
      quick ? IndexVec{4, 16, 64} : IndexVec{4, 16, 64, 256};

  std::cout << "Table 4: normalized iterations to converge vs process "
               "count (" << entry.name << ", 10 faults)\n\n";
  std::vector<std::string> header = {"#p", "FF iters"};
  for (const auto& s : schemes) {
    header.push_back(s);
  }
  TablePrinter table(header);
  std::vector<std::vector<std::string>> csv_rows;

  // Per-scheme min/max across process counts, for the invariance check.
  std::vector<double> min_ratio(schemes.size(), 1e9);
  std::vector<double> max_ratio(schemes.size(), 0.0);

  // One group per process count; all groups partition the same CSR.
  const double fw_tol = options.get_double("fw-tol", 1e-10);
  std::vector<harness::GroupSpec> groups;
  for (const Index p : process_counts) {
    harness::GroupSpec group;
    group.label = entry.name + "-p" + std::to_string(p);
    group.config.processes = p;
    group.config.faults = 10;
    group.config.scheme.cr_interval_iterations = 100;
    group.config.scheme.fw_cg_tolerance = fw_tol;
    group.make_workload = [&matrix, p] {
      return harness::Workload::create(matrix, p);
    };
    for (const auto& scheme : schemes) {
      group.cells.push_back({scheme, std::nullopt, nullptr});
    }
    groups.push_back(std::move(group));
  }

  // Serial-vs-parallel wall clock of the whole sweep, in one process:
  // the rank executor's set_jobs override pins the data-plane fan-out
  // width alongside the Runner's cell-level worker count. Results are
  // bit-identical at any width (the §17 determinism gate); only the
  // wall clock may differ.
  // Threads beyond the physical core count only add context-switch
  // overhead to a compute-bound sweep, so the measured width is clamped
  // to the hardware (the requested RSLS_JOBS is still recorded).
  const Index jobs = env::jobs();
  const auto hardware = static_cast<Index>(
      std::max(1u, std::thread::hardware_concurrency()));
  const Index effective = std::min(jobs, hardware);
  const auto timed_run = [&groups](Index width) {
    harness::Runner runner(width);
    dist::RankExecutor::instance().set_jobs(width);
    const auto start = std::chrono::steady_clock::now();
    auto results = runner.run(groups);
    const auto stop = std::chrono::steady_clock::now();
    dist::RankExecutor::instance().set_jobs(0);
    return std::make_pair(std::move(results),
                          std::chrono::duration<double>(stop - start).count());
  };
  double serial_seconds = 0.0;
  if (effective > 1) {
    serial_seconds = timed_run(1).second;
  }
  auto [results, parallel_seconds] = timed_run(effective);
  if (effective <= 1) {
    serial_seconds = parallel_seconds;
  }
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 1.0;

  for (std::size_t pi = 0; pi < process_counts.size(); ++pi) {
    const auto& result = results[pi];
    std::vector<std::string> row = {std::to_string(process_counts[pi]),
                                    std::to_string(result.ff.iterations)};
    std::vector<std::string> csv_row = row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto& run = result.runs[s];
      row.push_back(TablePrinter::num(run.iteration_ratio));
      csv_row.push_back(TablePrinter::num(run.iteration_ratio, 4));
      min_ratio[s] = std::min(min_ratio[s], run.iteration_ratio);
      max_ratio[s] = std::max(max_ratio[s], run.iteration_ratio);
    }
    table.add_row(row);
    csv_rows.push_back(csv_row);
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  header[1] = "ff_iters";
  CsvWriter csv(std::cout, header);
  for (const auto& row : csv_rows) {
    csv.add_row(row);
  }

  // Shape: each scheme's normalized iterations roughly constant in p
  // (allow 25% spread; fault placement is randomized per run).
  bool invariant = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    if (max_ratio[s] > 1.25 * min_ratio[s]) {
      invariant = false;
      std::cout << "  note: " << schemes[s] << " spread "
                << TablePrinter::num(min_ratio[s]) << " - "
                << TablePrinter::num(max_ratio[s]) << "\n";
    }
  }
  write_speedup_json(jobs, effective, hardware, serial_seconds,
                     parallel_seconds, speedup);

  std::cout << "\nshape-check: iteration ratios ~constant in #p "
            << (invariant ? "PASS" : "FAIL") << "\n";
  return invariant ? 0 : 1;
}
