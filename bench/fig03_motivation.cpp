// Figure 3 — accuracy and cost of different recovery mechanisms (the §2
// motivation experiment).
//
// Paper: matrix Andrews, MTBF = 0.1 h, CR checkpoints x to disk, 192-core
// cluster. Because the roster is miniaturized, absolute MTBF is expressed
// through the paper's own §5.2 protocol — the same fault density (10
// faults over the fault-free run) that 0.1 h produced on the full-size
// problem. Expected shape: every scheme ≤ ~2× overhead; FW incurs the
// least energy overhead; RD has no time overhead but doubles energy.

#include <iostream>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "harness/experiment.hpp"
#include "sparse/roster.hpp"

int main(int argc, char** argv) {
  using namespace rsls;
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  harness::ExperimentConfig config;
  config.processes = options.get_index("processes", quick ? 48 : 192);
  config.faults = options.get_index("faults", 10);
  config.scheme.cr_interval_iterations = 100;

  const auto& entry = sparse::roster_entry("Andrews");
  const auto workload =
      harness::Workload::create(entry.make(quick), config.processes);
  const auto ff = harness::run_fault_free(workload, config);

  std::cout << "Figure 3: accuracy and cost of recovery mechanisms ("
            << entry.name << ", " << config.faults
            << " faults ~ MTBF 0.1h at paper scale, CR to disk)\n\n";

  TablePrinter table({"scheme", "rel residual", "time overhead %",
                      "energy overhead %", "power x"});
  table.add_row({"FF", TablePrinter::num(0.0, 2), "0", "0", "1.00"});

  struct Row {
    std::string scheme;
    double time_pct;
    double energy_pct;
  };
  std::vector<Row> rows;
  CsvWriter* csv = nullptr;
  (void)csv;
  for (const std::string name : {"RD", "CR-D", "LI"}) {
    const auto run = harness::run_scheme(workload, name, config, ff);
    table.add_row({name == "LI" ? "FW(LI)" : name,
                   TablePrinter::num(run.report.cg.relative_residual, 2),
                   TablePrinter::num(100.0 * (run.time_ratio - 1.0), 1),
                   TablePrinter::num(100.0 * (run.energy_ratio - 1.0), 1),
                   TablePrinter::num(run.power_ratio)});
    rows.push_back({name, 100.0 * (run.time_ratio - 1.0),
                    100.0 * (run.energy_ratio - 1.0)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter out(std::cout, {"scheme", "time_overhead_pct",
                            "energy_overhead_pct"});
  out.add_row({"FF", "0", "0"});
  for (const auto& row : rows) {
    out.add_row({row.scheme, TablePrinter::num(row.time_pct, 2),
                 TablePrinter::num(row.energy_pct, 2)});
  }

  const double rd_time = rows[0].time_pct;
  const double rd_energy = rows[0].energy_pct;
  const double cr_energy = rows[1].energy_pct;
  const double fw_energy = rows[2].energy_pct;
  const bool rd_no_time = rd_time < 5.0;
  const bool rd_doubles = rd_energy > 80.0;
  const bool fw_least_energy = fw_energy < cr_energy && fw_energy < rd_energy;
  std::cout << "\nshape-check: RD no time overhead "
            << (rd_no_time ? "PASS" : "FAIL") << "; RD ~2x energy "
            << (rd_doubles ? "PASS" : "FAIL") << "; FW least energy "
            << (fw_least_energy ? "PASS" : "FAIL") << "\n";
  return rd_no_time && rd_doubles && fw_least_energy ? 0 : 1;
}
