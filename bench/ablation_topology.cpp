// Ablation — interconnect topology and collective algorithm (DESIGN.md
// §12): the same communication pattern priced on every topology ×
// collective combination of simrt::net, then a full scheme sweep per
// topology.
//
// Expected shape: on the flat network the ring allreduce is slower than
// recursive doubling for small payloads at p = 192 (2(p−1) latency-bound
// stages vs log₂ p); the hop-bound allreduce cost grows monotonically in
// the topology's mean hop count (flat < fat tree < torus at 192), and
// both hop-aware topologies burn more total comm energy than the flat
// seed model. (Total energy is NOT ordered by hops alone: the torus has
// more mean hops than the fat tree but 1-hop halo neighbours and lower
// bisection contention, so the two land close — that near-tie is the
// point of having real topologies.) The scheme sweep shows every
// topology preserving the paper's scheme ranking — topology rescales
// comm cost, it does not reorder recovery strategies.
//
// Besides the console tables, writes the standardized BENCH JSON
// artifact to BENCH_comm.json (override with RSLS_BENCH_JSON).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/env.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "core/version.hpp"
#include "harness/runner.hpp"
#include "obs/json.hpp"
#include "simrt/cluster.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace rsls;

struct CommCell {
  std::string topology;
  std::string collective;
  Index processes = 0;
  double mean_hops = 0.0;
  Seconds allreduce_us = 0.0;  // one 8-byte allreduce, slowest rank
  Seconds elapsed = 0.0;
  Joules energy = 0.0;
  double messages = 0.0;
  double wire_bytes = 0.0;
  double max_contention = 1.0;
};

/// Price one repeated CG-like comm pattern (small allreduces + a halo
/// exchange per round) on a dedicated cluster.
CommCell run_comm_cell(simrt::net::TopologyKind topology,
                       simrt::net::CollectiveKind collective, Index processes,
                       Index rounds) {
  simrt::MachineConfig machine = harness::machine_for(processes);
  machine.net = simrt::net::NetworkConfig{};  // pin: ignore the env overlay
  machine.net.topology = topology;
  machine.net.collective = collective;
  simrt::VirtualCluster cluster(machine, processes);

  const Bytes dot_bytes = 8.0;
  const std::vector<Bytes> halo_bytes(static_cast<std::size_t>(processes),
                                      2.0 * 1024.0);
  const IndexVec halo_msgs(static_cast<std::size_t>(processes), 6);
  for (Index i = 0; i < rounds; ++i) {
    cluster.halo_exchange(halo_bytes, halo_msgs, power::PhaseTag::kComm);
    cluster.allreduce(dot_bytes, power::PhaseTag::kComm);
    cluster.allreduce(dot_bytes, power::PhaseTag::kComm);
  }

  CommCell cell;
  cell.topology = simrt::net::to_string(topology);
  cell.collective = simrt::net::to_string(collective);
  cell.processes = processes;
  cell.mean_hops = cluster.interconnect().topology().mean_hops();
  cell.allreduce_us = cluster.allreduce_seconds(dot_bytes) * 1e6;
  cell.elapsed = cluster.elapsed();
  cell.energy = cluster.total_energy();
  cell.messages = cluster.comm_stats().messages;
  cell.wire_bytes = cluster.comm_stats().wire_bytes;
  cell.max_contention = cluster.comm_stats().max_contention;
  return cell;
}

void write_bench_json(const std::vector<CommCell>& cells) {
  const std::string path =
      env::bench_json_path().value_or("BENCH_comm.json");
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "ablation_topology: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema_version", 1);
  json.field("source", "ablation_topology");
  json.field("git_describe", build::git_describe());
  json.begin_array("results");
  for (const auto& c : cells) {
    json.begin_object();
    json.field("name", c.topology + "/" + c.collective + "/p" +
                           std::to_string(c.processes));
    json.field("topology", c.topology);
    json.field("collective", c.collective);
    json.field("processes", static_cast<std::int64_t>(c.processes));
    json.begin_object("counters");
    json.field("mean_hops", c.mean_hops);
    json.field("allreduce_us", c.allreduce_us);
    json.field("elapsed_s", c.elapsed);
    json.field("energy_j", c.energy);
    json.field("comm_messages", c.messages);
    json.field("comm_wire_bytes", c.wire_bytes);
    json.field("comm_max_contention", c.max_contention);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  std::fprintf(stderr, "ablation_topology: wrote %zu results to %s\n",
               cells.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const bool quick = quick_mode() || options.get_bool("quick", false);

  const IndexVec process_counts = quick ? IndexVec{48, 192}
                                        : IndexVec{48, 96, 192};
  const Index rounds = options.get_index("rounds", quick ? 200 : 1000);

  const std::vector<simrt::net::TopologyKind> topologies = {
      simrt::net::TopologyKind::kFlat, simrt::net::TopologyKind::kFatTree,
      simrt::net::TopologyKind::kTorus3D};
  const std::vector<simrt::net::CollectiveKind> collectives = {
      simrt::net::CollectiveKind::kRecursiveDoubling,
      simrt::net::CollectiveKind::kRing,
      simrt::net::CollectiveKind::kBinomialTree};

  std::cout << "Ablation: interconnect topology x collective algorithm ("
            << rounds << " rounds of halo + 2 dot-product allreduces)\n\n";

  std::vector<CommCell> cells;
  for (const Index p : process_counts) {
    for (const auto topo : topologies) {
      for (const auto coll : collectives) {
        cells.push_back(run_comm_cell(topo, coll, p, rounds));
      }
    }
  }

  TablePrinter table({"p", "topology", "collective", "mean hops",
                      "allreduce (µs)", "elapsed (ms)", "energy (J)",
                      "contention"});
  for (const auto& c : cells) {
    table.add_row({std::to_string(c.processes), c.topology, c.collective,
                   TablePrinter::num(c.mean_hops),
                   TablePrinter::num(c.allreduce_us, 3),
                   TablePrinter::num(c.elapsed * 1e3, 3),
                   TablePrinter::num(c.energy, 3),
                   TablePrinter::num(c.max_contention)});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"p", "topology", "collective", "mean_hops",
                            "allreduce_us", "elapsed_ms", "energy_j",
                            "messages", "wire_bytes", "max_contention"});
  for (const auto& c : cells) {
    csv.add_row({std::to_string(c.processes), c.topology, c.collective,
                 TablePrinter::num(c.mean_hops, 4),
                 TablePrinter::num(c.allreduce_us, 4),
                 TablePrinter::num(c.elapsed * 1e3, 4),
                 TablePrinter::num(c.energy, 4),
                 TablePrinter::num(c.messages, 0),
                 TablePrinter::num(c.wire_bytes, 0),
                 TablePrinter::num(c.max_contention, 4)});
  }

  // Shape checks at the largest size.
  const Index p_max = process_counts.back();
  const auto find_cell = [&](const char* topo, const char* coll) {
    for (const auto& c : cells) {
      if (c.processes == p_max && c.topology == topo &&
          c.collective == coll) {
        return c;
      }
    }
    throw Error("missing cell");
  };
  const CommCell flat_rd = find_cell("flat", "recursive-doubling");
  const CommCell flat_ring = find_cell("flat", "ring");
  const CommCell fat_rd = find_cell("fat-tree", "recursive-doubling");
  const CommCell torus_rd = find_cell("torus3d", "recursive-doubling");

  // Ring pays 2(p−1) latency-bound stages for an 8-byte payload where
  // recursive doubling pays log₂ p.
  const bool ring_slower = flat_ring.allreduce_us > flat_rd.allreduce_us;

  // The hop-bound collective cost is ordered by mean hop count, and both
  // hop-aware topologies burn more comm energy than the flat seed model.
  const CommCell& near = fat_rd.mean_hops <= torus_rd.mean_hops ? fat_rd
                                                                : torus_rd;
  const CommCell& far = fat_rd.mean_hops <= torus_rd.mean_hops ? torus_rd
                                                               : fat_rd;
  const bool monotone_in_hops = flat_rd.mean_hops < near.mean_hops &&
                                near.mean_hops < far.mean_hops &&
                                flat_rd.allreduce_us < near.allreduce_us &&
                                near.allreduce_us < far.allreduce_us;
  const bool dearer_than_flat =
      near.energy > flat_rd.energy && far.energy > flat_rd.energy;
  const bool distinct = fat_rd.elapsed != torus_rd.elapsed;

  std::cout << "\nshape-check: ring slower than recursive doubling for "
               "8-byte allreduce at p="
            << p_max << " " << (ring_slower ? "PASS" : "FAIL")
            << "; allreduce cost monotone in mean hops "
            << (monotone_in_hops ? "PASS" : "FAIL")
            << "; hop-aware topologies dearer than flat "
            << (dearer_than_flat ? "PASS" : "FAIL")
            << "; fat-tree and torus distinct "
            << (distinct ? "PASS" : "FAIL") << "\n";

  // Scheme sweep per topology: the recovery-scheme ranking must survive
  // a topology change (comm gets dearer, strategy order does not flip).
  const Index p_schemes = quick ? 24 : 48;
  const std::vector<std::string> schemes = {"RD", "CR-M", "LI"};
  sparse::BandedSpdConfig matrix_config;
  matrix_config.n = p_schemes * 160;
  matrix_config.half_bandwidth = 11;
  matrix_config.diag_excess = sparse::diag_excess_for_iterations(450.0);
  matrix_config.scale_decades = 1.0;
  matrix_config.seed = 700;

  std::vector<harness::GroupSpec> groups;
  for (const auto topo : topologies) {
    harness::GroupSpec group;
    group.label = simrt::net::to_string(topo);
    group.config.processes = p_schemes;
    group.config.faults = 2;
    simrt::net::NetworkConfig net;
    net.topology = topo;
    group.config.network = net;
    group.make_workload = [matrix_config, p_schemes] {
      return harness::Workload::create(sparse::banded_spd(matrix_config),
                                       p_schemes);
    };
    for (const auto& scheme : schemes) {
      group.cells.push_back({scheme, std::nullopt, nullptr});
    }
    groups.push_back(std::move(group));
  }

  harness::Runner runner;
  const auto results = runner.run(groups);

  std::cout << "\nScheme sweep per topology (" << p_schemes
            << " processes, 2 faults; ratios vs same-topology FF)\n\n";
  std::vector<std::string> header = {"topology", "FF ms"};
  for (const auto& s : schemes) {
    header.push_back(s + " T");
    header.push_back(s + " E");
  }
  TablePrinter sweep(header);
  bool ranking_stable = true;
  for (std::size_t g = 0; g < results.size(); ++g) {
    const auto& result = results[g];
    std::vector<std::string> row = {result.label,
                                    TablePrinter::num(result.ff.time * 1e3, 2)};
    for (const auto& run : result.runs) {
      row.push_back(TablePrinter::num(run.time_ratio));
      row.push_back(TablePrinter::num(run.energy_ratio));
    }
    sweep.add_row(row);
    // RD trades energy for time: fastest in time, worst in energy,
    // whatever the topology.
    const auto& rd = result.runs[0];
    for (std::size_t s = 1; s < result.runs.size(); ++s) {
      if (rd.time_ratio > result.runs[s].time_ratio ||
          rd.energy_ratio < result.runs[s].energy_ratio) {
        ranking_stable = false;
      }
    }
  }
  sweep.print(std::cout);
  std::cout << "\nshape-check: RD fastest / highest-energy on every topology "
            << (ranking_stable ? "PASS" : "FAIL") << "\n";

  write_bench_json(cells);

  return ring_slower && monotone_in_hops && dearer_than_flat && distinct &&
                 ranking_stable
             ? 0
             : 1;
}
